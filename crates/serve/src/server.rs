//! The delivery engine: a deterministic, simulated-time event loop driving
//! many sessions through one shared service channel.
//!
//! One [`Server`] owns a catalog ([`MediaDb`]) over a [`BlobStore`], a
//! [`SegmentCache`], and a [`Capacity`]. Requests arrive timestamped in
//! simulated time ([`Server::request`]); element fetches are served in
//! earliest-deadline-first order across *all* playing sessions through a
//! single channel whose service rate is the capacity's cost model — the
//! aggregate storage bandwidth and decode throughput admission reasons
//! about. Everything is exact rational time, so a run is a pure function of
//! its request trace (and a fault plan's seed, if the store injects one).
//!
//! Per element the server walks the same ladder as
//! [`tbm_player::ResilientPlayer`]: cache lookup, then a retried read,
//! then per-layer checksum verification, then the
//! [`DegradationPolicy`] ladder (base layers → repeat → drop) for anything
//! unrecoverable. Only verified bytes enter the cache, so one session's
//! intact read shields every later session from a deterministic storage
//! fault at the same span.

use crate::session::ServePlan;
use crate::{
    AdmissionPolicy, AdmitDecision, Capacity, RejectReason, Request, Response, SegmentCache,
    ServeError, ServerStats, Session, SessionState, SessionStats,
};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};
use std::io;
use tbm_blob::{BlobStore, MemBlobStore, ReadCtx, RetryPolicy};
use tbm_core::{crc32, BlobId, SessionId};
use tbm_db::MediaDb;
use tbm_obs::{
    attribute, chrome_trace_to_writer, micros, AttributionReport, Category, MetricsRegistry,
    SpanId, TraceSnapshot, Tracer, ATTR_DECODE_US, ATTR_ELEMENT_INDEX, ATTR_FAILOVER_US,
    ATTR_INHERITED_US, ATTR_LATENESS_US, ATTR_NODELOSS_US, ATTR_RETRY_US, ATTR_STORAGE_US,
    ATTR_WAIT_US, ELEMENT_SPAN, LATENCY_BUCKETS_US,
};
use tbm_player::{demanded_rate, schedule_from_interp, DegradationPolicy, ElementFate};
use tbm_time::{Rational, TimeDelta, TimePoint};

// Registry metric names. Counters mirror the snapshot fields of
// `ServerStats`; the histograms back its lateness/service distributions.
const M_ADMITTED: &str = "serve.sessions.admitted";
const M_ADMITTED_DEGRADED: &str = "serve.sessions.admitted_degraded";
const M_REJECTED: &str = "serve.sessions.rejected";
const M_ELEMENTS: &str = "serve.elements.served";
const M_MISSES: &str = "serve.elements.misses";
const M_RECOVERED: &str = "serve.elements.recovered";
const M_DEGRADED: &str = "serve.elements.degraded";
const M_DROPPED: &str = "serve.elements.dropped";
const M_REPAIRED: &str = "serve.elements.repaired";
const M_UPGRADED: &str = "serve.sessions.upgraded";
const M_FORCED: &str = "serve.sessions.force_degraded";
const M_FAULTS: &str = "serve.faults.detected";
const M_BYTES_READ: &str = "storage.bytes_read";
const M_BATCHES: &str = "serve.batches";
const H_LATENESS: &str = "serve.lateness_us";
const H_LATENESS_FULL: &str = "serve.lateness_us.full";
const H_LATENESS_DEGRADED: &str = "serve.lateness_us.degraded";
const H_SERVICE: &str = "serve.service_us";
const H_READ: &str = "storage.read_us";
const G_CACHE_BYTES: &str = "cache.bytes";

/// One queued element fetch. Ordering is `(deadline, session, pos)` so the
/// heap is a deterministic earliest-deadline-first queue.
///
/// The heap holds at most one *live* entry per session — the session's next
/// due element; serving it queues the successor. Schedules are in deadline
/// order (per-session deadlines are monotone in `pos`), so popping session
/// heads in `(deadline, session, pos)` order yields exactly the global
/// serve order an enqueue-everything heap would, with the heap at
/// O(sessions) instead of O(elements) — the difference between 100k
/// concurrent sessions fitting in one process or not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct QueuedJob {
    deadline: TimePoint,
    session: u64,
    pos: usize,
    epoch: u64,
}

/// The cache-aware storage multiplier for one session: the fraction of the
/// bytes its remaining plan will fetch that are *not* resident in the
/// segment cache (1 = nothing resident, 0 = everything). Residency is
/// probed with [`SegmentCache::contains`], which touches neither recency
/// nor the hit/miss counters, so pricing a session never perturbs the
/// cache state other sessions see.
fn residency_discount(
    cache: &SegmentCache,
    blob: BlobId,
    plans: &[ServePlan],
    pending: &BTreeSet<usize>,
) -> Rational {
    if !cache.is_enabled() {
        return Rational::ONE;
    }
    let (mut total, mut resident) = (0u64, 0u64);
    for &pos in pending {
        for span in &plans[pos].spans {
            total += span.len;
            if cache.contains(blob, *span) {
                resident += span.len;
            }
        }
    }
    if total == 0 {
        Rational::ONE
    } else {
        Rational::new((total - resident) as i64, total as i64)
    }
}

/// Like [`residency_discount`], but priced at admission time straight from
/// the stream's interpretation entries (capped at `layers` placement
/// layers per element) — before any session plan exists.
fn admission_discount(
    cache: &SegmentCache,
    blob: BlobId,
    entries: &[tbm_interp::ElementEntry],
    layers: Option<usize>,
) -> Rational {
    if !cache.is_enabled() {
        return Rational::ONE;
    }
    let (mut total, mut resident) = (0u64, 0u64);
    for e in entries {
        let all = e.placement.layers();
        let take = layers.unwrap_or(all.len()).min(all.len()).max(1);
        for span in &all[..take] {
            total += span.len;
            if cache.contains(blob, *span) {
                resident += span.len;
            }
        }
    }
    if total == 0 {
        Rational::ONE
    } else {
        Rational::new((total - resident) as i64, total as i64)
    }
}

/// A multi-session media delivery engine over a catalog and a BLOB store.
///
/// See the crate docs for the scheduling model. Typical use:
///
/// 1. build a [`MediaDb`] and register the objects to serve;
/// 2. wrap it in a server with a [`Capacity`] and (optionally) a cache;
/// 3. submit [`Request`]s in non-decreasing simulated time;
/// 4. call [`Server::finish`] to drain the event loop and read the
///    [`ServerStats`] snapshot.
#[derive(Debug)]
pub struct Server<S: BlobStore = MemBlobStore> {
    db: MediaDb<S>,
    capacity: Capacity,
    cache: SegmentCache,
    retry: RetryPolicy,
    policy: DegradationPolicy,
    sessions: Vec<Session>,
    /// First session id this server hands out; ids are `base..base+n`.
    /// Non-zero only under a [`crate::ShardedServer`], which gives each
    /// shard a disjoint id range so a session id alone names its shard
    /// (and trace session ids never collide across shards).
    session_base: u64,
    heap: BinaryHeap<Reverse<QueuedJob>>,
    clock: TimePoint,
    busy_until: TimePoint,
    /// Node-outage stall: no element dispatches before this instant. Set by
    /// a fleet during a shard migration's catalog handoff (or while the
    /// hosting node is down); the extra delay is attributed to `node-loss`
    /// rather than channel wait. [`TimePoint::ZERO`] when never stalled.
    stall_until: TimePoint,
    /// Storage-stage admitted demand: the sum of every active session's
    /// `charged` figure (residency-discounted under cache-aware admission,
    /// equal to full demand otherwise).
    committed: Rational,
    /// Decode-stage admitted demand: the sum of every active session's
    /// *full* demand. Cache hits skip the fetch but not the decode, so
    /// this total is never residency-discounted. Identical to `committed`
    /// when cache-aware admission is off.
    committed_decode: Rational,
    /// [`SegmentCache::generation`] at the last repricing pass; an
    /// unchanged generation lets the pass be skipped entirely.
    repriced_gen: u64,
    /// While set, [`Server::force_degrade`] is in effect: the automatic
    /// upgrade path leaves capped sessions alone (otherwise the very next
    /// served element would lift a remediation-forced cap right back).
    upgrade_hold: bool,
    /// Raw ids of sessions capped by [`Server::force_degrade`] —
    /// exactly the set [`Server::release_degrade`] restores.
    forced: BTreeSet<u64>,
    metrics: MetricsRegistry,
    tracer: Tracer,
    /// Scratch for the same-deadline batch the loop is currently serving;
    /// kept on the server so its allocation is reused across batches.
    batch: VecDeque<QueuedJob>,
    /// When set (and a tracer is attached), every same-deadline batch is
    /// recorded as a [`Category::Sched`] span. Off by default so existing
    /// traces stay byte-identical.
    batch_spans: bool,
}

impl<S: BlobStore> Server<S> {
    /// A server over `db` with the given capacity, no cache, 3 retries and
    /// the [`DegradationPolicy::DropLayers`] ladder.
    pub fn new(db: MediaDb<S>, capacity: Capacity) -> Server<S> {
        Server {
            db,
            capacity,
            cache: SegmentCache::disabled(),
            retry: RetryPolicy::new(3),
            policy: DegradationPolicy::DropLayers,
            sessions: Vec::new(),
            session_base: 0,
            heap: BinaryHeap::new(),
            clock: TimePoint::ZERO,
            busy_until: TimePoint::ZERO,
            stall_until: TimePoint::ZERO,
            committed: Rational::ZERO,
            committed_decode: Rational::ZERO,
            repriced_gen: 0,
            upgrade_hold: false,
            forced: BTreeSet::new(),
            metrics: MetricsRegistry::new(),
            tracer: Tracer::disabled(),
            batch: VecDeque::new(),
            batch_spans: false,
        }
    }

    /// Builder: records every same-deadline batch the event loop serves as
    /// a `"batch"` span in the [`Category::Sched`] category (span start =
    /// the shared deadline, end = the instant the channel frees up, `jobs`
    /// attr = elements served in the batch). Off by default: batch spans
    /// are scheduler diagnostics, and leaving them out keeps traces
    /// byte-identical with runs recorded before batching existed.
    pub fn with_batch_spans(mut self) -> Server<S> {
        self.batch_spans = true;
        self
    }

    /// Builder: attaches a shared segment cache.
    pub fn with_cache(mut self, cache: SegmentCache) -> Server<S> {
        self.cache = cache;
        self
    }

    /// Builder: attaches a cache with the given byte budget.
    pub fn with_cache_budget(self, budget_bytes: u64) -> Server<S> {
        self.with_cache(SegmentCache::new(budget_bytes))
    }

    /// Builder: sets the per-read retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Server<S> {
        self.retry = retry;
        self
    }

    /// Builder: sets the per-element degradation policy.
    pub fn with_degradation(mut self, policy: DegradationPolicy) -> Server<S> {
        self.policy = policy;
        self
    }

    /// Builder: offsets the session ids this server allocates to
    /// `base..base+n`. A [`crate::ShardedServer`] gives shard `i` the base
    /// `i << 32`, so every session id in the fleet is unique and encodes
    /// its owning shard.
    pub fn with_session_base(mut self, base: u64) -> Server<S> {
        assert!(
            self.sessions.is_empty(),
            "session base must be set before any session is admitted"
        );
        self.session_base = base;
        self
    }

    /// The first session id this server allocates (0 unless offset by
    /// [`Server::with_session_base`]).
    pub fn session_base(&self) -> u64 {
        self.session_base
    }

    /// Builder: attaches a tracer. Every session lifecycle step, admission
    /// verdict, element service interval, cache lookup and deadline miss is
    /// recorded on the simulated clock. Attach a *clone* of the same tracer
    /// to a `FaultyBlobStore` wrapping this server's store and injected
    /// faults land in the same timeline.
    pub fn with_tracer(mut self, tracer: Tracer) -> Server<S> {
        self.tracer = tracer;
        self
    }

    /// The attached tracer (disabled unless set via
    /// [`Server::with_tracer`]).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The metrics registry backing [`Server::stats`].
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// An owned snapshot of the trace collected so far.
    pub fn trace(&self) -> TraceSnapshot {
        self.tracer.snapshot()
    }

    /// Writes the collected trace as Chrome `trace_event` JSON (loadable in
    /// Perfetto or `chrome://tracing`).
    pub fn trace_to_writer(&self, w: &mut dyn io::Write) -> io::Result<()> {
        chrome_trace_to_writer(&self.tracer.snapshot(), w)
    }

    /// Walks the collected trace and assigns exactly one cause to every
    /// deadline miss. See [`tbm_obs::attribution`] for the rules.
    pub fn attribution(&self) -> AttributionReport {
        attribute(&self.tracer.snapshot().records)
    }

    /// The catalog being served.
    pub fn db(&self) -> &MediaDb<S> {
        &self.db
    }

    /// Recovers the catalog, dropping the server state.
    pub fn into_db(self) -> MediaDb<S> {
        self.db
    }

    /// The capacity model.
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Replaces the capacity model mid-run — the fleet lever for a node
    /// whose hosted-shard count (or brownout-derated budget) just changed.
    /// Already-admitted sessions keep playing against the new cost model;
    /// new arrivals are admitted against the new budget; and a *larger*
    /// budget immediately lifts degraded-admission sessions back to full
    /// fidelity where it fits ([`Server::finish`] semantics are unchanged).
    pub fn set_capacity(&mut self, capacity: Capacity) {
        self.capacity = capacity;
        self.try_upgrade_sessions(self.clock);
    }

    /// Stalls the service channel until `until` (monotone: an earlier call
    /// with a later instant wins). A fleet sets this across a shard
    /// migration's catalog handoff and while the hosting node is down, so
    /// elements queued before the move complete after it — paying the
    /// outage as an explicitly attributed `node-loss` component instead of
    /// disappearing or masquerading as channel wait.
    pub fn set_stall_until(&mut self, until: TimePoint) {
        self.stall_until = self.stall_until.max(until);
    }

    /// The current node-outage stall horizon ([`TimePoint::ZERO`] when the
    /// channel was never stalled).
    pub fn stall_until(&self) -> TimePoint {
        self.stall_until
    }

    /// The server clock: the latest simulated time processed.
    pub fn clock(&self) -> TimePoint {
        self.clock
    }

    /// All sessions ever admitted, in admission order (including finished
    /// and closed ones).
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// A session by id.
    pub fn session(&self, id: SessionId) -> Option<&Session> {
        self.checked_slot(id).map(|i| &self.sessions[i])
    }

    /// The slot of a known-valid session id (ids are `base + slot`).
    fn slot(&self, id: SessionId) -> usize {
        (id.raw() - self.session_base) as usize
    }

    /// The slot of `id`, or `None` when the id was never allocated here
    /// (wrong shard, or simply unknown).
    fn checked_slot(&self, id: SessionId) -> Option<usize> {
        id.raw()
            .checked_sub(self.session_base)
            .map(|i| i as usize)
            .filter(|&i| i < self.sessions.len())
    }

    /// The shared segment cache's counters.
    pub fn cache_stats(&self) -> crate::CacheStats {
        self.cache.stats()
    }

    /// Submits a request at simulated time `at` (non-decreasing across
    /// calls). The event loop first serves every element due by `at`, then
    /// applies the request and answers with a typed [`Response`].
    pub fn request(&mut self, at: TimePoint, request: Request) -> Result<Response, ServeError> {
        if at < self.clock {
            return Err(ServeError::NonMonotonicTime {
                at,
                clock: self.clock,
            });
        }
        self.run_until(at);
        match request {
            Request::Open { object } => self.open(&object),
            Request::Play { session } => self.play(at, session),
            Request::Pause { session } => self.pause(session),
            Request::Seek { session, to } => self.seek(at, session, to),
            Request::SetRate { session, num, den } => self.set_rate(at, session, num, den),
            Request::Close { session } => self.close(session),
        }
    }

    /// Serves every queued element whose deadline is at or before `to`,
    /// advancing the clock to `to`.
    pub fn run_until(&mut self, to: TimePoint) {
        self.drain(Some(to));
        self.clock = self.clock.max(to);
    }

    /// Drains the event loop completely — every queued element of every
    /// playing session is served — and returns the final statistics.
    /// Opened or paused sessions keep their capacity; close them first if
    /// the run is over.
    pub fn finish(&mut self) -> ServerStats {
        self.drain_all();
        self.stats()
    }

    /// Full drain without the stats materialisation — what the parallel
    /// shard pool calls per shard, collecting stats afterwards in shard
    /// order.
    pub(crate) fn drain_all(&mut self) {
        self.drain(None);
        self.clock = self.clock.max(self.busy_until);
    }

    /// Whether any queued element is due at or before `to` — the sharded
    /// front end's cheap "is a parallel drive worth spawning" probe.
    pub(crate) fn has_due(&self, to: TimePoint) -> bool {
        self.heap.peek().is_some_and(|&Reverse(j)| j.deadline <= to)
    }

    /// Whether any element is queued at all (the finish-drain probe).
    pub(crate) fn has_queued(&self) -> bool {
        !self.heap.is_empty()
    }

    /// The event loop: serves due elements in `(deadline, session, pos)`
    /// order, batching runs that share a deadline.
    ///
    /// A batch is the run of heap entries at the earliest due deadline,
    /// popped together and served back to back. Two rules keep the serve
    /// order *exactly* what popping one entry at a time would produce:
    ///
    /// 1. **Chain rule** — after serving a session's element, its successor
    ///    joins the *front* of the batch when it lands on the same deadline
    ///    (every remaining batch entry belongs to a later session id), and
    ///    goes to the heap otherwise (per-session deadlines are monotone,
    ///    so it can never undercut the batch).
    /// 2. **Preemption guard** — serving an element can re-anchor *other*
    ///    sessions (the upgrade path), pushing fresh heap entries at
    ///    arbitrary deadlines. Before each serve the batch head is compared
    ///    with the heap top; if the heap now holds an earlier job, the
    ///    remaining batch is pushed back and the loop restarts from the
    ///    true minimum.
    fn drain(&mut self, limit: Option<TimePoint>) {
        'outer: while let Some(&Reverse(top)) = self.heap.peek() {
            if limit.is_some_and(|to| top.deadline > to) {
                break;
            }
            let d = top.deadline;
            while let Some(&Reverse(j)) = self.heap.peek() {
                if j.deadline != d {
                    break;
                }
                self.heap.pop();
                self.batch.push_back(j);
            }
            let batch_span = if self.batch_spans {
                self.tracer
                    .begin_span("batch", Category::Sched, d, SpanId::NONE, None)
            } else {
                SpanId::NONE
            };
            let mut served_in_batch = 0u64;
            while let Some(job) = self.batch.pop_front() {
                if let Some(&Reverse(t)) = self.heap.peek() {
                    if t < job {
                        // A mid-serve push outranks the batch: fall back to
                        // the heap so the global order is preserved.
                        self.heap.push(Reverse(job));
                        while let Some(rest) = self.batch.pop_front() {
                            self.heap.push(Reverse(rest));
                        }
                        self.finish_batch(batch_span, served_in_batch, d);
                        continue 'outer;
                    }
                }
                if self.serve_job(job) {
                    served_in_batch += 1;
                    if let Some(next) = self.successor_of(job) {
                        if next.deadline == d {
                            self.batch.push_front(next);
                        } else {
                            self.heap.push(Reverse(next));
                        }
                    }
                }
            }
            self.finish_batch(batch_span, served_in_batch, d);
        }
    }

    /// Closes a batch: counts it and (when enabled) closes its sched span.
    fn finish_batch(&mut self, span: SpanId, served: u64, deadline: TimePoint) {
        if served > 0 {
            self.metrics.inc(M_BATCHES, 1);
        }
        if !span.is_none() {
            self.tracer.attr(span, "jobs", served);
            self.tracer.end_span(span, self.busy_until.max(deadline));
        }
    }

    /// The next due element of the session `job` belonged to, if the serve
    /// left it playing on the same schedule generation.
    fn successor_of(&self, job: QueuedJob) -> Option<QueuedJob> {
        let idx = (job.session - self.session_base) as usize;
        let s = &self.sessions[idx];
        if s.epoch != job.epoch || s.state != SessionState::Playing {
            // Finished, paused, closed, or re-anchored (upgrade/force): any
            // live continuation was queued with a fresh epoch already.
            return None;
        }
        let &pos = s.pending.first()?;
        Some(QueuedJob {
            deadline: s.queued_deadline(pos),
            session: job.session,
            pos,
            epoch: s.epoch,
        })
    }

    /// A point-in-time statistics snapshot, materialised from the metrics
    /// registry.
    pub fn stats(&self) -> ServerStats {
        let mut active = 0usize;
        let mut finished = 0usize;
        let mut closed = 0usize;
        for s in &self.sessions {
            match s.state {
                SessionState::Finished => finished += 1,
                SessionState::Closed => closed += 1,
                _ => active += 1,
            }
        }
        let m = &self.metrics;
        let degraded_elements = m.counter(M_DEGRADED) as usize;
        let dropped_elements = m.counter(M_DROPPED) as usize;
        let repaired_elements = m.counter(M_REPAIRED) as usize;
        let faults_detected = m.counter(M_FAULTS) as usize;
        // Every detected fault must be resolved exactly once: out of the
        // degradation ladder as a degraded or dropped element, or healed by
        // a cross-tier repair that left the element intact.
        debug_assert_eq!(
            faults_detected,
            degraded_elements + dropped_elements + repaired_elements,
            "fault accounting invariant violated in snapshot"
        );
        ServerStats {
            active_sessions: active,
            finished_sessions: finished,
            closed_sessions: closed,
            admitted: m.counter(M_ADMITTED) as usize,
            admitted_degraded: m.counter(M_ADMITTED_DEGRADED) as usize,
            rejected: m.counter(M_REJECTED) as usize,
            elements_served: m.counter(M_ELEMENTS) as usize,
            deadline_misses: m.counter(M_MISSES) as usize,
            recovered: m.counter(M_RECOVERED) as usize,
            degraded_elements,
            dropped_elements,
            repaired_elements,
            faults_detected,
            upgraded_sessions: m.counter(M_UPGRADED) as usize,
            cache: self.cache.stats(),
            storage_bytes_read: m.counter(M_BYTES_READ),
            committed_bps: self.committed.floor().max(0) as u64,
            lateness: m.histogram_or_empty(H_LATENESS, &LATENCY_BUCKETS_US),
            service: m.histogram_or_empty(H_SERVICE, &LATENCY_BUCKETS_US),
        }
    }

    // ------------------------------------------------------------------
    // Request handlers
    // ------------------------------------------------------------------

    /// Runs admission control and, when admitted, creates the session.
    fn open(&mut self, object: &str) -> Result<Response, ServeError> {
        let active = self.sessions.iter().filter(|s| s.is_active()).count();
        let (interp, stream) = self.db.stream_of(object)?;
        let blob = interp.blob();
        let system = stream.system();
        let full_jobs = schedule_from_interp(stream, None);
        let full_demand = demanded_rate(&full_jobs, system).unwrap_or(Rational::ZERO);
        let scalable = stream
            .entries()
            .iter()
            .any(|e| e.placement.layer_count() > 1);

        // Admission prices storage demand against the capacity the store
        // can actually deliver right now: an open tier breaker derates the
        // bandwidth the gate hands out, steering new sessions onto the
        // degraded path until the tier heals (they are upgraded back by
        // `try_upgrade_sessions`).
        let gate = self.capacity.derated(self.db.store().health_percent());
        // Cache-aware admission prices the *storage* stage at the demand
        // discounted by current residency (`Rational::ONE` off-flag or with
        // the cache disabled); the decode stage always pays in full, since
        // a cache hit skips the fetch but not the decode.
        let full_discount = if gate.cache_aware {
            admission_discount(&self.cache, blob, stream.entries(), None)
        } else {
            Rational::ONE
        };
        let (decision, layers) = match self.capacity.policy {
            AdmissionPolicy::AdmitAll => (AdmitDecision::Admitted, None),
            AdmissionPolicy::Enforce => {
                if active >= self.capacity.max_sessions {
                    (
                        AdmitDecision::Rejected {
                            reason: RejectReason::SessionLimit {
                                max: self.capacity.max_sessions,
                            },
                        },
                        None,
                    )
                } else if gate.fits_staged(
                    self.committed,
                    self.committed_decode,
                    full_demand * full_discount,
                    full_demand,
                ) {
                    (AdmitDecision::Admitted, None)
                } else {
                    let base_jobs = schedule_from_interp(stream, Some(1));
                    let base_demand = demanded_rate(&base_jobs, system).unwrap_or(Rational::ZERO);
                    let base_discount = if gate.cache_aware {
                        admission_discount(&self.cache, blob, stream.entries(), Some(1))
                    } else {
                        Rational::ONE
                    };
                    if scalable
                        && gate.fits_staged(
                            self.committed,
                            self.committed_decode,
                            base_demand * base_discount,
                            base_demand,
                        )
                    {
                        (AdmitDecision::Degraded { layers: 1 }, Some(1))
                    } else {
                        let cheapest = if scalable { base_demand } else { full_demand };
                        let headroom = Rational::from(gate.service_rate() as i64) - self.committed;
                        (
                            AdmitDecision::Rejected {
                                reason: RejectReason::Saturated {
                                    demanded_bps: cheapest.floor().max(0) as u64,
                                    available_bps: headroom.floor().max(0) as u64,
                                },
                            },
                            None,
                        )
                    }
                }
            }
        };

        let verdict = match decision {
            AdmitDecision::Admitted => "admitted",
            AdmitDecision::Degraded { .. } => "degraded",
            AdmitDecision::Rejected { .. } => "rejected",
        };
        if !decision.is_admitted() {
            self.metrics.inc(M_REJECTED, 1);
            self.tracer.event(
                "admission",
                Category::Admission,
                self.clock,
                SpanId::NONE,
                None,
                vec![
                    ("object", object.to_owned().into()),
                    ("verdict", verdict.into()),
                ],
            );
            return Ok(Response::Opened {
                session: None,
                decision,
            });
        }

        let jobs = match layers {
            None => full_jobs,
            Some(l) => schedule_from_interp(stream, Some(l)),
        };
        let demand = demanded_rate(&jobs, system).unwrap_or(Rational::ZERO);
        let charged = if gate.cache_aware {
            demand
                * match layers {
                    None => full_discount,
                    Some(_) => admission_discount(&self.cache, blob, stream.entries(), layers),
                }
        } else {
            demand
        };
        let plans: Vec<ServePlan> = jobs
            .iter()
            .map(|j| {
                let entry = &stream.entries()[j.index];
                let all = entry.placement.layers();
                let take = layers.unwrap_or(all.len()).min(all.len()).max(1);
                ServePlan {
                    spans: all[..take].to_vec(),
                    checksums: entry.checksums.iter().copied().take(take).collect(),
                }
            })
            .collect();

        let id = SessionId::new(self.session_base + self.sessions.len() as u64);
        let pending: BTreeSet<usize> = (0..jobs.len()).collect();
        match decision {
            AdmitDecision::Degraded { .. } => self.metrics.inc(M_ADMITTED_DEGRADED, 1),
            _ => self.metrics.inc(M_ADMITTED, 1),
        }
        self.committed += charged;
        self.committed_decode += demand;
        let mut attrs = vec![
            ("object", object.to_owned().into()),
            ("verdict", verdict.into()),
        ];
        if gate.cache_aware {
            // Only under the flag, so off-flag traces stay byte-identical.
            attrs.push(("charged_bps", (charged.floor().max(0) as u64).into()));
        }
        self.tracer.event(
            "admission",
            Category::Admission,
            self.clock,
            SpanId::NONE,
            Some(id.raw()),
            attrs,
        );
        let span = self.tracer.begin_span(
            "session",
            Category::Session,
            self.clock,
            SpanId::NONE,
            Some(id.raw()),
        );
        self.tracer.attr(span, "object", object.to_owned());
        self.sessions.push(Session {
            id,
            object: object.to_owned(),
            blob,
            state: SessionState::Opened,
            decision,
            system,
            jobs,
            plans,
            pending,
            epoch: 0,
            rate: (1, 1),
            play_time: TimePoint::ZERO,
            anchor_rel: Rational::ZERO,
            clock_base: None,
            layers_cap: layers,
            full_unit_demand: full_demand,
            unit_demand: demand,
            demand,
            charged,
            released: false,
            have_good: false,
            stats: SessionStats::default(),
            span,
            last_ready: TimePoint::ZERO,
            last_lateness_us: 0,
        });
        Ok(Response::Opened {
            session: Some(id),
            decision,
        })
    }

    fn session_mut(&mut self, id: SessionId) -> Result<&mut Session, ServeError> {
        self.checked_slot(id)
            .map(|i| &mut self.sessions[i])
            .ok_or(ServeError::UnknownSession { session: id })
    }

    /// Queues the earliest pending element of `id` under its current
    /// anchor — the session's single live heap entry; the event loop queues
    /// each successor as it serves (see [`QueuedJob`]).
    fn enqueue_next(&mut self, id: SessionId) {
        let s = &self.sessions[self.slot(id)];
        if let Some(&pos) = s.pending.first() {
            self.heap.push(Reverse(QueuedJob {
                deadline: s.queued_deadline(pos),
                session: s.id.raw(),
                pos,
                epoch: s.epoch,
            }));
        }
    }

    fn play(&mut self, at: TimePoint, id: SessionId) -> Result<Response, ServeError> {
        let s = self.session_mut(id)?;
        if !matches!(s.state, SessionState::Opened | SessionState::Paused) {
            return Err(ServeError::BadState {
                session: id,
                state: s.state,
                request: "Play",
            });
        }
        if s.pending.is_empty() {
            s.state = SessionState::Finished;
            let demand = s.demand;
            let charged = s.charged;
            let span = s.span;
            let already = std::mem::replace(&mut s.released, true);
            if !already {
                self.committed -= charged;
                self.committed_decode -= demand;
            }
            self.tracer.event(
                "session.play",
                Category::Session,
                at,
                span,
                Some(id.raw()),
                vec![("queued", 0u64.into())],
            );
            self.tracer.end_span(span, at);
            self.try_upgrade_sessions(at);
            return Ok(Response::Playing {
                session: id,
                queued: 0,
            });
        }
        s.state = SessionState::Playing;
        s.anchor(at);
        let queued = s.pending.len();
        let span = s.span;
        self.tracer.event(
            "session.play",
            Category::Session,
            at,
            span,
            Some(id.raw()),
            vec![("queued", queued.into())],
        );
        self.enqueue_next(id);
        Ok(Response::Playing {
            session: id,
            queued,
        })
    }

    fn pause(&mut self, id: SessionId) -> Result<Response, ServeError> {
        let s = self.session_mut(id)?;
        if s.state != SessionState::Playing {
            return Err(ServeError::BadState {
                session: id,
                state: s.state,
                request: "Pause",
            });
        }
        s.state = SessionState::Paused;
        s.epoch += 1; // queued jobs of the old epoch become stale
        let remaining = s.pending.len();
        let span = s.span;
        self.tracer.event(
            "session.pause",
            Category::Session,
            self.clock,
            span,
            Some(id.raw()),
            vec![("remaining", remaining.into())],
        );
        Ok(Response::Paused {
            session: id,
            remaining,
        })
    }

    fn seek(
        &mut self,
        at: TimePoint,
        id: SessionId,
        to: TimePoint,
    ) -> Result<Response, ServeError> {
        let s = self.session_mut(id)?;
        if !s.is_active() {
            return Err(ServeError::BadState {
                session: id,
                state: s.state,
                request: "Seek",
            });
        }
        // Everything at or after `to` on the unit-rate stream timeline
        // becomes pending again; a backwards seek re-presents elements.
        s.pending = s
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.deadline >= to)
            .map(|(pos, _)| pos)
            .collect();
        s.epoch += 1;
        let remaining = s.pending.len();
        let span = s.span;
        let state = s.state;
        self.tracer.event(
            "session.seek",
            Category::Session,
            at,
            span,
            Some(id.raw()),
            vec![
                ("to_us", tbm_obs::micros_of(to).into()),
                ("remaining", remaining.into()),
            ],
        );
        if state == SessionState::Playing {
            if remaining == 0 {
                let slot = self.slot(id);
                let s = &mut self.sessions[slot];
                s.state = SessionState::Finished;
                let demand = s.demand;
                let charged = s.charged;
                let already = std::mem::replace(&mut s.released, true);
                if !already {
                    self.committed -= charged;
                    self.committed_decode -= demand;
                }
                self.tracer.end_span(span, at);
                self.try_upgrade_sessions(at);
            } else {
                let slot = self.slot(id);
                self.sessions[slot].anchor(at);
                self.enqueue_next(id);
            }
        }
        Ok(Response::Sought {
            session: id,
            remaining,
        })
    }

    fn set_rate(
        &mut self,
        at: TimePoint,
        id: SessionId,
        num: u32,
        den: u32,
    ) -> Result<Response, ServeError> {
        if num == 0 || den == 0 {
            return Err(ServeError::BadRate { num, den });
        }
        let committed = self.committed;
        let committed_decode = self.committed_decode;
        let capacity = self.capacity;
        {
            let s = self.session_mut(id)?;
            if !s.is_active() {
                return Err(ServeError::BadState {
                    session: id,
                    state: s.state,
                    request: "SetRate",
                });
            }
        }
        let slot = self.slot(id);
        let s = &self.sessions[slot];
        // Faster playback demands proportionally more bytes per second;
        // re-run the admission check on the delta (residency-discounted on
        // the storage stage under cache-aware admission).
        let new_demand = s.unit_demand * Rational::new(num as i64, den as i64);
        let new_charged = if capacity.cache_aware {
            new_demand * residency_discount(&self.cache, s.blob, &s.plans, &s.pending)
        } else {
            new_demand
        };
        if capacity.policy == AdmissionPolicy::Enforce
            && !capacity.fits_staged(
                committed - s.charged,
                committed_decode - s.demand,
                new_charged,
                new_demand,
            )
        {
            return Ok(Response::RateSet {
                session: id,
                accepted: false,
            });
        }
        let s = &mut self.sessions[slot];
        let old = s.demand;
        let old_charged = s.charged;
        s.demand = new_demand;
        s.charged = new_charged;
        s.rate = (num, den);
        let span = s.span;
        self.committed = committed - old_charged + new_charged;
        self.committed_decode = committed_decode - old + new_demand;
        self.tracer.event(
            "session.rate",
            Category::Session,
            at,
            span,
            Some(id.raw()),
            vec![("num", num.into()), ("den", den.into())],
        );
        let slot = self.slot(id);
        if self.sessions[slot].state == SessionState::Playing {
            self.sessions[slot].anchor(at);
            self.enqueue_next(id);
        }
        Ok(Response::RateSet {
            session: id,
            accepted: true,
        })
    }

    fn close(&mut self, id: SessionId) -> Result<Response, ServeError> {
        let s = self.session_mut(id)?;
        if s.state == SessionState::Closed {
            return Err(ServeError::BadState {
                session: id,
                state: s.state,
                request: "Close",
            });
        }
        s.state = SessionState::Closed;
        s.epoch += 1;
        let stats = s.stats;
        let demand = s.demand;
        let charged = s.charged;
        let span = s.span;
        let already = std::mem::replace(&mut s.released, true);
        if !already {
            self.committed -= charged;
            self.committed_decode -= demand;
        }
        self.tracer.event(
            "session.close",
            Category::Session,
            self.clock,
            span,
            Some(id.raw()),
            vec![("elements", stats.elements.into())],
        );
        self.tracer.end_span(span, self.clock);
        self.try_upgrade_sessions(self.clock);
        Ok(Response::Closed { session: id, stats })
    }

    /// Abandons every unserved element of every active session at `at` —
    /// what a node loss looks like when nobody migrates the shard away.
    /// Each abandoned element is accounted as a dropped element backed by a
    /// detected fault (so `faults == degraded + dropped + repaired` and
    /// `service.count == elements_served` keep holding, with zero recorded
    /// service), the sessions close, and their capacity is released.
    /// Returns the number of elements shed.
    ///
    /// The fleet's **no-migration baseline** calls this for shards whose
    /// node died; the migrating fleet never does — the gap between the two
    /// is exactly the serves migration saves.
    pub fn shed_pending(&mut self, at: TimePoint) -> usize {
        let mut shed_total = 0usize;
        for idx in 0..self.sessions.len() {
            let s = &mut self.sessions[idx];
            if !s.is_active() || s.pending.is_empty() {
                continue;
            }
            let shed = s.pending.len();
            s.pending.clear();
            s.epoch += 1; // queued jobs of the old schedule go stale
            s.state = SessionState::Closed;
            s.stats.elements += shed;
            s.stats.dropped += shed;
            let demand = s.demand;
            let charged = s.charged;
            let span = s.span;
            let id = s.id;
            let already = std::mem::replace(&mut s.released, true);
            if !already {
                self.committed -= charged;
                self.committed_decode -= demand;
            }
            self.metrics.inc(M_ELEMENTS, shed as u64);
            self.metrics.inc(M_DROPPED, shed as u64);
            self.metrics.inc(M_FAULTS, shed as u64);
            for _ in 0..shed {
                self.metrics.observe(H_SERVICE, &LATENCY_BUCKETS_US, 0);
            }
            self.tracer.event(
                "session.shed",
                Category::Session,
                at,
                span,
                Some(id.raw()),
                vec![("shed", shed.into())],
            );
            self.tracer.end_span(span, at);
            shed_total += shed;
        }
        if shed_total > 0 {
            self.try_upgrade_sessions(at);
        }
        shed_total
    }

    /// Re-admits degraded-fidelity sessions at full fidelity — the recovery
    /// half of the degraded admission path. A session capped at admission
    /// (`layers_cap`) is upgraded when the store is fully healthy again
    /// (every tier breaker closed) *and* the full-fidelity demand fits the
    /// committed headroom. Runs at every capacity-release point (finish,
    /// close, empty play/seek) and after every served element, so a breaker
    /// closing mid-run is picked up without a session event.
    /// Re-derives every active session's storage charge from current cache
    /// residency — the "re-evaluate admitted sessions as residency shifts"
    /// half of cache-aware admission. A session admitted cheaply against a
    /// hot cache is re-charged when its segments are evicted, and one
    /// admitted cold sheds charge as its spans become resident. Skipped in
    /// one integer compare unless the cache's resident set actually changed
    /// since the last pass ([`SegmentCache::generation`]).
    fn reprice_sessions(&mut self) {
        // No is_enabled() gate: disabling the cache mid-run (budget 0)
        // evicts everything, and the sessions priced against residency
        // must be re-charged full demand — residency_discount reads a
        // disabled cache as zero-resident. A never-enabled cache stays at
        // generation 0 and returns below.
        let generation = self.cache.generation();
        if generation == self.repriced_gen {
            return;
        }
        self.repriced_gen = generation;
        for idx in 0..self.sessions.len() {
            let s = &self.sessions[idx];
            if !s.is_active() || s.released {
                continue;
            }
            let new_charged =
                s.demand * residency_discount(&self.cache, s.blob, &s.plans, &s.pending);
            let old_charged = s.charged;
            if new_charged != old_charged {
                self.sessions[idx].charged = new_charged;
                self.committed = self.committed - old_charged + new_charged;
            }
        }
    }

    fn try_upgrade_sessions(&mut self, now: TimePoint) {
        // If cache residency shifted since the last pass, reprice every
        // active session's storage charge first, so the upgrade checks
        // below — and the next admissions — see current headroom.
        if self.capacity.cache_aware && self.capacity.policy == AdmissionPolicy::Enforce {
            self.reprice_sessions();
        }
        if self.upgrade_hold {
            return; // a forced degradation is in effect; nothing lifts it
        }
        if self.capacity.policy == AdmissionPolicy::AdmitAll {
            return; // AdmitAll never degrades, so there is nothing to lift
        }
        if !self
            .sessions
            .iter()
            .any(|s| s.is_active() && s.layers_cap.is_some() && !s.pending.is_empty())
        {
            return;
        }
        if self.db.store().health_percent() < 100 {
            return; // a tier is still open; keep sessions on the cheap path
        }
        for idx in 0..self.sessions.len() {
            let (object, new_demand) = {
                let s = &self.sessions[idx];
                if !s.is_active() || s.layers_cap.is_none() || s.pending.is_empty() {
                    continue;
                }
                let (num, den) = s.rate;
                let new_demand = s.full_unit_demand * Rational::new(num as i64, den as i64);
                // Upgrades gate at the full, undiscounted demand even under
                // cache-aware admission (conservative: the layers an upgrade
                // adds are exactly the ones least likely to be resident);
                // the charge actually booked below is discounted.
                if !self.capacity.fits_staged(
                    self.committed - s.charged,
                    self.committed_decode - s.demand,
                    new_demand,
                    new_demand,
                ) {
                    continue;
                }
                (s.object.clone(), new_demand)
            };
            let Ok((_, stream)) = self.db.stream_of(&object) else {
                continue;
            };
            let jobs = schedule_from_interp(stream, None);
            let plans: Vec<ServePlan> = jobs
                .iter()
                .map(|j| {
                    let entry = &stream.entries()[j.index];
                    ServePlan {
                        spans: entry.placement.layers().to_vec(),
                        checksums: entry.checksums.clone(),
                    }
                })
                .collect();
            let s = &mut self.sessions[idx];
            if jobs.len() != s.jobs.len() {
                continue; // catalog reshaped under the session; keep the cap
            }
            let new_charged = if self.capacity.cache_aware {
                new_demand * residency_discount(&self.cache, s.blob, &plans, &s.pending)
            } else {
                new_demand
            };
            let old = s.demand;
            let old_charged = s.charged;
            s.jobs = jobs;
            s.plans = plans;
            s.layers_cap = None;
            s.decision = AdmitDecision::Admitted;
            s.unit_demand = s.full_unit_demand;
            s.demand = new_demand;
            s.charged = new_charged;
            let remaining = s.pending.len();
            let id = s.id;
            let span = s.span;
            self.committed = self.committed - old_charged + new_charged;
            self.committed_decode = self.committed_decode - old + new_demand;
            self.metrics.inc(M_UPGRADED, 1);
            self.tracer.event(
                "session.upgrade",
                Category::Session,
                now,
                span,
                Some(id.raw()),
                vec![("remaining", remaining.into())],
            );
            if self.sessions[idx].state == SessionState::Playing {
                // Re-anchor and requeue the remaining elements under the
                // full-fidelity byte demands; queued jobs of the old epoch
                // go stale, exactly as for Seek/SetRate.
                self.sessions[idx].anchor(now);
                self.enqueue_next(id);
            } else {
                self.sessions[idx].epoch += 1;
            }
        }
    }

    /// Forces every active full-fidelity session with work left onto its
    /// base layer — the remediation plane's degradation lever, the paper's
    /// Def. 6 rule ("materialize a cheaper variant when too slow") applied
    /// fleet-wide. Each forced session is re-planned at one layer, its
    /// demand re-priced, and its remaining elements re-anchored at `at`;
    /// non-scalable streams are left alone. Sets a sticky hold so the
    /// automatic upgrade path cannot lift the cap (it otherwise runs after
    /// every served element); [`Server::release_degrade`] clears the hold
    /// and restores exactly the sessions forced here. Returns the number
    /// of sessions degraded.
    pub fn force_degrade(&mut self, at: TimePoint) -> usize {
        self.upgrade_hold = true;
        let at = at.max(self.clock);
        let mut count = 0usize;
        for idx in 0..self.sessions.len() {
            let object = {
                let s = &self.sessions[idx];
                if !s.is_active() || s.layers_cap.is_some() || s.pending.is_empty() {
                    continue;
                }
                s.object.clone()
            };
            let Ok((_, stream)) = self.db.stream_of(&object) else {
                continue;
            };
            if !stream
                .entries()
                .iter()
                .any(|e| e.placement.layer_count() > 1)
            {
                continue; // nothing to shed on a single-layer stream
            }
            let system = stream.system();
            let jobs = schedule_from_interp(stream, Some(1));
            let base_unit = demanded_rate(&jobs, system).unwrap_or(Rational::ZERO);
            let plans: Vec<ServePlan> = jobs
                .iter()
                .map(|j| {
                    let entry = &stream.entries()[j.index];
                    let all = entry.placement.layers();
                    ServePlan {
                        spans: all.iter().take(1).cloned().collect(),
                        checksums: entry.checksums.iter().copied().take(1).collect(),
                    }
                })
                .collect();
            let s = &mut self.sessions[idx];
            if jobs.len() != s.jobs.len() {
                continue; // catalog reshaped under the session; leave it
            }
            let (num, den) = s.rate;
            let new_demand = base_unit * Rational::new(num as i64, den as i64);
            let new_charged = if self.capacity.cache_aware {
                new_demand * residency_discount(&self.cache, s.blob, &plans, &s.pending)
            } else {
                new_demand
            };
            let old = s.demand;
            let old_charged = s.charged;
            s.jobs = jobs;
            s.plans = plans;
            s.layers_cap = Some(1);
            s.decision = AdmitDecision::Degraded { layers: 1 };
            s.unit_demand = base_unit;
            s.demand = new_demand;
            s.charged = new_charged;
            let remaining = s.pending.len();
            let id = s.id;
            let span = s.span;
            self.committed = self.committed - old_charged + new_charged;
            self.committed_decode = self.committed_decode - old + new_demand;
            self.forced.insert(id.raw());
            self.metrics.inc(M_FORCED, 1);
            self.tracer.event(
                "session.force_degrade",
                Category::Session,
                at,
                span,
                Some(id.raw()),
                vec![("remaining", remaining.into())],
            );
            if self.sessions[idx].state == SessionState::Playing {
                self.sessions[idx].anchor(at);
                self.enqueue_next(id);
            } else {
                self.sessions[idx].epoch += 1;
            }
            count += 1;
        }
        count
    }

    /// Lifts a [`Server::force_degrade`]: clears the upgrade hold and
    /// restores every still-active forced session to its full-fidelity
    /// plan and demand (the rollback restores the pre-action state even if
    /// capacity shrank meanwhile — `committed` only gates *new*
    /// admissions). Organically degraded sessions then get their usual
    /// upgrade shot. Returns the number of sessions restored.
    pub fn release_degrade(&mut self, at: TimePoint) -> usize {
        self.upgrade_hold = false;
        let at = at.max(self.clock);
        let forced: Vec<u64> = std::mem::take(&mut self.forced).into_iter().collect();
        let mut count = 0usize;
        for raw in forced {
            let Some(idx) = self.checked_slot(SessionId::new(raw)) else {
                continue;
            };
            let object = {
                let s = &self.sessions[idx];
                if !s.is_active() || s.layers_cap.is_none() || s.pending.is_empty() {
                    continue;
                }
                s.object.clone()
            };
            let Ok((_, stream)) = self.db.stream_of(&object) else {
                continue;
            };
            let jobs = schedule_from_interp(stream, None);
            let plans: Vec<ServePlan> = jobs
                .iter()
                .map(|j| {
                    let entry = &stream.entries()[j.index];
                    ServePlan {
                        spans: entry.placement.layers().to_vec(),
                        checksums: entry.checksums.clone(),
                    }
                })
                .collect();
            let s = &mut self.sessions[idx];
            if jobs.len() != s.jobs.len() {
                continue;
            }
            let (num, den) = s.rate;
            let new_demand = s.full_unit_demand * Rational::new(num as i64, den as i64);
            let new_charged = if self.capacity.cache_aware {
                new_demand * residency_discount(&self.cache, s.blob, &plans, &s.pending)
            } else {
                new_demand
            };
            let old = s.demand;
            let old_charged = s.charged;
            s.jobs = jobs;
            s.plans = plans;
            s.layers_cap = None;
            s.decision = AdmitDecision::Admitted;
            s.unit_demand = s.full_unit_demand;
            s.demand = new_demand;
            s.charged = new_charged;
            let remaining = s.pending.len();
            let id = s.id;
            let span = s.span;
            self.committed = self.committed - old_charged + new_charged;
            self.committed_decode = self.committed_decode - old + new_demand;
            self.metrics.inc(M_UPGRADED, 1);
            self.tracer.event(
                "session.upgrade",
                Category::Session,
                at,
                span,
                Some(id.raw()),
                vec![("remaining", remaining.into())],
            );
            if self.sessions[idx].state == SessionState::Playing {
                self.sessions[idx].anchor(at);
                self.enqueue_next(id);
            } else {
                self.sessions[idx].epoch += 1;
            }
            count += 1;
        }
        self.try_upgrade_sessions(at);
        count
    }

    /// Replaces the segment cache's byte budget mid-run, returning the
    /// previous one ([`SegmentCache::set_budget`] semantics: a shrink
    /// evicts LRU segments immediately).
    pub fn set_cache_budget(&mut self, budget_bytes: u64) -> u64 {
        let prev = self.cache.set_budget(budget_bytes);
        self.metrics
            .set_gauge(G_CACHE_BYTES, self.cache.bytes_cached() as i64);
        // A shrink can evict spans that admitted sessions were priced
        // against; re-charge them right away so the very next admission
        // sees honest headroom.
        if self.capacity.cache_aware && self.capacity.policy == AdmissionPolicy::Enforce {
            self.reprice_sessions();
        }
        prev
    }

    // ------------------------------------------------------------------
    // The service channel
    // ------------------------------------------------------------------

    /// Serves one queued element fetch: cache lookup, retried+verified
    /// layer reads, the degradation ladder, and exact-rational timing
    /// through the shared channel. Returns `false` for a stale entry
    /// (nothing served), `true` after a real serve — the event loop queues
    /// the session's successor only in the latter case.
    fn serve_job(&mut self, job: QueuedJob) -> bool {
        let idx = (job.session - self.session_base) as usize;
        {
            let s = &self.sessions[idx];
            if s.epoch != job.epoch || s.state != SessionState::Playing {
                return false; // stale: paused, re-anchored or closed since queueing
            }
        }
        let store = self.db.store();
        let s = &mut self.sessions[idx];
        let plan = &s.plans[job.pos];
        let blob = s.blob;

        // The channel dispatches this element when it frees up (or at the
        // anchor, whichever is later) — known before any read happens, so
        // the element span and the injected-fault events of the reads below
        // all land at the right simulated instant. A node-outage stall
        // (migration handoff) can only push dispatch later; the difference
        // is attributed to `node-loss` below, never to channel wait.
        let natural_start = self.busy_until.max(s.play_time);
        let start = natural_start.max(self.stall_until);
        self.tracer.set_now(start);
        // A tiered store runs its breakers and outage scripts on the same
        // simulated instant the element is dispatched at.
        store.set_sim_now(start);
        // Slack before this element is late — the store's hedging budget.
        // None until the presentation clock is established.
        let slack_us = s
            .presentation_deadline(job.pos)
            .map(|d| micros((d - start).max(TimeDelta::ZERO).seconds()) as u64);
        let span = self.tracer.begin_span(
            ELEMENT_SPAN,
            Category::Serve,
            start,
            s.span,
            Some(job.session),
        );
        self.tracer.attr(span, ATTR_ELEMENT_INDEX, job.pos);

        // Fetch every allowed layer, stopping at the first bad one. Bytes
        // are split into first-attempt reads and retry re-reads so the
        // element's service time can be attributed to storage vs. retries.
        let mut bytes_first = 0u64;
        let mut bytes_retry = 0u64;
        let mut bytes_decoded = 0u64;
        let mut backoff_us = 0u64;
        let mut attempts_max = 1u32;
        let mut intact_layers = 0usize;
        for (li, &layer_span) in plan.spans.iter().enumerate() {
            if self.cache.get(blob, layer_span).is_some() {
                s.stats.cache_hits += 1;
                bytes_decoded += layer_span.len;
                intact_layers += 1;
                self.tracer.event(
                    "cache.hit",
                    Category::Cache,
                    start,
                    span,
                    Some(job.session),
                    vec![("layer", li.into()), ("bytes", layer_span.len.into())],
                );
                continue;
            }
            s.stats.cache_misses += 1;
            self.tracer.event(
                "cache.miss",
                Category::Cache,
                start,
                span,
                Some(job.session),
                vec![("layer", li.into()), ("bytes", layer_span.len.into())],
            );
            let expected_crc = plan.checksums.get(li).copied();
            let (result, report) = self.retry.run(|attempt| {
                let mut buf = vec![0u8; layer_span.len as usize];
                let ctx = ReadCtx {
                    attempt,
                    deadline_slack_us: slack_us,
                    expected_crc,
                };
                store
                    .read_into_ctx(blob, layer_span, &mut buf, &ctx)
                    .map(|()| buf)
            });
            bytes_first += layer_span.len;
            bytes_retry += layer_span.len * (report.attempts.saturating_sub(1)) as u64;
            bytes_decoded += layer_span.len;
            backoff_us += report.backoff_spent_us;
            attempts_max = attempts_max.max(report.attempts);
            let intact = match result {
                Ok(bytes) => {
                    let ok = match expected_crc {
                        Some(sum) => crc32(&bytes) == sum,
                        None => true, // no checksum recorded: trust the read
                    };
                    if ok {
                        self.cache.insert(blob, layer_span, bytes);
                    }
                    ok
                }
                Err(_) => false,
            };
            if !intact {
                self.metrics.inc(M_FAULTS, 1);
                break;
            }
            intact_layers += 1;
        }
        let bytes_from_store = bytes_first + bytes_retry;
        self.metrics.inc(M_BYTES_READ, bytes_from_store);
        // Tier accounting: the slice of the store's latency hint spent on
        // failed attempts and slow-tier failover serves, and whether a tier
        // was healed from a verifying peer during these reads. Zero for
        // single-backend stores.
        let failover_us = store.drain_failover_hint_us();
        let repairs = store.drain_repairs();

        // The same ladder as ResilientPlayer, expressed per session.
        let fate = if intact_layers == plan.spans.len() {
            if attempts_max > 1 {
                ElementFate::Recovered {
                    attempts: attempts_max,
                }
            } else {
                ElementFate::Intact
            }
        } else {
            match self.policy {
                DegradationPolicy::DropLayers if intact_layers > 0 => ElementFate::BaseLayers {
                    layers: intact_layers,
                },
                DegradationPolicy::DropLayers | DegradationPolicy::RepeatLast => {
                    if s.have_good {
                        ElementFate::Repeated
                    } else {
                        ElementFate::Dropped
                    }
                }
                DegradationPolicy::Skip => ElementFate::Dropped,
            }
        };
        let fate_label = match fate {
            ElementFate::Intact => "intact",
            ElementFate::Recovered { .. } => "recovered",
            ElementFate::BaseLayers { .. } => "base-layers",
            ElementFate::Repeated => "repeated",
            ElementFate::Dropped => "dropped",
        };
        match fate {
            ElementFate::Intact => s.have_good = true,
            ElementFate::Recovered { .. } => {
                s.have_good = true;
                s.stats.recovered += 1;
                self.metrics.inc(M_RECOVERED, 1);
            }
            ElementFate::BaseLayers { .. } => {
                s.have_good = true;
                s.stats.degraded += 1;
                self.metrics.inc(M_DEGRADED, 1);
            }
            ElementFate::Repeated => {
                s.stats.degraded += 1;
                self.metrics.inc(M_DEGRADED, 1);
            }
            ElementFate::Dropped => {
                s.stats.dropped += 1;
                self.metrics.inc(M_DROPPED, 1);
            }
        }
        // A cross-tier repair that still produced a fully intact element is
        // a detected fault resolved by healing instead of degradation — the
        // third leg of the fault-accounting partition. Elements that end
        // degraded or dropped anyway keep their single ladder fault.
        if repairs > 0 && intact_layers == plan.spans.len() {
            s.stats.repaired += 1;
            self.metrics.inc(M_REPAIRED, 1);
            self.metrics.inc(M_FAULTS, 1);
        }

        // Timing through the shared channel: cache hits skip the storage
        // transfer but still pay decode and dispatch; retries re-read. The
        // total is decomposed into the components miss attribution ranks:
        // first-attempt storage transfer (+ the store's latency hint),
        // retry re-reads (+ backoff), and decode (+ dispatch overhead).
        // Their sum is exactly the old single-`cost` formula, so timing is
        // bit-identical to the untraced engine.
        let model = self.capacity.cost_model();
        let bw = model.bandwidth.max(1) as i64;
        let first_cost = Rational::new(bytes_first as i64, bw);
        let retry_cost = Rational::new(bytes_retry as i64, bw);
        let mut decode_cost = Rational::new(model.overhead_us as i64, 1_000_000);
        if model.decode_rate > 0 {
            decode_cost += Rational::new(bytes_decoded as i64, model.decode_rate as i64);
        }
        let hint_us = store.drain_cost_hint_us();
        let penalty_us = backoff_us + hint_us;
        let service = TimeDelta::from_seconds(first_cost + retry_cost + decode_cost)
            + TimeDelta::from_micros(penalty_us as i64);
        // The failover share of the hint is split out so miss attribution
        // can rank tier failover separately from plain storage latency; the
        // sum (and hence the timing) is unchanged.
        let storage_us = micros(first_cost) + hint_us.saturating_sub(failover_us) as i64;
        let retry_us = micros(retry_cost) + backoff_us as i64;
        let decode_us = micros(decode_cost);
        let ready = start + service;
        self.busy_until = ready;

        // How long the element sat behind *other* traffic before dispatch:
        // channel wait beyond this session's own anchor/pipeline position.
        // The node-outage stall is split out so a handoff-delayed element
        // reads as `node-loss`, not admission over-commit; the two sum to
        // the old single wait, so timing is bit-identical when never
        // stalled.
        let wait_base = s.play_time.max(s.last_ready);
        let wait_us = micros((natural_start - wait_base).max(TimeDelta::ZERO).seconds());
        let nodeloss_us = micros((start - natural_start).seconds());

        // The presentation clock starts when the first element after the
        // anchor completes (a one-element startup buffer).
        let deadline = match s.presentation_deadline(job.pos) {
            Some(d) => d,
            None => {
                s.clock_base = Some(ready);
                ready
            }
        };
        let lateness = (ready - deadline).max(TimeDelta::ZERO);
        let lateness_us = micros(lateness.seconds());
        // Lateness carried over from the previous element's overrun: the
        // part of this miss that is inherited backlog, not this element's
        // own doing.
        let inherited_us = s.last_lateness_us.min(lateness_us).max(0);
        s.stats.elements += 1;
        self.metrics.inc(M_ELEMENTS, 1);
        self.metrics.observe(
            H_SERVICE,
            &LATENCY_BUCKETS_US,
            micros(service.seconds()) as u64,
        );
        if bytes_from_store > 0 {
            self.metrics.observe(
                H_READ,
                &LATENCY_BUCKETS_US,
                (storage_us + retry_us + failover_us as i64) as u64,
            );
        }
        if lateness > TimeDelta::ZERO {
            s.stats.misses += 1;
            self.metrics.inc(M_MISSES, 1);
            self.metrics
                .observe(H_LATENESS, &LATENCY_BUCKETS_US, lateness_us as u64);
            // The fidelity split feeds the telemetry plane: degraded
            // sessions' lateness is a different population (base-layer-only
            // admissions under pressure), and queries like "p99 lateness
            // for degraded sessions" need the two recorded apart.
            let by_fidelity = if matches!(s.decision, AdmitDecision::Degraded { .. }) {
                H_LATENESS_DEGRADED
            } else {
                H_LATENESS_FULL
            };
            self.metrics
                .observe(by_fidelity, &LATENCY_BUCKETS_US, lateness_us as u64);
            s.stats.max_lateness = s.stats.max_lateness.max(lateness);
        }
        s.last_ready = ready;
        s.last_lateness_us = lateness_us;
        self.metrics
            .set_gauge(G_CACHE_BYTES, self.cache.stats().bytes_cached as i64);

        self.tracer.attr(span, "fate", fate_label);
        self.tracer.attr(span, ATTR_WAIT_US, wait_us);
        self.tracer.attr(span, ATTR_NODELOSS_US, nodeloss_us);
        self.tracer.attr(span, ATTR_STORAGE_US, storage_us);
        self.tracer.attr(span, ATTR_RETRY_US, retry_us);
        self.tracer.attr(span, ATTR_FAILOVER_US, failover_us as i64);
        self.tracer.attr(span, ATTR_DECODE_US, decode_us);
        self.tracer.attr(span, ATTR_INHERITED_US, inherited_us);
        self.tracer.attr(span, ATTR_LATENESS_US, lateness_us);
        self.tracer.end_span(span, ready);

        s.pending.remove(&job.pos);
        if s.pending.is_empty() {
            s.state = SessionState::Finished;
            let demand = s.demand;
            let charged = s.charged;
            let root = s.span;
            let already = std::mem::replace(&mut s.released, true);
            if !already {
                self.committed -= charged;
                self.committed_decode -= demand;
            }
            self.tracer.end_span(root, ready);
        }
        // After every served element: a finished session just released
        // capacity, and a tier breaker may have closed during the reads
        // above — both can lift a degraded session back to full fidelity.
        self.try_upgrade_sessions(ready);
        true
    }
}
