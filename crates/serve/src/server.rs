//! The delivery engine: a deterministic, simulated-time event loop driving
//! many sessions through one shared service channel.
//!
//! One [`Server`] owns a catalog ([`MediaDb`]) over a [`BlobStore`], a
//! [`SegmentCache`], and a [`Capacity`]. Requests arrive timestamped in
//! simulated time ([`Server::request`]); element fetches are served in
//! earliest-deadline-first order across *all* playing sessions through a
//! single channel whose service rate is the capacity's cost model — the
//! aggregate storage bandwidth and decode throughput admission reasons
//! about. Everything is exact rational time, so a run is a pure function of
//! its request trace (and a fault plan's seed, if the store injects one).
//!
//! Per element the server walks the same ladder as
//! [`tbm_player::ResilientPlayer`]: cache lookup, then a retried read,
//! then per-layer checksum verification, then the
//! [`DegradationPolicy`] ladder (base layers → repeat → drop) for anything
//! unrecoverable. Only verified bytes enter the cache, so one session's
//! intact read shields every later session from a deterministic storage
//! fault at the same span.

use crate::metrics::percentile;
use crate::session::ServePlan;
use crate::{
    AdmissionPolicy, AdmitDecision, Capacity, RejectReason, Request, Response, SegmentCache,
    ServeError, ServerStats, Session, SessionState, SessionStats,
};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use tbm_blob::{BlobStore, MemBlobStore, RetryPolicy};
use tbm_core::{crc32, SessionId};
use tbm_db::MediaDb;
use tbm_player::{demanded_rate, schedule_from_interp, DegradationPolicy, ElementFate};
use tbm_time::{Rational, TimeDelta, TimePoint};

/// One queued element fetch. Ordering is `(deadline, session, pos)` so the
/// heap is a deterministic earliest-deadline-first queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct QueuedJob {
    deadline: TimePoint,
    session: u64,
    pos: usize,
    epoch: u64,
}

/// A multi-session media delivery engine over a catalog and a BLOB store.
///
/// See the [module docs](self) for the scheduling model. Typical use:
///
/// 1. build a [`MediaDb`] and register the objects to serve;
/// 2. wrap it in a server with a [`Capacity`] and (optionally) a cache;
/// 3. submit [`Request`]s in non-decreasing simulated time;
/// 4. call [`Server::finish`] to drain the event loop and read the
///    [`ServerStats`] snapshot.
#[derive(Debug)]
pub struct Server<S: BlobStore = MemBlobStore> {
    db: MediaDb<S>,
    capacity: Capacity,
    cache: SegmentCache,
    retry: RetryPolicy,
    policy: DegradationPolicy,
    sessions: Vec<Session>,
    heap: BinaryHeap<Reverse<QueuedJob>>,
    clock: TimePoint,
    busy_until: TimePoint,
    committed: Rational,
    admitted: usize,
    admitted_degraded: usize,
    rejected: usize,
    elements_served: usize,
    deadline_misses: usize,
    recovered: usize,
    degraded_elements: usize,
    dropped_elements: usize,
    faults_detected: usize,
    storage_bytes_read: u64,
}

impl<S: BlobStore> Server<S> {
    /// A server over `db` with the given capacity, no cache, 3 retries and
    /// the [`DegradationPolicy::DropLayers`] ladder.
    pub fn new(db: MediaDb<S>, capacity: Capacity) -> Server<S> {
        Server {
            db,
            capacity,
            cache: SegmentCache::disabled(),
            retry: RetryPolicy::new(3),
            policy: DegradationPolicy::DropLayers,
            sessions: Vec::new(),
            heap: BinaryHeap::new(),
            clock: TimePoint::ZERO,
            busy_until: TimePoint::ZERO,
            committed: Rational::ZERO,
            admitted: 0,
            admitted_degraded: 0,
            rejected: 0,
            elements_served: 0,
            deadline_misses: 0,
            recovered: 0,
            degraded_elements: 0,
            dropped_elements: 0,
            faults_detected: 0,
            storage_bytes_read: 0,
        }
    }

    /// Builder: attaches a shared segment cache.
    pub fn with_cache(mut self, cache: SegmentCache) -> Server<S> {
        self.cache = cache;
        self
    }

    /// Builder: attaches a cache with the given byte budget.
    pub fn with_cache_budget(self, budget_bytes: u64) -> Server<S> {
        self.with_cache(SegmentCache::new(budget_bytes))
    }

    /// Builder: sets the per-read retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Server<S> {
        self.retry = retry;
        self
    }

    /// Builder: sets the per-element degradation policy.
    pub fn with_degradation(mut self, policy: DegradationPolicy) -> Server<S> {
        self.policy = policy;
        self
    }

    /// The catalog being served.
    pub fn db(&self) -> &MediaDb<S> {
        &self.db
    }

    /// Recovers the catalog, dropping the server state.
    pub fn into_db(self) -> MediaDb<S> {
        self.db
    }

    /// The capacity model.
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// The server clock: the latest simulated time processed.
    pub fn clock(&self) -> TimePoint {
        self.clock
    }

    /// All sessions ever admitted, in admission order (including finished
    /// and closed ones).
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// A session by id.
    pub fn session(&self, id: SessionId) -> Option<&Session> {
        self.sessions.get(id.raw() as usize)
    }

    /// The shared segment cache's counters.
    pub fn cache_stats(&self) -> crate::CacheStats {
        self.cache.stats()
    }

    /// Submits a request at simulated time `at` (non-decreasing across
    /// calls). The event loop first serves every element due by `at`, then
    /// applies the request and answers with a typed [`Response`].
    pub fn request(&mut self, at: TimePoint, request: Request) -> Result<Response, ServeError> {
        if at < self.clock {
            return Err(ServeError::NonMonotonicTime {
                at,
                clock: self.clock,
            });
        }
        self.run_until(at);
        match request {
            Request::Open { object } => self.open(&object),
            Request::Play { session } => self.play(at, session),
            Request::Pause { session } => self.pause(session),
            Request::Seek { session, to } => self.seek(at, session, to),
            Request::SetRate { session, num, den } => self.set_rate(at, session, num, den),
            Request::Close { session } => self.close(session),
        }
    }

    /// Serves every queued element whose deadline is at or before `to`,
    /// advancing the clock to `to`.
    pub fn run_until(&mut self, to: TimePoint) {
        while let Some(Reverse(job)) = self.heap.peek().copied() {
            if job.deadline > to {
                break;
            }
            self.heap.pop();
            self.serve_job(job);
        }
        self.clock = self.clock.max(to);
    }

    /// Drains the event loop completely — every queued element of every
    /// playing session is served — and returns the final statistics.
    /// Opened or paused sessions keep their capacity; close them first if
    /// the run is over.
    pub fn finish(&mut self) -> ServerStats {
        while let Some(Reverse(job)) = self.heap.pop() {
            self.serve_job(job);
        }
        self.clock = self.clock.max(self.busy_until);
        self.stats()
    }

    /// A point-in-time statistics snapshot.
    pub fn stats(&self) -> ServerStats {
        let mut active = 0usize;
        let mut finished = 0usize;
        let mut closed = 0usize;
        let mut worst: Vec<TimeDelta> = Vec::new();
        for s in &self.sessions {
            match s.state {
                SessionState::Finished => finished += 1,
                SessionState::Closed => closed += 1,
                _ => active += 1,
            }
            if s.stats.elements > 0 {
                worst.push(s.stats.max_lateness);
            }
        }
        worst.sort();
        ServerStats {
            active_sessions: active,
            finished_sessions: finished,
            closed_sessions: closed,
            admitted: self.admitted,
            admitted_degraded: self.admitted_degraded,
            rejected: self.rejected,
            elements_served: self.elements_served,
            deadline_misses: self.deadline_misses,
            recovered: self.recovered,
            degraded_elements: self.degraded_elements,
            dropped_elements: self.dropped_elements,
            faults_detected: self.faults_detected,
            cache: self.cache.stats(),
            storage_bytes_read: self.storage_bytes_read,
            committed_bps: self.committed.floor().max(0) as u64,
            p50_lateness: percentile(&worst, 50),
            p99_lateness: percentile(&worst, 99),
            max_lateness: worst.last().copied().unwrap_or(TimeDelta::ZERO),
        }
    }

    // ------------------------------------------------------------------
    // Request handlers
    // ------------------------------------------------------------------

    /// Runs admission control and, when admitted, creates the session.
    fn open(&mut self, object: &str) -> Result<Response, ServeError> {
        let active = self.sessions.iter().filter(|s| s.is_active()).count();
        let (interp, stream) = self.db.stream_of(object)?;
        let blob = interp.blob();
        let system = stream.system();
        let full_jobs = schedule_from_interp(stream, None);
        let full_demand = demanded_rate(&full_jobs, system).unwrap_or(Rational::ZERO);
        let scalable = stream
            .entries()
            .iter()
            .any(|e| e.placement.layer_count() > 1);

        let (decision, layers) = match self.capacity.policy {
            AdmissionPolicy::AdmitAll => (AdmitDecision::Admitted, None),
            AdmissionPolicy::Enforce => {
                if active >= self.capacity.max_sessions {
                    (
                        AdmitDecision::Rejected {
                            reason: RejectReason::SessionLimit {
                                max: self.capacity.max_sessions,
                            },
                        },
                        None,
                    )
                } else if self.capacity.fits(self.committed, full_demand) {
                    (AdmitDecision::Admitted, None)
                } else {
                    let base_jobs = schedule_from_interp(stream, Some(1));
                    let base_demand = demanded_rate(&base_jobs, system).unwrap_or(Rational::ZERO);
                    if scalable && self.capacity.fits(self.committed, base_demand) {
                        (AdmitDecision::Degraded { layers: 1 }, Some(1))
                    } else {
                        let cheapest = if scalable { base_demand } else { full_demand };
                        let headroom =
                            Rational::from(self.capacity.service_rate() as i64) - self.committed;
                        (
                            AdmitDecision::Rejected {
                                reason: RejectReason::Saturated {
                                    demanded_bps: cheapest.floor().max(0) as u64,
                                    available_bps: headroom.floor().max(0) as u64,
                                },
                            },
                            None,
                        )
                    }
                }
            }
        };

        if !decision.is_admitted() {
            self.rejected += 1;
            return Ok(Response::Opened {
                session: None,
                decision,
            });
        }

        let jobs = match layers {
            None => full_jobs,
            Some(l) => schedule_from_interp(stream, Some(l)),
        };
        let demand = demanded_rate(&jobs, system).unwrap_or(Rational::ZERO);
        let plans: Vec<ServePlan> = jobs
            .iter()
            .map(|j| {
                let entry = &stream.entries()[j.index];
                let all = entry.placement.layers();
                let take = layers.unwrap_or(all.len()).min(all.len()).max(1);
                ServePlan {
                    spans: all[..take].to_vec(),
                    checksums: entry.checksums.iter().copied().take(take).collect(),
                }
            })
            .collect();

        let id = SessionId::new(self.sessions.len() as u64);
        let pending: BTreeSet<usize> = (0..jobs.len()).collect();
        match decision {
            AdmitDecision::Degraded { .. } => self.admitted_degraded += 1,
            _ => self.admitted += 1,
        }
        self.committed += demand;
        self.sessions.push(Session {
            id,
            object: object.to_owned(),
            blob,
            state: SessionState::Opened,
            decision,
            system,
            jobs,
            plans,
            pending,
            epoch: 0,
            rate: (1, 1),
            play_time: TimePoint::ZERO,
            anchor_rel: Rational::ZERO,
            clock_base: None,
            unit_demand: demand,
            demand,
            released: false,
            have_good: false,
            stats: SessionStats::default(),
        });
        Ok(Response::Opened {
            session: Some(id),
            decision,
        })
    }

    fn session_mut(&mut self, id: SessionId) -> Result<&mut Session, ServeError> {
        self.sessions
            .get_mut(id.raw() as usize)
            .ok_or(ServeError::UnknownSession { session: id })
    }

    /// Queues every pending element of `id` under its current anchor.
    fn enqueue_pending(&mut self, id: SessionId) {
        let s = &self.sessions[id.raw() as usize];
        let jobs: Vec<QueuedJob> = s
            .pending
            .iter()
            .map(|&pos| QueuedJob {
                deadline: s.queued_deadline(pos),
                session: s.id.raw(),
                pos,
                epoch: s.epoch,
            })
            .collect();
        for j in jobs {
            self.heap.push(Reverse(j));
        }
    }

    fn play(&mut self, at: TimePoint, id: SessionId) -> Result<Response, ServeError> {
        let s = self.session_mut(id)?;
        if !matches!(s.state, SessionState::Opened | SessionState::Paused) {
            return Err(ServeError::BadState {
                session: id,
                state: s.state,
                request: "Play",
            });
        }
        if s.pending.is_empty() {
            s.state = SessionState::Finished;
            let demand = s.demand;
            let already = std::mem::replace(&mut s.released, true);
            if !already {
                self.committed -= demand;
            }
            return Ok(Response::Playing {
                session: id,
                queued: 0,
            });
        }
        s.state = SessionState::Playing;
        s.anchor(at);
        let queued = s.pending.len();
        self.enqueue_pending(id);
        Ok(Response::Playing {
            session: id,
            queued,
        })
    }

    fn pause(&mut self, id: SessionId) -> Result<Response, ServeError> {
        let s = self.session_mut(id)?;
        if s.state != SessionState::Playing {
            return Err(ServeError::BadState {
                session: id,
                state: s.state,
                request: "Pause",
            });
        }
        s.state = SessionState::Paused;
        s.epoch += 1; // queued jobs of the old epoch become stale
        Ok(Response::Paused {
            session: id,
            remaining: s.pending.len(),
        })
    }

    fn seek(
        &mut self,
        at: TimePoint,
        id: SessionId,
        to: TimePoint,
    ) -> Result<Response, ServeError> {
        let s = self.session_mut(id)?;
        if !s.is_active() {
            return Err(ServeError::BadState {
                session: id,
                state: s.state,
                request: "Seek",
            });
        }
        // Everything at or after `to` on the unit-rate stream timeline
        // becomes pending again; a backwards seek re-presents elements.
        s.pending = s
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.deadline >= to)
            .map(|(pos, _)| pos)
            .collect();
        s.epoch += 1;
        let remaining = s.pending.len();
        if s.state == SessionState::Playing {
            if remaining == 0 {
                s.state = SessionState::Finished;
                let demand = s.demand;
                let already = std::mem::replace(&mut s.released, true);
                if !already {
                    self.committed -= demand;
                }
            } else {
                s.anchor(at);
                self.enqueue_pending(id);
            }
        }
        Ok(Response::Sought {
            session: id,
            remaining,
        })
    }

    fn set_rate(
        &mut self,
        at: TimePoint,
        id: SessionId,
        num: u32,
        den: u32,
    ) -> Result<Response, ServeError> {
        if num == 0 || den == 0 {
            return Err(ServeError::BadRate { num, den });
        }
        let committed = self.committed;
        let capacity = self.capacity;
        let s = self.session_mut(id)?;
        if !s.is_active() {
            return Err(ServeError::BadState {
                session: id,
                state: s.state,
                request: "SetRate",
            });
        }
        // Faster playback demands proportionally more bytes per second;
        // re-run the admission check on the delta.
        let new_demand = s.unit_demand * Rational::new(num as i64, den as i64);
        if capacity.policy == AdmissionPolicy::Enforce
            && !capacity.fits(committed - s.demand, new_demand)
        {
            return Ok(Response::RateSet {
                session: id,
                accepted: false,
            });
        }
        let old = s.demand;
        s.demand = new_demand;
        s.rate = (num, den);
        self.committed = committed - old + new_demand;
        if self.sessions[id.raw() as usize].state == SessionState::Playing {
            self.sessions[id.raw() as usize].anchor(at);
            self.enqueue_pending(id);
        }
        Ok(Response::RateSet {
            session: id,
            accepted: true,
        })
    }

    fn close(&mut self, id: SessionId) -> Result<Response, ServeError> {
        let s = self.session_mut(id)?;
        if s.state == SessionState::Closed {
            return Err(ServeError::BadState {
                session: id,
                state: s.state,
                request: "Close",
            });
        }
        s.state = SessionState::Closed;
        s.epoch += 1;
        let stats = s.stats;
        let demand = s.demand;
        let already = std::mem::replace(&mut s.released, true);
        if !already {
            self.committed -= demand;
        }
        Ok(Response::Closed { session: id, stats })
    }

    // ------------------------------------------------------------------
    // The service channel
    // ------------------------------------------------------------------

    /// Serves one queued element fetch: cache lookup, retried+verified
    /// layer reads, the degradation ladder, and exact-rational timing
    /// through the shared channel.
    fn serve_job(&mut self, job: QueuedJob) {
        let idx = job.session as usize;
        {
            let s = &self.sessions[idx];
            if s.epoch != job.epoch || s.state != SessionState::Playing {
                return; // stale: paused, re-anchored or closed since queueing
            }
        }
        let store = self.db.store();
        let s = &mut self.sessions[idx];
        let plan = &s.plans[job.pos];
        let blob = s.blob;

        // Fetch every allowed layer, stopping at the first bad one.
        let mut bytes_from_store = 0u64;
        let mut bytes_decoded = 0u64;
        let mut backoff_us = 0u64;
        let mut attempts_max = 1u32;
        let mut intact_layers = 0usize;
        for (li, &span) in plan.spans.iter().enumerate() {
            if self.cache.get(blob, span).is_some() {
                s.stats.cache_hits += 1;
                bytes_decoded += span.len;
                intact_layers += 1;
                continue;
            }
            s.stats.cache_misses += 1;
            let (result, report) = self.retry.run(|attempt| {
                let mut buf = vec![0u8; span.len as usize];
                store
                    .read_into_attempt(blob, span, &mut buf, attempt)
                    .map(|()| buf)
            });
            bytes_from_store += span.len * report.attempts as u64;
            bytes_decoded += span.len;
            backoff_us += report.backoff_spent_us;
            attempts_max = attempts_max.max(report.attempts);
            let intact = match result {
                Ok(bytes) => {
                    let ok = match plan.checksums.get(li) {
                        Some(&sum) => crc32(&bytes) == sum,
                        None => true, // no checksum recorded: trust the read
                    };
                    if ok {
                        self.cache.insert(blob, span, bytes);
                    }
                    ok
                }
                Err(_) => false,
            };
            if !intact {
                self.faults_detected += 1;
                break;
            }
            intact_layers += 1;
        }
        self.storage_bytes_read += bytes_from_store;

        // The same ladder as ResilientPlayer, expressed per session.
        let fate = if intact_layers == plan.spans.len() {
            if attempts_max > 1 {
                ElementFate::Recovered {
                    attempts: attempts_max,
                }
            } else {
                ElementFate::Intact
            }
        } else {
            match self.policy {
                DegradationPolicy::DropLayers if intact_layers > 0 => ElementFate::BaseLayers {
                    layers: intact_layers,
                },
                DegradationPolicy::DropLayers | DegradationPolicy::RepeatLast => {
                    if s.have_good {
                        ElementFate::Repeated
                    } else {
                        ElementFate::Dropped
                    }
                }
                DegradationPolicy::Skip => ElementFate::Dropped,
            }
        };
        match fate {
            ElementFate::Intact => s.have_good = true,
            ElementFate::Recovered { .. } => {
                s.have_good = true;
                s.stats.recovered += 1;
                self.recovered += 1;
            }
            ElementFate::BaseLayers { .. } => {
                s.have_good = true;
                s.stats.degraded += 1;
                self.degraded_elements += 1;
            }
            ElementFate::Repeated => {
                s.stats.degraded += 1;
                self.degraded_elements += 1;
            }
            ElementFate::Dropped => {
                s.stats.dropped += 1;
                self.dropped_elements += 1;
            }
        }

        // Timing through the shared channel: cache hits skip the storage
        // transfer but still pay decode and dispatch; retries re-read.
        let model = self.capacity.cost_model();
        let mut cost = Rational::new(bytes_from_store as i64, model.bandwidth.max(1) as i64);
        if model.decode_rate > 0 {
            cost += Rational::new(bytes_decoded as i64, model.decode_rate as i64);
        }
        cost += Rational::new(model.overhead_us as i64, 1_000_000);
        let penalty_us = backoff_us + store.drain_cost_hint_us();
        let service = TimeDelta::from_seconds(cost) + TimeDelta::from_micros(penalty_us as i64);
        let start = self.busy_until.max(s.play_time);
        let ready = start + service;
        self.busy_until = ready;

        // The presentation clock starts when the first element after the
        // anchor completes (a one-element startup buffer).
        let deadline = match s.presentation_deadline(job.pos) {
            Some(d) => d,
            None => {
                s.clock_base = Some(ready);
                ready
            }
        };
        let lateness = (ready - deadline).max(TimeDelta::ZERO);
        s.stats.elements += 1;
        self.elements_served += 1;
        if lateness > TimeDelta::ZERO {
            s.stats.misses += 1;
            self.deadline_misses += 1;
            s.stats.max_lateness = s.stats.max_lateness.max(lateness);
        }

        s.pending.remove(&job.pos);
        if s.pending.is_empty() {
            s.state = SessionState::Finished;
            let demand = s.demand;
            let already = std::mem::replace(&mut s.released, true);
            if !already {
                self.committed -= demand;
            }
        }
    }
}
