//! tbm-serve: a multi-session media delivery engine over the tbm catalog.
//!
//! The paper (Gibbs, Breiteneder, Tsichritzis, *Data Modeling of Time-Based
//! Media*, SIGMOD 1994) models media as BLOBs + interpretations + timed
//! streams, and explicitly leaves delivery — "media objects in time", in
//! Feustel & Schmidt's phrasing — to the system underneath. This crate is
//! that system in miniature: one [`Server`] owns a catalog
//! ([`tbm_db::MediaDb`]) and drives many concurrent [`Session`]s through a
//! deterministic, simulated-time event loop.
//!
//! Three mechanisms carry the load:
//!
//! * **Admission control** ([`Capacity`], [`AdmitDecision`]): each `Open` is
//!   checked against aggregate storage bandwidth and decode throughput using
//!   the schedule's demanded byte rate. Sessions are admitted at full
//!   fidelity, admitted degraded (base layer of a scalable stream), or
//!   rejected with a typed reason.
//! * **A shared segment cache** ([`SegmentCache`]): an LRU, byte-budgeted
//!   cache of placement spans. Many sessions on one hot object collapse to
//!   one set of storage reads; only checksum-verified bytes are inserted, so
//!   the cache also absorbs storage faults.
//! * **EDF scheduling**: every playing session's element fetches share one
//!   service channel, served earliest-deadline-first in exact rational time,
//!   so runs are reproducible byte-for-byte.
//!
//! Past one catalog's capacity, [`ShardedDb`] partitions the object
//! namespace across N catalogs by a stable seeded hash of the object name,
//! and [`ShardedServer`] fronts one full `Server` (own capacity budget, own
//! cache, own channel) per shard, with cross-shard stats rollup and a
//! `shard.skew` gauge — see the `shard` module docs.
//!
//! ```
//! use tbm_serve::{Capacity, Request, Server};
//! use tbm_time::TimePoint;
//! # use tbm_codec::dct::DctParams;
//! # use tbm_db::MediaDb;
//! # use tbm_blob::MemBlobStore;
//! # use tbm_interp::capture::capture_video_scalable;
//! # use tbm_media::gen::VideoPattern;
//! # use tbm_time::TimeSystem;
//! # let mut store = MemBlobStore::new();
//! # let frames: Vec<_> = (0..8).map(|i| VideoPattern::MovingBar.render(i, 32, 16)).collect();
//! # let (_b, interp) =
//! #     capture_video_scalable(&mut store, &frames, TimeSystem::PAL, DctParams::default())
//! #         .unwrap();
//! # let mut db = MediaDb::with_store(store);
//! # db.register_interpretation(interp).unwrap();
//!
//! let mut server = Server::new(db, Capacity::new(50_000_000)).with_cache_budget(1 << 20);
//! let t0 = TimePoint::ZERO;
//! let opened = server.request(t0, Request::Open { object: "video1".into() })?;
//! let session = match opened {
//!     tbm_serve::Response::Opened { session: Some(id), .. } => id,
//!     other => panic!("not admitted: {other:?}"),
//! };
//! server.request(t0, Request::Play { session })?;
//! let stats = server.finish();
//! assert_eq!(stats.finished_sessions, 1);
//! assert!(stats.elements_served > 0);
//! # Ok::<(), tbm_serve::ServeError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod capacity;
mod error;
mod fleet;
mod metrics;
mod pool;
mod server;
mod session;
mod shard;

pub use cache::{CacheStats, SegmentCache};
pub use capacity::{AdmissionPolicy, AdmitDecision, Capacity, RejectReason};
pub use error::ServeError;
pub use fleet::{
    skew_percent, Fleet, FleetError, FleetStats, Link, Node, NodeFaultPlan, NodeStats,
    PlacementService, ShardMove,
};
pub use metrics::ServerStats;
pub use pool::WorkerStats;
pub use server::Server;
pub use session::{Request, Response, Session, SessionState, SessionStats};
pub use shard::{
    shard_of, ShardError, ShardedDb, ShardedServer, ShardedStats, SHARD_SESSION_STRIDE,
    SHARD_TRACE_ID_STRIDE,
};

#[cfg(test)]
mod tests {
    use super::*;
    use tbm_blob::{FaultPlan, FaultyBlobStore, MemBlobStore};
    use tbm_codec::dct::DctParams;
    use tbm_core::SessionId;
    use tbm_db::MediaDb;
    use tbm_interp::capture::capture_video_scalable;
    use tbm_media::gen::VideoPattern;
    use tbm_media::Frame;
    use tbm_time::{TimeDelta, TimePoint, TimeSystem};

    fn frames(n: usize) -> Vec<Frame> {
        (0..n as u64)
            .map(|i| VideoPattern::MovingBar.render(i, 48, 32))
            .collect()
    }

    /// A store holding one scalable capture, plus its interpretation.
    fn scalable_capture(n: usize) -> (MemBlobStore, tbm_interp::Interpretation) {
        let mut store = MemBlobStore::new();
        let (_blob, interp) = capture_video_scalable(
            &mut store,
            &frames(n),
            TimeSystem::PAL,
            DctParams::default(),
        )
        .unwrap();
        (store, interp)
    }

    fn scalable_db(n: usize) -> MediaDb {
        let (store, interp) = scalable_capture(n);
        let mut db = MediaDb::with_store(store);
        db.register_interpretation(interp).unwrap();
        db
    }

    fn open<S: tbm_blob::BlobStore>(
        server: &mut Server<S>,
        at: TimePoint,
        object: &str,
    ) -> (Option<SessionId>, AdmitDecision) {
        match server
            .request(
                at,
                Request::Open {
                    object: object.to_owned(),
                },
            )
            .unwrap()
        {
            Response::Opened { session, decision } => (session, decision),
            other => panic!("unexpected response: {other:?}"),
        }
    }

    fn t(ms: i64) -> TimePoint {
        TimePoint::ZERO + TimeDelta::from_millis(ms)
    }

    #[test]
    fn single_session_plays_to_finish_on_time() {
        let db = scalable_db(12);
        let mut server = Server::new(db, Capacity::new(100_000_000));
        let (id, decision) = open(&mut server, t(0), "video1");
        assert_eq!(decision, AdmitDecision::Admitted);
        let id = id.unwrap();
        assert_eq!(server.session(id).unwrap().state(), SessionState::Opened);
        server.request(t(0), Request::Play { session: id }).unwrap();
        let stats = server.finish();
        assert_eq!(stats.finished_sessions, 1);
        assert_eq!(stats.elements_served, 12);
        assert_eq!(
            stats.deadline_misses, 0,
            "ample bandwidth must not miss deadlines"
        );
        assert_eq!(stats.committed_bps, 0, "finished sessions release capacity");
        assert_eq!(server.session(id).unwrap().remaining(), 0);
    }

    #[test]
    fn second_session_on_same_object_hits_the_cache() {
        let db = scalable_db(10);
        let mut server = Server::new(db, Capacity::new(100_000_000)).with_cache_budget(64 << 20);
        let (a, _) = open(&mut server, t(0), "video1");
        server
            .request(
                t(0),
                Request::Play {
                    session: a.unwrap(),
                },
            )
            .unwrap();
        server.run_until(t(2_000));
        let after_first = server.stats();
        assert_eq!(after_first.cache.hits, 0, "first session is all misses");

        let (b, _) = open(&mut server, t(2_000), "video1");
        server
            .request(
                t(2_000),
                Request::Play {
                    session: b.unwrap(),
                },
            )
            .unwrap();
        let stats = server.finish();
        assert_eq!(
            stats.cache.hits,
            stats.elements_served as u64, // 10 elements × 2 layers ÷ 2 sessions
            "every layer of the second session is served from cache"
        );
        assert_eq!(
            stats.storage_bytes_read, after_first.storage_bytes_read,
            "the second session adds no storage reads"
        );
    }

    #[test]
    fn admission_degrades_then_rejects_as_capacity_fills() {
        let db = scalable_db(10);
        // Probe the full-fidelity demand, then size capacity to fit exactly
        // one full session plus one base-layer session.
        let (interp, stream) = db.stream_of("video1").unwrap();
        let full_jobs = tbm_player::schedule_from_interp(stream, None);
        let full = tbm_player::demanded_rate(&full_jobs, stream.system())
            .unwrap()
            .ceil() as u64;
        let base_jobs = tbm_player::schedule_from_interp(stream, Some(1));
        let base = tbm_player::demanded_rate(&base_jobs, stream.system())
            .unwrap()
            .ceil() as u64;
        assert!(base < full);
        let _ = interp;

        let mut server = Server::new(db, Capacity::new(full + base + 1));
        let (_, d1) = open(&mut server, t(0), "video1");
        assert_eq!(d1, AdmitDecision::Admitted);
        let (s2, d2) = open(&mut server, t(0), "video1");
        assert_eq!(d2, AdmitDecision::Degraded { layers: 1 });
        assert!(s2.is_some());
        let (s3, d3) = open(&mut server, t(0), "video1");
        assert!(matches!(d3, AdmitDecision::Rejected { .. }));
        assert!(s3.is_none());

        let stats = server.stats();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.admitted_degraded, 1);
        assert_eq!(stats.rejected, 1);
        assert!(stats.committed_bps <= full + base + 1);
    }

    #[test]
    fn admit_all_overload_misses_deadlines_where_enforce_stays_bounded() {
        // Capacity fits roughly one full-rate session; open four at once.
        let db = scalable_db(10);
        let (_, stream) = db.stream_of("video1").unwrap();
        let full_jobs = tbm_player::schedule_from_interp(stream, None);
        let full = tbm_player::demanded_rate(&full_jobs, stream.system())
            .unwrap()
            .ceil() as u64;

        let run = |policy_all: bool| {
            let db = scalable_db(10);
            let cap = Capacity::new(full + full / 8);
            let cap = if policy_all { cap.admit_all() } else { cap };
            let mut server = Server::new(db, cap);
            for _ in 0..4 {
                let (id, _) = open(&mut server, t(0), "video1");
                if let Some(id) = id {
                    server.request(t(0), Request::Play { session: id }).unwrap();
                }
            }
            server.finish()
        };

        let uncontrolled = run(true);
        let controlled = run(false);
        assert_eq!(uncontrolled.sessions_admitted(), 4);
        assert!(
            uncontrolled.miss_rate() > 0.25,
            "oversubscribed server must miss deadlines (got {})",
            uncontrolled.miss_rate()
        );
        assert!(
            controlled.rejected > 0,
            "enforced admission must turn sessions away"
        );
        assert!(
            controlled.miss_rate() < uncontrolled.miss_rate(),
            "admission control must bound the miss rate ({} vs {})",
            controlled.miss_rate(),
            uncontrolled.miss_rate()
        );
    }

    #[test]
    fn pause_resume_and_close_release_capacity() {
        let db = scalable_db(10);
        let mut server = Server::new(db, Capacity::new(100_000_000));
        let (id, _) = open(&mut server, t(0), "video1");
        let id = id.unwrap();
        server.request(t(0), Request::Play { session: id }).unwrap();
        // Pause almost immediately: most elements should still be pending.
        let paused = server
            .request(t(1), Request::Pause { session: id })
            .unwrap();
        let remaining = match paused {
            Response::Paused { remaining, .. } => remaining,
            other => panic!("unexpected response: {other:?}"),
        };
        assert!(remaining > 0);
        assert_eq!(server.session(id).unwrap().state(), SessionState::Paused);
        // Nothing is served while paused.
        server.run_until(t(10_000));
        assert_eq!(server.session(id).unwrap().remaining(), remaining);
        // Resume, then close mid-flight.
        server
            .request(t(10_000), Request::Play { session: id })
            .unwrap();
        let closed = server
            .request(t(10_001), Request::Close { session: id })
            .unwrap();
        assert!(matches!(closed, Response::Closed { .. }));
        let stats = server.finish();
        assert_eq!(stats.closed_sessions, 1);
        assert_eq!(stats.committed_bps, 0, "close releases committed demand");
        assert!(
            stats.elements_served < 10,
            "closing mid-flight cancels queued elements"
        );
    }

    #[test]
    fn seek_and_rate_reshape_the_schedule() {
        let db = scalable_db(10);
        let mut server = Server::new(db, Capacity::new(100_000_000));
        let (id, _) = open(&mut server, t(0), "video1");
        let id = id.unwrap();
        // Seek before playing: drop the first half (PAL: 40ms per frame).
        let sought = server
            .request(
                t(0),
                Request::Seek {
                    session: id,
                    to: t(200),
                },
            )
            .unwrap();
        assert_eq!(
            sought,
            Response::Sought {
                session: id,
                remaining: 5
            }
        );
        // Double speed halves the wall-clock schedule and doubles demand.
        let rate = server
            .request(
                t(0),
                Request::SetRate {
                    session: id,
                    num: 2,
                    den: 1,
                },
            )
            .unwrap();
        assert_eq!(
            rate,
            Response::RateSet {
                session: id,
                accepted: true
            }
        );
        server.request(t(0), Request::Play { session: id }).unwrap();
        let stats = server.finish();
        assert_eq!(stats.elements_served, 5);
        assert_eq!(stats.finished_sessions, 1);
    }

    #[test]
    fn rate_increase_beyond_capacity_is_refused() {
        let db = scalable_db(10);
        let (_, stream) = db.stream_of("video1").unwrap();
        let full_jobs = tbm_player::schedule_from_interp(stream, None);
        let full = tbm_player::demanded_rate(&full_jobs, stream.system())
            .unwrap()
            .ceil() as u64;
        let mut server = Server::new(scalable_db(10), Capacity::new(full + 1));
        let (id, _) = open(&mut server, t(0), "video1");
        let id = id.unwrap();
        let rate = server
            .request(
                t(0),
                Request::SetRate {
                    session: id,
                    num: 2,
                    den: 1,
                },
            )
            .unwrap();
        assert_eq!(
            rate,
            Response::RateSet {
                session: id,
                accepted: false
            }
        );
        assert_eq!(server.session(id).unwrap().rate(), (1, 1));
        // Slowing down is always fine.
        let rate = server
            .request(
                t(0),
                Request::SetRate {
                    session: id,
                    num: 1,
                    den: 2,
                },
            )
            .unwrap();
        assert_eq!(
            rate,
            Response::RateSet {
                session: id,
                accepted: true
            }
        );
    }

    #[test]
    fn requests_must_be_monotonic_in_time() {
        let db = scalable_db(4);
        let mut server = Server::new(db, Capacity::new(100_000_000));
        let (id, _) = open(&mut server, t(100), "video1");
        let err = server
            .request(
                t(50),
                Request::Play {
                    session: id.unwrap(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::NonMonotonicTime { .. }));
    }

    #[test]
    fn bad_session_state_and_id_are_typed_errors() {
        let db = scalable_db(4);
        let mut server = Server::new(db, Capacity::new(100_000_000));
        let (id, _) = open(&mut server, t(0), "video1");
        let id = id.unwrap();
        let err = server
            .request(t(0), Request::Pause { session: id })
            .unwrap_err();
        assert!(matches!(err, ServeError::BadState { .. }));
        let err = server
            .request(
                t(0),
                Request::Play {
                    session: SessionId::new(77),
                },
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownSession { .. }));
        let err = server
            .request(
                t(0),
                Request::SetRate {
                    session: id,
                    num: 0,
                    den: 1,
                },
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::BadRate { .. }));
        let err = server
            .request(
                t(0),
                Request::Open {
                    object: "nope".into(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::Catalog(_)));
    }

    #[test]
    fn cache_absorbs_retry_storms_and_keeps_fault_accounting() {
        // Faults are deterministic per span address: transient errors clear
        // after N retries, corruption repeats forever. Session one pays the
        // retries and caches every span it verifies; session two is served
        // those spans from cache, so it never retries — only the permanently
        // corrupt spans (which can never be verified or cached) fault again.
        let (store, interp) = scalable_capture(12);
        let plan = FaultPlan::new(0xFEED)
            .with_transient(0.4)
            .with_corruption(0.2);
        let faulty = FaultyBlobStore::new(store, plan);
        let mut db = MediaDb::with_store(faulty);
        db.register_interpretation(interp).unwrap();
        let cap = Capacity::new(100_000_000);

        let mut server = Server::new(db, cap).with_cache_budget(64 << 20);
        let (a, _) = open(&mut server, t(0), "video1");
        let a = a.unwrap();
        server.request(t(0), Request::Play { session: a }).unwrap();
        server.run_until(t(5_000));
        let (b, _) = open(&mut server, t(5_000), "video1");
        let b = b.unwrap();
        server
            .request(t(5_000), Request::Play { session: b })
            .unwrap();
        let total = server.finish();

        let first = server.session(a).unwrap().stats();
        let second = server.session(b).unwrap().stats();
        assert!(
            first.recovered > 0,
            "the seed must produce transient faults for session one"
        );
        assert!(
            first.degraded + first.dropped > 0,
            "the seed must produce permanent corruption"
        );
        assert_eq!(
            second.recovered, 0,
            "verified spans come from the cache; session two never retries"
        );
        assert_eq!(
            second.degraded + second.dropped,
            first.degraded + first.dropped,
            "per-address corruption faults repeat identically per session"
        );
        assert!(second.cache_hits > 0);
        assert_eq!(
            total.faults_detected,
            total.degraded_elements + total.dropped_elements + total.repaired_elements,
            "fault accounting invariant"
        );
    }

    #[test]
    fn degraded_session_upgrades_to_full_fidelity_when_capacity_frees() {
        let db = scalable_db(10);
        let (_, stream) = db.stream_of("video1").unwrap();
        let full_jobs = tbm_player::schedule_from_interp(stream, None);
        let full = tbm_player::demanded_rate(&full_jobs, stream.system())
            .unwrap()
            .ceil() as u64;
        let base_jobs = tbm_player::schedule_from_interp(stream, Some(1));
        let base = tbm_player::demanded_rate(&base_jobs, stream.system())
            .unwrap()
            .ceil() as u64;

        // Capacity fits one full session plus one base-layer session.
        let mut server = Server::new(db, Capacity::new(full + base + 1));
        let (a, d1) = open(&mut server, t(0), "video1");
        assert_eq!(d1, AdmitDecision::Admitted);
        let (b, d2) = open(&mut server, t(0), "video1");
        assert_eq!(d2, AdmitDecision::Degraded { layers: 1 });
        let (a, b) = (a.unwrap(), b.unwrap());
        server.request(t(0), Request::Play { session: a }).unwrap();
        // Session A finishes well before t=2s; the capacity it releases
        // lifts B back to full fidelity while B is still waiting to play.
        server.run_until(t(2_000));
        assert_eq!(server.session(a).unwrap().state(), SessionState::Finished);
        assert_eq!(
            server.session(b).unwrap().decision(),
            AdmitDecision::Admitted,
            "degraded session must recover full fidelity once capacity frees"
        );
        assert_eq!(server.stats().upgraded_sessions, 1);
        assert_eq!(
            server.stats().admitted_degraded,
            1,
            "admission-time counters are history, not current state"
        );

        server
            .request(t(2_000), Request::Play { session: b })
            .unwrap();
        let total = server.finish();
        assert_eq!(total.finished_sessions, 2);
        // B served the full two-layer plan: as many layer reads as A.
        let sa = server.session(a).unwrap().stats();
        let sb = server.session(b).unwrap().stats();
        assert_eq!(
            sb.cache_hits + sb.cache_misses,
            sa.cache_hits + sa.cache_misses
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let db = scalable_db(10);
            let mut server = Server::new(db, Capacity::new(4_000_000)).with_cache_budget(1 << 20);
            let mut ids = Vec::new();
            for i in 0..6 {
                let (id, _) = open(&mut server, t(i * 100), "video1");
                if let Some(id) = id {
                    server
                        .request(t(i * 100), Request::Play { session: id })
                        .unwrap();
                    ids.push(id);
                }
            }
            server.finish()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn traced_run_matches_untraced_and_attributes_every_miss() {
        use tbm_obs::{
            Category, Tracer, ATTR_ELEMENT_INDEX, ATTR_LATENESS_US, ATTR_WAIT_US, ELEMENT_SPAN,
        };

        // A channel sized for ~one session, four admitted anyway, plus a
        // fault plan: deadline misses and degradations are guaranteed, so
        // the trace has something to say.
        let probe = scalable_db(12);
        let (_, stream) = probe.stream_of("video1").unwrap();
        let full_jobs = tbm_player::schedule_from_interp(stream, None);
        let full = tbm_player::demanded_rate(&full_jobs, stream.system())
            .unwrap()
            .ceil() as u64;

        let run = |tracer: Option<Tracer>| {
            let (store, interp) = scalable_capture(12);
            let plan = FaultPlan::new(0xFEED)
                .with_transient(0.4)
                .with_corruption(0.2);
            let mut faulty = FaultyBlobStore::new(store, plan);
            if let Some(t) = &tracer {
                faulty = faulty.with_tracer(t.clone());
            }
            let mut db = MediaDb::with_store(faulty);
            db.register_interpretation(interp).unwrap();
            let mut server = Server::new(db, Capacity::new(full + full / 8).admit_all())
                .with_cache_budget(1 << 20);
            if let Some(t) = &tracer {
                server = server.with_tracer(t.clone());
            }
            for _ in 0..4 {
                let (id, _) = open(&mut server, t(0), "video1");
                if let Some(id) = id {
                    server.request(t(0), Request::Play { session: id }).unwrap();
                }
            }
            (server.finish(), server.attribution())
        };

        let tracer = Tracer::new();
        let (traced, report) = run(Some(tracer.clone()));
        let (untraced, _) = run(None);
        assert_eq!(traced, untraced, "tracing must not perturb the run");

        let snap = tracer.snapshot();
        assert!(!snap.records.is_empty());
        let elements: Vec<_> = snap
            .records
            .iter()
            .filter(|r| r.name == ELEMENT_SPAN)
            .collect();
        assert_eq!(elements.len(), traced.elements_served);
        for e in &elements {
            assert_eq!(e.cat, Category::Serve);
            assert!(e.session.is_some(), "element spans carry their session");
            assert!(!e.parent.is_none(), "element spans hang off session roots");
            assert!(e.attr(ATTR_ELEMENT_INDEX).is_some());
            assert!(e.attr(ATTR_WAIT_US).is_some());
            assert!(e.attr(ATTR_LATENESS_US).is_some());
        }
        // Injected storage faults share the same timeline.
        assert!(snap.records.iter().any(|r| r.cat == Category::Fault));

        // Every deadline miss gets exactly one cause.
        assert!(traced.deadline_misses > 0, "undersized channel must miss");
        assert_eq!(report.total(), traced.deadline_misses);
        let by_cause: usize = report.by_cause().iter().map(|&(_, n)| n).sum();
        assert_eq!(by_cause, report.total());
    }

    #[test]
    fn trace_export_is_valid_json_and_stats_match_registry() {
        use tbm_obs::{validate_json, Tracer};

        let db = scalable_db(8);
        let mut server = Server::new(db, Capacity::new(50_000_000))
            .with_cache_budget(1 << 20)
            .with_tracer(Tracer::new());
        let (id, _) = open(&mut server, t(0), "video1");
        let id = id.unwrap();
        server.request(t(0), Request::Play { session: id }).unwrap();
        let stats = server.finish();

        let mut buf = Vec::new();
        server.trace_to_writer(&mut buf).unwrap();
        let json = String::from_utf8(buf).unwrap();
        validate_json(&json).expect("chrome trace must be well-formed JSON");

        // The snapshot is materialised from the registry, not shadow state.
        assert_eq!(
            server.metrics().counter("serve.elements.served") as usize,
            stats.elements_served
        );
        assert_eq!(stats.service.count() as usize, stats.elements_served);
    }

    // ------------------------------------------------------------------
    // Sharded catalogs
    // ------------------------------------------------------------------

    /// Captures a scalable movie into `store` under `name`: the capture
    /// helper names its stream "video1", so the stream is re-hung under
    /// the caller's name on a fresh interpretation of the same BLOB.
    fn named_capture(store: &mut MemBlobStore, name: &str, n: usize) -> tbm_interp::Interpretation {
        let (blob, interp) =
            capture_video_scalable(store, &frames(n), TimeSystem::PAL, DctParams::default())
                .unwrap();
        let stream = interp.stream("video1").unwrap().clone();
        let mut renamed = tbm_interp::Interpretation::new(blob);
        renamed.add_stream(name, stream).unwrap();
        renamed
    }

    /// `names` captured into the shards that own them, identically per
    /// name regardless of the shard count.
    fn sharded_catalog(names: &[&str], shards: usize, seed: u64, n_frames: usize) -> ShardedDb {
        let mut db = ShardedDb::new(shards, seed);
        for name in names {
            let interp = named_capture(db.store_for_mut(name), name, n_frames);
            let (shard, _) = db.register_interpretation(interp).unwrap();
            assert_eq!(shard, db.shard_for(name), "owner chosen by routing hash");
        }
        db
    }

    #[test]
    fn sharded_server_routes_every_session_to_its_owning_shard() {
        let names = ["movie0", "movie1", "movie2", "movie3", "movie4", "movie5"];
        let db = sharded_catalog(&names, 3, 42, 6);
        let mut server = ShardedServer::new(db, Capacity::new(100_000_000));
        for (i, name) in names.iter().enumerate() {
            let at = t(i as i64 * 10);
            let expect = server.shard_for(name);
            let Response::Opened {
                session: Some(id), ..
            } = server
                .request(
                    at,
                    Request::Open {
                        object: (*name).to_owned(),
                    },
                )
                .unwrap()
            else {
                panic!("ample capacity must admit {name}");
            };
            assert_eq!(server.shard_of_session(id), Some(expect));
            assert_eq!(server.session(id).unwrap().object(), *name);
            server.request(at, Request::Play { session: id }).unwrap();
        }
        let stats = server.finish();
        assert_eq!(stats.global.finished_sessions, names.len());
        assert_eq!(stats.global.elements_served, 6 * names.len());
        // No cross-shard leakage: each shard's sessions serve only objects
        // it owns, and the global view is exactly the per-shard sum.
        for (i, shard) in server.shards().enumerate() {
            for s in shard.sessions() {
                assert_eq!(server.shard_for(s.object()), i);
            }
        }
        let summed: usize = stats.per_shard.iter().map(|s| s.elements_served).sum();
        assert_eq!(summed, stats.global.elements_served);
    }

    #[test]
    fn sharded_front_end_enforces_one_clock_and_knows_its_ids() {
        let db = sharded_catalog(&["movie0", "movie1"], 2, 7, 4);
        let mut server = ShardedServer::new(db, Capacity::new(100_000_000));
        let Response::Opened {
            session: Some(id), ..
        } = server
            .request(
                t(100),
                Request::Open {
                    object: "movie0".to_owned(),
                },
            )
            .unwrap()
        else {
            panic!("must admit");
        };
        // Time is fleet-global: an earlier request is refused even if the
        // target shard's own clock has not advanced that far.
        let err = server
            .request(
                t(50),
                Request::Open {
                    object: "movie1".to_owned(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::NonMonotonicTime { .. }));
        // An id no shard could have issued is unknown at the front end.
        let bogus = tbm_core::SessionId::new(99 * SHARD_SESSION_STRIDE);
        let err = server
            .request(t(100), Request::Play { session: bogus })
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownSession { .. }));
        // A plausible-shard id that was never allocated is unknown too
        // (caught inside the shard, not the router).
        let unallocated = tbm_core::SessionId::new(SHARD_SESSION_STRIDE + 5);
        let err = server
            .request(
                t(100),
                Request::Play {
                    session: unallocated,
                },
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownSession { .. }));
        // The real session still works end to end through the router.
        server
            .request(t(100), Request::Play { session: id })
            .unwrap();
        let stats = server.finish();
        assert_eq!(stats.global.finished_sessions, 1);
    }

    #[test]
    fn per_object_timing_is_identical_at_one_and_many_shards() {
        use std::collections::BTreeMap;

        let names = ["movie0", "movie1", "movie2", "movie3", "movie4"];
        // Sequential, non-overlapping sessions: each object's playback sees
        // an idle channel in both arms, so sharding must not change a
        // single element's timing.
        let run = |shards: usize| -> (BTreeMap<String, SessionStats>, ServerStats) {
            let db = sharded_catalog(&names, shards, 11, 8);
            let mut server =
                ShardedServer::new(db, Capacity::new(3_000_000)).with_cache_budget(32 << 20);
            for (i, name) in names.iter().enumerate() {
                let at = t(i as i64 * 3_000);
                let Response::Opened {
                    session: Some(id), ..
                } = server
                    .request(
                        at,
                        Request::Open {
                            object: (*name).to_owned(),
                        },
                    )
                    .unwrap()
                else {
                    panic!("sequential sessions must all admit");
                };
                server.request(at, Request::Play { session: id }).unwrap();
            }
            let stats = server.finish();
            let per_object = server
                .sessions()
                .map(|s| (s.object().to_owned(), s.stats()))
                .collect();
            (per_object, stats.global)
        };

        let (objects_1, global_1) = run(1);
        let (objects_4, global_4) = run(4);
        assert_eq!(
            objects_1, objects_4,
            "per-object playback stats must not depend on the shard count"
        );
        assert_eq!(
            global_1.service, global_4.service,
            "the merged service-time distribution is bit-identical"
        );
        assert_eq!(global_1.lateness, global_4.lateness);
        assert_eq!(global_1.elements_served, global_4.elements_served);
    }

    #[test]
    fn sharded_metrics_roll_up_with_prefixes_and_skew() {
        let names = ["movie0", "movie1", "movie2", "movie3"];
        let db = sharded_catalog(&names, 2, 3, 5);
        let mut server = ShardedServer::new(db, Capacity::new(100_000_000));
        for (i, name) in names.iter().enumerate() {
            let at = t(i as i64 * 10);
            if let Response::Opened {
                session: Some(id), ..
            } = server
                .request(
                    at,
                    Request::Open {
                        object: (*name).to_owned(),
                    },
                )
                .unwrap()
            {
                server.request(at, Request::Play { session: id }).unwrap();
            }
        }
        let stats = server.finish();
        let m = server.metrics();
        let per_shard_sum: u64 = (0..server.shard_count())
            .map(|i| m.counter(&format!("shard{i}.serve.elements.served")))
            .sum();
        assert_eq!(per_shard_sum, m.counter("serve.elements.served"));
        assert_eq!(
            m.counter("serve.elements.served") as usize,
            stats.global.elements_served
        );
        assert_eq!(m.gauge("shard.skew"), stats.skew_percent());
        assert!(m.gauge("shard.skew") >= 0);
        // The merged lateness/service histograms in the registry match the
        // rollup snapshot exactly.
        assert_eq!(
            m.histogram_or_empty("serve.service_us", &tbm_obs::LATENCY_BUCKETS_US),
            stats.global.service
        );
    }

    #[test]
    fn straddling_interpretations_are_refused() {
        let mut db = ShardedDb::new(4, 0);
        // Find two names that hash to different shards, then put both
        // streams on one interpretation.
        let names: Vec<String> = (0..32).map(|i| format!("s{i}")).collect();
        let a = &names[0];
        let b = names
            .iter()
            .find(|n| db.shard_for(n) != db.shard_for(a))
            .expect("32 names must cover more than one of 4 shards");
        let store = db.store_for_mut(a);
        let (blob, interp) =
            capture_video_scalable(store, &frames(3), TimeSystem::PAL, DctParams::default())
                .unwrap();
        let stream = interp.stream("video1").unwrap().clone();
        let mut straddling = tbm_interp::Interpretation::new(blob);
        straddling.add_stream(a, stream.clone()).unwrap();
        straddling.add_stream(b, stream).unwrap();
        let err = db.register_interpretation(straddling).unwrap_err();
        assert!(matches!(err, ShardError::Straddles { .. }), "got {err}");
        assert!(!db.contains_object(a), "nothing registered on refusal");
    }
}
