//! The worker pool: drives a sharded fleet's per-shard event loops across
//! OS threads with work stealing, without giving up determinism.
//!
//! Shards share no state — each [`Server`] owns its catalog, store, cache,
//! budget and heap — so the only thing parallelism can change is *which
//! thread* runs a shard, never *what the shard computes*. The pool turns
//! that into a hard contract:
//!
//! * **Tick barriers.** A parallel drive is split into rounds. Every round
//!   has a goal (serve everything due by a barrier instant, or drain
//!   completely), and a [`std::sync::Barrier`] separates rounds: no worker
//!   starts round `k+1` until every shard has committed round `k`.
//! * **Deterministic ownership, opportunistic stealing.** At the start of
//!   each round worker `w` refills its own deque with shards `w, w+W,
//!   w+2W, …` (a pure function of the worker count). A worker that runs
//!   dry pops from the *back* of its neighbours' deques. Stealing moves a
//!   shard index between deques — it never splits a shard's work — so each
//!   shard is still driven by exactly one thread per round, in the same
//!   simulated-time order a sequential loop would use.
//! * **Simulated time is untouched.** Every shard serves its own elements
//!   at the same exact rational instants it would single-threaded, so
//!   stats, metrics and (per-shard) traces are byte-identical at any
//!   worker count. The only parallel-observable quantities are the
//!   [`WorkerStats`] counters, which depend on host scheduling and are
//!   deliberately kept *outside* the deterministic surface (they are not
//!   merged into [`crate::ShardedServer::metrics`]).
//!
//! The pool spawns scoped threads per drive, so it is engaged only when a
//! drive actually has due work — idle `run_until` calls stay on the cheap
//! sequential path.

use crate::Server;
use std::collections::VecDeque;
use std::sync::{Barrier, Mutex};
use tbm_blob::BlobStore;
use tbm_time::TimePoint;

/// What one parallel round asks of every shard.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RoundGoal {
    /// Serve everything due at or before the barrier instant.
    RunUntil(TimePoint),
    /// Drain the event loop completely (the finish round).
    Drain,
}

/// Per-worker counters from parallel drives — host-scheduling diagnostics,
/// **outside** the determinism contract (two identical runs may steal
/// differently; the served elements are identical either way).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Shard-drive slots this worker executed (own share + stolen).
    pub shards_run: u64,
    /// Slots taken from another worker's deque.
    pub steals: u64,
    /// Barrier-separated rounds this worker participated in.
    pub rounds: u64,
}

impl WorkerStats {
    /// Adds another drive's counters into this one.
    pub fn absorb(&mut self, other: &WorkerStats) {
        self.shards_run += other.shards_run;
        self.steals += other.steals;
        self.rounds += other.rounds;
    }
}

/// Drives every shard through `goals`, one barrier-separated round per
/// goal, on `workers` scoped threads. Returns per-worker counters.
///
/// The servers are moved into per-shard mutex slots for the drive and
/// moved back out afterwards; a shard index lives in exactly one deque at
/// a time, so each slot lock is uncontended — it exists to satisfy the
/// borrow checker across threads, not to serialise work.
pub(crate) fn run_rounds<S: BlobStore>(
    shards: &mut Vec<Server<S>>,
    goals: &[RoundGoal],
    workers: usize,
) -> Vec<WorkerStats> {
    let n = shards.len();
    let workers = workers.clamp(1, n.max(1));
    let slots: Vec<Mutex<Server<S>>> = std::mem::take(shards).into_iter().map(Mutex::new).collect();
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    let barrier = Barrier::new(workers);
    let mut stats = vec![WorkerStats::default(); workers];

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let slots = &slots;
                let queues = &queues;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut my = WorkerStats::default();
                    for goal in goals {
                        {
                            let mut q = queues[w].lock().unwrap();
                            q.clear();
                            q.extend((w..n).step_by(workers));
                        }
                        // Every deque is full before anyone may steal.
                        barrier.wait();
                        my.rounds += 1;
                        loop {
                            let mut task =
                                queues[w].lock().unwrap().pop_front().map(|i| (i, false));
                            if task.is_none() {
                                for off in 1..workers {
                                    let victim = (w + off) % workers;
                                    if let Some(i) = queues[victim].lock().unwrap().pop_back() {
                                        task = Some((i, true));
                                        break;
                                    }
                                }
                            }
                            // Indices are only ever removed mid-round, so
                            // all-deques-empty is a stable exit condition:
                            // every remaining shard is already claimed by
                            // the worker that popped it.
                            let Some((shard, stolen)) = task else { break };
                            my.shards_run += 1;
                            if stolen {
                                my.steals += 1;
                            }
                            let mut server = slots[shard].lock().unwrap();
                            match goal {
                                RoundGoal::RunUntil(to) => server.run_until(*to),
                                RoundGoal::Drain => server.drain_all(),
                            }
                        }
                        // The round commits before the next barrier opens.
                        barrier.wait();
                    }
                    my
                })
            })
            .collect();
        for (w, h) in handles.into_iter().enumerate() {
            stats[w] = h.join().expect("pool worker panicked");
        }
    });

    *shards = slots
        .into_iter()
        .map(|m| m.into_inner().expect("pool worker poisoned a shard"))
        .collect();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send<T: Send>() {}

    #[test]
    fn servers_cross_threads() {
        // The whole point of the Arc/Mutex tracer and the `Send`
        // supertrait on `BlobStore`: a full server (catalog, store, cache,
        // tracer) must be movable onto a pool worker.
        assert_send::<Server<tbm_blob::MemBlobStore>>();
        assert_send::<Server<tbm_blob::FaultyBlobStore<tbm_blob::MemBlobStore>>>();
    }

    #[test]
    fn worker_stats_absorb_adds() {
        let mut a = WorkerStats {
            shards_run: 3,
            steals: 1,
            rounds: 2,
        };
        a.absorb(&WorkerStats {
            shards_run: 4,
            steals: 2,
            rounds: 2,
        });
        assert_eq!(
            a,
            WorkerStats {
                shards_run: 7,
                steals: 3,
                rounds: 4,
            }
        );
    }
}
