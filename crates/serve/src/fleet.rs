//! A simulated multi-node fleet: shard placement, live migration, lossy
//! transport and node fault injection over the sharded serving engine.
//!
//! [`crate::ShardedServer`] rehearses the multi-machine layout in one
//! process but keeps three fictions: requests reach shards for free, nodes
//! never die, and placement never changes. [`Fleet`] drops all three:
//!
//! * **Nodes and placement.** A [`Fleet`] hosts its shards on simulated
//!   [`Node`]s behind a [`PlacementService`] that owns the shard→node map.
//!   Every shard keeps its own [`Server`] (and so its sessions, cache and
//!   stats) for its whole life — *placement* is what moves, which is
//!   exactly how the catalog-handoff guarantee is kept: a `Play` issued
//!   before a migration completes after it, on the same engine state, with
//!   exact stats rollup preserved.
//! * **Transport.** Every request crosses the hosting node's [`Link`]:
//!   it pays bandwidth + propagation + seeded jitter, and can be lost to a
//!   seeded coin or a scripted partition window. Lost sends are retried on
//!   the fleet's [`RetryPolicy`] schedule (same backoff shape the storage
//!   layer uses); requests that exhaust it fail with
//!   [`FleetError::Unreachable`].
//! * **Node faults.** A [`NodeFaultPlan`] scripts crashes,
//!   restarts-with-salvage and brownout windows. Unscripted unreachability
//!   (loss storms, partitions) trips a per-node circuit breaker — the same
//!   closed → open → half-open shape `TieredBlobStore` runs per tier —
//!   and a deterministic ping probes half-open nodes back to life.
//!
//! **Live migration.** Three triggers move a shard: its node crashed (the
//! shards re-place onto survivors), its node's breaker tripped (same), or
//! the node-level skew gauge crossed the rebalance threshold under load.
//! A migration charges a *catalog handoff*: object metadata plus the
//! shard's BLOB payload transfer over the target's link (metadata only
//! when the target holds a salvaged copy from an earlier stay). The
//! shard's channel is stalled until the handoff completes, and the stall
//! is attributed to the `node-loss` miss cause — so surviving a node
//! failure is visible in the attribution partition instead of polluting
//! admission over-commit. When a crashed node restarts, its home shards
//! migrate back (salvage makes that cheap) and capacity-degraded sessions
//! are upgraded back to full fidelity.
//!
//! With migration disabled ([`Fleet::with_migration`]`(false)`) a crashed
//! node takes its shards' open sessions down with it
//! ([`Server::shed_pending`]) — the no-migration baseline the §fleet
//! experiment holds the migrating fleet against.
//!
//! Determinism carries over wholesale: links draw jitter and loss from
//! counted splitmix64 streams, fault plans are scripted on the simulated
//! clock, and scheduling stays exact-rational — same seed, byte-identical
//! stats, metrics and traces.

use crate::{
    shard_of, Capacity, Request, Response, ServeError, Server, ServerStats, Session, ShardedDb,
    ShardedStats, SHARD_SESSION_STRIDE,
};
use std::collections::BTreeSet;
use std::fmt;
use std::io;
use tbm_blob::{BlobStore, MemBlobStore, RetryPolicy};
use tbm_core::SessionId;
use tbm_obs::{
    attribute, chrome_trace_to_writer, AttributionReport, Category, MetricsRegistry, SpanId,
    TraceSnapshot, Tracer,
};
use tbm_player::DegradationPolicy;
use tbm_time::{TimeDelta, TimePoint};

// Fleet-level registry names. `fleet.*` counters ride next to the serve
// rollup in [`Fleet::metrics`]; the gauges are recomputed per snapshot.
const M_MIGRATIONS: &str = "fleet.migrations";
const M_HANDOFF_BYTES: &str = "fleet.handoff.bytes";
const M_SENT: &str = "fleet.transport.sent";
const M_LOST: &str = "fleet.transport.lost";
const M_XFER_BYTES: &str = "fleet.transport.oob_bytes";
const M_RETRIED: &str = "fleet.transport.retried";
const M_CRASHES: &str = "fleet.node.crashes";
const M_RESTARTS: &str = "fleet.node.restarts";
const M_TRIPS: &str = "fleet.node.breaker_trips";
const M_SHED: &str = "fleet.elements.shed";
const G_NODES: &str = "fleet.nodes";
const G_NODES_UP: &str = "fleet.nodes.up";
const G_FLEET_SKEW: &str = "fleet.skew";
const G_SHARD_SKEW: &str = "shard.skew";

/// Assumed catalog-metadata bytes per object in a migration handoff.
const METADATA_BYTES_PER_OBJECT: u64 = 512;
/// Request-plane message size charged against a link per delivery attempt.
const REQUEST_BYTES: u64 = 256;

/// The same finalizer `tbm-blob`'s fault injector uses, copied rather than
/// shared: link jitter must not perturb (or be perturbed by) storage fault
/// draws, so the two keep separate streams of the same generator.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A simulated network link onto one node: bandwidth, propagation delay,
/// seeded jitter, a seeded loss coin and scripted partition windows.
///
/// Delay and loss are pure functions of `(seed, draw counter)` — a link
/// replays byte-identically — and every delivery draws exactly once, so
/// the stream stays aligned across runs.
#[derive(Debug, Clone)]
pub struct Link {
    /// Payload bandwidth in bytes per second.
    pub bandwidth: u64,
    /// One-way propagation delay in microseconds.
    pub propagation_us: u64,
    /// Upper bound on seeded per-delivery jitter, in microseconds.
    pub jitter_us: u64,
    /// Per-delivery loss probability in `[0, 1)`.
    pub loss: f64,
    /// Scripted `[from, to)` windows in which every delivery is lost.
    partitions: Vec<(TimePoint, TimePoint)>,
    seed: u64,
    draws: u64,
}

impl Link {
    /// A link with the given payload bandwidth, 200 µs propagation, no
    /// jitter, no loss and no partitions.
    pub fn new(bandwidth: u64) -> Link {
        Link {
            bandwidth: bandwidth.max(1),
            propagation_us: 200,
            jitter_us: 0,
            loss: 0.0,
            partitions: Vec::new(),
            seed: 0,
            draws: 0,
        }
    }

    /// Builder: sets the one-way propagation delay.
    pub fn with_propagation_us(mut self, us: u64) -> Link {
        self.propagation_us = us;
        self
    }

    /// Builder: bounds the seeded per-delivery jitter.
    pub fn with_jitter_us(mut self, us: u64) -> Link {
        self.jitter_us = us;
        self
    }

    /// Builder: sets the per-delivery loss probability (clamped to
    /// `[0, 1)`).
    pub fn with_loss(mut self, p: f64) -> Link {
        self.loss = p.clamp(0.0, 0.999_999);
        self
    }

    /// Builder: seeds the jitter/loss draws (the fleet additionally mixes
    /// the node index in, so identical links on different nodes diverge).
    pub fn with_seed(mut self, seed: u64) -> Link {
        self.seed = seed;
        self
    }

    /// Builder: scripts a partition window — every delivery in
    /// `[from, to)` is lost, deterministically.
    pub fn with_partition(mut self, from: TimePoint, to: TimePoint) -> Link {
        self.partitions.push((from, to));
        self
    }

    /// Whether a scripted partition covers `at`.
    pub fn partitioned_at(&self, at: TimePoint) -> bool {
        self.partitions.iter().any(|&(f, t)| at >= f && at < t)
    }

    /// One uniform draw in `[0, 1)` from the counted stream.
    fn draw_unit(&mut self) -> f64 {
        let h = splitmix64(self.seed ^ self.draws.wrapping_mul(0x2545_F491_4F6C_DD1D));
        self.draws += 1;
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Attempts one delivery of `bytes` at `at`: `None` when the message
    /// is lost (partition window or loss coin), otherwise the one-way
    /// delay — propagation + transfer + seeded jitter. Every call draws
    /// once for loss and once for jitter, keeping the stream aligned
    /// whatever the outcome.
    pub fn delivery(&mut self, at: TimePoint, bytes: u64) -> Option<TimeDelta> {
        let lost = self.draw_unit() < self.loss;
        let jitter = if self.jitter_us > 0 {
            (self.draw_unit() * self.jitter_us as f64) as u64
        } else {
            self.draws += 1;
            0
        };
        if lost || self.partitioned_at(at) {
            return None;
        }
        let transfer_us = bytes.saturating_mul(1_000_000) / self.bandwidth;
        Some(TimeDelta::from_micros(
            (self.propagation_us + transfer_us + jitter) as i64,
        ))
    }
}

/// A scripted node fault plan: crashes (with optional restart) and
/// brownout windows, all on the simulated clock.
#[derive(Debug, Clone, Default)]
pub struct NodeFaultPlan {
    crashes: Vec<(TimePoint, Option<TimePoint>)>,
    brownouts: Vec<(TimePoint, TimePoint, u8)>,
}

impl NodeFaultPlan {
    /// An empty plan (the node never faults).
    pub fn new() -> NodeFaultPlan {
        NodeFaultPlan::default()
    }

    /// Scripts a crash at `at` with no restart.
    pub fn with_crash(mut self, at: TimePoint) -> NodeFaultPlan {
        self.crashes.push((at, None));
        self
    }

    /// Scripts a crash at `at` and a restart-with-salvage at `restart`:
    /// the node comes back holding its pre-crash shard bytes, so shards
    /// migrating home pay a metadata-only handoff.
    pub fn with_crash_restart(mut self, at: TimePoint, restart: TimePoint) -> NodeFaultPlan {
        assert!(restart > at, "a node must crash before it restarts");
        self.crashes.push((at, Some(restart)));
        self
    }

    /// Scripts a brownout: from `from` until `to` the node runs at
    /// `health_percent`% — its shards' admission and service bandwidth are
    /// derated ([`Capacity::derated`]) for the window.
    pub fn with_brownout(
        mut self,
        from: TimePoint,
        to: TimePoint,
        health_percent: u8,
    ) -> NodeFaultPlan {
        assert!(to > from, "a brownout window must have positive width");
        self.brownouts.push((from, to, health_percent.min(100)));
        self
    }
}

/// Node circuit-breaker state — the [`tbm_blob::TieredBlobStore`] breaker
/// shape lifted to the node level. Closed while deliveries succeed; opens
/// after `threshold` consecutive losses (shards fail over); half-open
/// after the cooldown, when one successful ping closes it again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open { until: TimePoint },
    HalfOpen,
}

#[derive(Debug, Clone, Copy)]
struct NodeBreaker {
    state: BreakerState,
    consecutive: u32,
    threshold: u32,
    cooldown: TimeDelta,
    trips: u64,
}

impl NodeBreaker {
    fn new(threshold: u32, cooldown: TimeDelta) -> NodeBreaker {
        NodeBreaker {
            state: BreakerState::Closed,
            consecutive: 0,
            threshold: threshold.max(1),
            cooldown,
            trips: 0,
        }
    }

    /// Whether a probe may go through at `now` (flips open → half-open
    /// once the cooldown expires).
    fn allows_probe(&mut self, now: TimePoint) -> bool {
        if let BreakerState::Open { until } = self.state {
            if now >= until {
                self.state = BreakerState::HalfOpen;
            }
        }
        !matches!(self.state, BreakerState::Open { .. })
    }

    /// Records a successful delivery; `true` when this heals an open or
    /// half-open breaker.
    fn on_success(&mut self) -> bool {
        self.consecutive = 0;
        let healed = self.state != BreakerState::Closed;
        self.state = BreakerState::Closed;
        healed
    }

    /// Records a lost delivery; `true` when this trips the breaker.
    fn on_failure(&mut self, now: TimePoint) -> bool {
        self.consecutive += 1;
        let should_trip =
            self.consecutive >= self.threshold && !matches!(self.state, BreakerState::Open { .. });
        if should_trip {
            self.state = BreakerState::Open {
                until: now + self.cooldown,
            };
            self.trips += 1;
        }
        should_trip
    }

    fn reset(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive = 0;
    }
}

/// One simulated node: a name, a [`Link`], a [`NodeFaultPlan`], a breaker
/// and liveness/health state. The shards a node hosts are owned by the
/// [`PlacementService`], not the node — placement is the only thing a
/// migration changes.
#[derive(Debug)]
pub struct Node {
    name: String,
    link: Link,
    plan: NodeFaultPlan,
    breaker: NodeBreaker,
    up: bool,
    health: u8,
    crashes: u64,
    restarts: u64,
    /// Shards whose bytes this node still holds from an earlier stay —
    /// the salvage that makes a migration *back* metadata-only.
    salvaged: BTreeSet<usize>,
}

impl Node {
    /// The node's display name (`node{i}` unless renamed by a link).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the node is currently up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Current health in percent (100 outside brownout windows).
    pub fn health_percent(&self) -> u8 {
        self.health
    }

    /// The node's network link.
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// Scripted crashes applied so far.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Scripted restarts applied so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Circuit-breaker trips (unscripted unreachability) so far.
    pub fn breaker_trips(&self) -> u64 {
        self.breaker.trips
    }
}

/// The shard→node map, owner of every placement decision.
///
/// Objects map to shards by [`shard_of`] (stable and seeded — the golden
/// vectors pin it); shards map to nodes by this table. The *home* of a
/// shard is its initial round-robin node; a restarted node's home shards
/// migrate back to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementService {
    seed: u64,
    shard_to_node: Vec<usize>,
    home: Vec<usize>,
    epoch: u64,
}

impl PlacementService {
    fn new(shards: usize, nodes: usize, seed: u64) -> PlacementService {
        let table: Vec<usize> = (0..shards).map(|s| s % nodes).collect();
        PlacementService {
            seed,
            home: table.clone(),
            shard_to_node: table,
            epoch: 0,
        }
    }

    /// The routing seed (same seed the object hash uses).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of shards in the table.
    pub fn shard_count(&self) -> usize {
        self.shard_to_node.len()
    }

    /// The node currently hosting `shard`.
    pub fn node_of_shard(&self, shard: usize) -> usize {
        self.shard_to_node[shard]
    }

    /// The shard owning `object` (pure [`shard_of`] hash).
    pub fn shard_of_object(&self, object: &str) -> usize {
        shard_of(object, self.seed, self.shard_to_node.len())
    }

    /// The node `object` currently routes to.
    pub fn node_of_object(&self, object: &str) -> usize {
        self.node_of_shard(self.shard_of_object(object))
    }

    /// `shard`'s initial (round-robin) node — where it migrates back to
    /// after its home restarts.
    pub fn home_of(&self, shard: usize) -> usize {
        self.home[shard]
    }

    /// Shards hosted by `node`, ascending.
    pub fn hosted(&self, node: usize) -> Vec<usize> {
        self.shard_to_node
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n == node)
            .map(|(s, _)| s)
            .collect()
    }

    /// Bumped on every reassignment — cheap staleness check for cached
    /// routes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn assign(&mut self, shard: usize, node: usize) {
        self.shard_to_node[shard] = node;
        self.epoch += 1;
    }

    /// A plain-text placement table (shard, home, current node), one row
    /// per shard — deterministic, for operator output.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:>6} {:>6} {:>8}", "shard", "home", "node");
        for (s, &n) in self.shard_to_node.iter().enumerate() {
            let _ = writeln!(out, "{:>6} {:>6} {:>8}", s, self.home[s], n);
        }
        out
    }
}

/// Why a fleet request failed.
#[derive(Debug)]
pub enum FleetError {
    /// The routed shard's server rejected the request.
    Serve(ServeError),
    /// Every transport attempt to the hosting node was lost (node down,
    /// partition window, or loss storm past the retry budget).
    Unreachable {
        /// The node the final attempt targeted.
        node: usize,
        /// The shard the request routed to.
        shard: usize,
        /// Delivery attempts made.
        attempts: u32,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Serve(e) => write!(f, "fleet request failed at the shard: {e}"),
            FleetError::Unreachable {
                node,
                shard,
                attempts,
            } => write!(
                f,
                "node {node} (hosting shard {shard}) unreachable after {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for FleetError {
    fn from(e: ServeError) -> FleetError {
        FleetError::Serve(e)
    }
}

/// Per-node statistics in a [`FleetStats`] snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStats {
    /// The node's name.
    pub name: String,
    /// Whether the node ended the run up.
    pub up: bool,
    /// Shards hosted at snapshot time, ascending.
    pub hosted: Vec<usize>,
    /// Scripted crashes applied.
    pub crashes: u64,
    /// Scripted restarts applied.
    pub restarts: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Elements served by the shards hosted at snapshot time.
    pub elements_served: usize,
}

/// A fleet-wide statistics snapshot: the cross-shard rollup plus per-node
/// and transport/migration accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Per-shard snapshots and their exact merge (placement-independent:
    /// a shard's stats follow it across nodes).
    pub shards: ShardedStats,
    /// One entry per node, in node order.
    pub per_node: Vec<NodeStats>,
    /// Shard migrations performed (failover, restore and rebalance).
    pub migrations: u64,
    /// Catalog-handoff bytes charged across all migrations.
    pub handoff_bytes: u64,
    /// Transport deliveries attempted (including pings).
    pub transport_sent: u64,
    /// Transport deliveries lost.
    pub transport_lost: u64,
    /// Requests that needed more than one delivery attempt.
    pub transport_retried: u64,
    /// Elements abandoned on crashed nodes (no-migration baseline only).
    pub elements_shed: u64,
}

impl FleetStats {
    /// Node-level load skew in percent over *up* nodes: how far the
    /// hottest node's served-element count sits above the per-node mean —
    /// the `fleet.skew` gauge and the rebalance trigger.
    pub fn skew_percent(&self) -> i64 {
        skew_percent(
            self.per_node
                .iter()
                .filter(|n| n.up)
                .map(|n| n.elements_served),
        )
    }
}

/// One placement change: `shard` moved from node `from` to node `to`.
/// The typed receipt every fleet action entry point hands back, and the
/// rollback handle the remediation plane replays in reverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMove {
    /// The shard that moved.
    pub shard: usize,
    /// The node it left.
    pub from: usize,
    /// The node now hosting it.
    pub to: usize,
}

impl fmt::Display for ShardMove {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{} node{}→node{}", self.shard, self.from, self.to)
    }
}

/// Skew of a load distribution in percent: `(max − mean) / mean × 100`,
/// rounded; 0 when empty or idle. This is THE fleet skew definition — the
/// `fleet.skew` and `shard.skew` gauges, the rebalance trigger and the
/// health plane's `SkewBelow` objective all compute it (the golden
/// agreement test pins the alert to this function).
pub fn skew_percent(loads: impl Iterator<Item = usize>) -> i64 {
    let loads: Vec<usize> = loads.collect();
    let total: usize = loads.iter().sum();
    if total == 0 || loads.is_empty() {
        return 0;
    }
    let mean = total as f64 / loads.len() as f64;
    let max = loads.iter().copied().max().unwrap_or(0);
    (((max as f64 - mean) / mean) * 100.0).round() as i64
}

/// Scripted node lifecycle events, derived from the fault plans and
/// processed in `(time, node, kind)` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum NodeEventKind {
    Crash,
    Restart,
    BrownoutStart(u8),
    BrownoutEnd,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct NodeEvent {
    at: TimePoint,
    node: usize,
    kind: NodeEventKind,
}

/// A simulated multi-node fleet over a [`ShardedDb`]: one [`Server`] per
/// shard, hosted on [`Node`]s behind a [`PlacementService`], reached over
/// lossy [`Link`]s, with scripted [`NodeFaultPlan`]s and live shard
/// migration. See the module-level docs for the model.
#[derive(Debug)]
pub struct Fleet<S: BlobStore = MemBlobStore> {
    shards: Vec<Server<S>>,
    nodes: Vec<Node>,
    placement: PlacementService,
    node_capacity: Capacity,
    transport_retry: RetryPolicy,
    rebalance_skew: Option<i64>,
    rebalance_cooldown: TimeDelta,
    last_rebalance: Option<TimePoint>,
    /// Fleet-wide admission derate in percent (100 = none): every node's
    /// capacity is additionally derated by this factor — the remediation
    /// plane's `DerateAdmission` lever.
    admission_derate: u8,
    migration: bool,
    /// Crash-detection delay charged on top of a failover handoff, µs.
    detection_us: u64,
    clock: TimePoint,
    metrics: MetricsRegistry,
    tracer: Tracer,
    events: Vec<NodeEvent>,
    next_event: usize,
}

impl<S: BlobStore> Fleet<S> {
    /// A fleet of `nodes` nodes over `db`, shards placed round-robin
    /// (`shard i → node i % nodes`). `node_capacity` is one *node's*
    /// budget, split evenly across the shards it currently hosts — host
    /// more, serve each slower — so failover onto survivors is paid for,
    /// not free.
    ///
    /// Defaults: 125 MB/s links seeded from the routing seed, 4 delivery
    /// attempts, breaker trip after 2 consecutive losses with a 200 ms
    /// cooldown, rebalance at 150% skew with a 500 ms cooldown, migration
    /// on, 50 ms crash detection.
    pub fn new(db: ShardedDb<S>, nodes: usize, node_capacity: Capacity) -> Fleet<S> {
        assert!(nodes > 0, "a fleet needs at least one node");
        let seed = db.seed();
        let shards: Vec<Server<S>> = db
            .into_shards()
            .into_iter()
            .enumerate()
            .map(|(i, shard_db)| {
                Server::new(shard_db, node_capacity)
                    .with_session_base(i as u64 * SHARD_SESSION_STRIDE)
            })
            .collect();
        let placement = PlacementService::new(shards.len(), nodes, seed);
        let nodes: Vec<Node> = (0..nodes)
            .map(|i| Node {
                name: format!("node{i}"),
                link: Link::new(125_000_000).with_seed(splitmix64(seed ^ (i as u64 + 1))),
                plan: NodeFaultPlan::default(),
                breaker: NodeBreaker::new(2, TimeDelta::from_millis(200)),
                up: true,
                health: 100,
                crashes: 0,
                restarts: 0,
                salvaged: BTreeSet::new(),
            })
            .collect();
        let mut fleet = Fleet {
            shards,
            nodes,
            placement,
            node_capacity,
            transport_retry: RetryPolicy::new(3),
            rebalance_skew: Some(150),
            rebalance_cooldown: TimeDelta::from_millis(500),
            last_rebalance: None,
            admission_derate: 100,
            migration: true,
            detection_us: 50_000,
            clock: TimePoint::ZERO,
            metrics: MetricsRegistry::new(),
            tracer: Tracer::disabled(),
            events: Vec::new(),
            next_event: 0,
        };
        for node in 0..fleet.nodes.len() {
            fleet.recapacity(node);
        }
        fleet
    }

    /// Builder: gives every shard its own segment cache of `budget_bytes`.
    pub fn with_cache_budget(mut self, budget_bytes: u64) -> Fleet<S> {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_cache_budget(budget_bytes))
            .collect();
        self
    }

    /// Builder: sets every shard's per-read *storage* retry policy
    /// (distinct from the transport retry policy).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Fleet<S> {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_retry(retry))
            .collect();
        self
    }

    /// Builder: sets every shard's degradation policy.
    pub fn with_degradation(mut self, policy: DegradationPolicy) -> Fleet<S> {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_degradation(policy))
            .collect();
        self
    }

    /// Builder: attaches one tracer to every shard and to the fleet's own
    /// node/migration events (clones share the ring — one timeline).
    pub fn with_tracer(mut self, tracer: Tracer) -> Fleet<S> {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_tracer(tracer.clone()))
            .collect();
        self.tracer = tracer;
        self
    }

    /// Builder: replaces node `i`'s link.
    pub fn with_link(mut self, node: usize, link: Link) -> Fleet<S> {
        self.nodes[node].link = link;
        self
    }

    /// Builder: scripts node `i`'s fault plan (crashes, restarts,
    /// brownouts).
    pub fn with_fault_plan(mut self, node: usize, plan: NodeFaultPlan) -> Fleet<S> {
        for &(at, restart) in &plan.crashes {
            self.events.push(NodeEvent {
                at,
                node,
                kind: NodeEventKind::Crash,
            });
            if let Some(r) = restart {
                self.events.push(NodeEvent {
                    at: r,
                    node,
                    kind: NodeEventKind::Restart,
                });
            }
        }
        for &(from, to, health) in &plan.brownouts {
            self.events.push(NodeEvent {
                at: from,
                node,
                kind: NodeEventKind::BrownoutStart(health),
            });
            self.events.push(NodeEvent {
                at: to,
                node,
                kind: NodeEventKind::BrownoutEnd,
            });
        }
        self.events.sort();
        self.nodes[node].plan = plan;
        self
    }

    /// Builder: sets the transport retry policy lost deliveries are
    /// retried under (the storage [`RetryPolicy`] shape: bounded attempts,
    /// doubling backoff, a backoff budget, optional seeded jitter).
    pub fn with_transport_retry(mut self, retry: RetryPolicy) -> Fleet<S> {
        self.transport_retry = retry;
        self
    }

    /// Builder: tunes every node's circuit breaker — trip after
    /// `threshold` consecutive losses, half-open probe after
    /// `cooldown_us`.
    pub fn with_node_breaker(mut self, threshold: u32, cooldown_us: u64) -> Fleet<S> {
        for n in &mut self.nodes {
            n.breaker = NodeBreaker::new(threshold, TimeDelta::from_micros(cooldown_us as i64));
        }
        self
    }

    /// Builder: sets the rebalance trigger — migrate the hottest shard
    /// off the hottest node when node skew exceeds `percent` (`None`
    /// disables skew rebalancing).
    pub fn with_rebalance_skew(mut self, percent: Option<i64>) -> Fleet<S> {
        self.rebalance_skew = percent;
        self
    }

    /// Builder: enables or disables shard migration entirely. Disabled,
    /// a crashed node takes its shards' open sessions down with it
    /// ([`Server::shed_pending`]) — the no-migration baseline.
    pub fn with_migration(mut self, migrate: bool) -> Fleet<S> {
        self.migration = migrate;
        self
    }

    /// Builder: sets the crash-detection delay charged on top of a
    /// failover migration's handoff.
    pub fn with_detection_us(mut self, us: u64) -> Fleet<S> {
        self.detection_us = us;
        self
    }

    // ------------------------------------------------------------------
    // Read accessors
    // ------------------------------------------------------------------

    /// The routing seed.
    pub fn seed(&self) -> u64 {
        self.placement.seed
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A node.
    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    /// The nodes in order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// A shard's server (sessions, stats, metrics).
    pub fn shard(&self, i: usize) -> &Server<S> {
        &self.shards[i]
    }

    /// The placement table.
    pub fn placement(&self) -> &PlacementService {
        &self.placement
    }

    /// The fleet clock: the latest simulated time processed.
    pub fn clock(&self) -> TimePoint {
        self.clock
    }

    /// Every shard's sessions, in shard order then admission order.
    pub fn sessions(&self) -> impl Iterator<Item = &Session> {
        self.shards.iter().flat_map(|s| s.sessions().iter())
    }

    /// A session by (globally unique) id.
    pub fn session(&self, id: SessionId) -> Option<&Session> {
        let shard = (id.raw() / SHARD_SESSION_STRIDE) as usize;
        self.shards.get(shard).and_then(|s| s.session(id))
    }

    /// Shard migrations performed so far.
    pub fn migrations(&self) -> u64 {
        self.metrics.counter(M_MIGRATIONS)
    }

    /// The shared tracer handle — the same ring every shard writes into.
    /// Riders on the fleet tick (the telemetry sampler, the health plane)
    /// use it to put their own records on the fleet timeline.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Bumps a counter in the fleet's own registry (the one
    /// [`Fleet::metrics`] merges unprefixed, next to the `fleet.*`
    /// transport counters). Lets tick riders account their events in the
    /// same rollup operators already read.
    pub fn inc_metric(&mut self, name: impl Into<String>, by: u64) {
        self.metrics.inc(name, by);
    }

    /// An owned snapshot of the shared trace.
    pub fn trace(&self) -> TraceSnapshot {
        self.tracer.snapshot()
    }

    /// Writes the shared trace as Chrome `trace_event` JSON.
    pub fn trace_to_writer(&self, w: &mut dyn io::Write) -> io::Result<()> {
        chrome_trace_to_writer(&self.tracer.snapshot(), w)
    }

    /// Deadline-miss attribution over the shared trace — including the
    /// `node-loss` cause migration stalls are charged to.
    pub fn attribution(&self) -> AttributionReport {
        attribute(&self.tracer.snapshot().records)
    }

    // ------------------------------------------------------------------
    // The request plane
    // ------------------------------------------------------------------

    /// Submits a request at simulated time `at` (non-decreasing across
    /// calls). The request crosses the hosting node's link — paying
    /// transport delay, and retried on loss — then runs on the owning
    /// shard's server at its (possibly handoff-clamped) arrival time.
    /// `Open` routes by name hash, session requests by id arithmetic:
    /// both route through the *current* placement, so a request retried
    /// across a failover lands on the shard's new node.
    pub fn request(&mut self, at: TimePoint, request: Request) -> Result<Response, FleetError> {
        if at < self.clock {
            return Err(ServeError::NonMonotonicTime {
                at,
                clock: self.clock,
            }
            .into());
        }
        self.advance(at);
        self.probe_nodes(at);
        if self.migration {
            self.maybe_rebalance(at);
        }
        let shard = match &request {
            Request::Open { object } => self.placement.shard_of_object(object),
            Request::Play { session }
            | Request::Pause { session }
            | Request::Seek { session, .. }
            | Request::SetRate { session, .. }
            | Request::Close { session } => {
                let shard = (session.raw() / SHARD_SESSION_STRIDE) as usize;
                if shard >= self.shards.len() {
                    return Err(ServeError::UnknownSession { session: *session }.into());
                }
                shard
            }
        };

        // Transport: deliver over the hosting node's link, retrying on the
        // fleet's RetryPolicy schedule. Placement is re-read per attempt,
        // so a breaker-tripped failover mid-loop reroutes the retry.
        let policy = self.transport_retry;
        let mut attempt = 0u32;
        let mut backoff_us = policy.base_backoff_us;
        let mut spent_us = 0u64;
        loop {
            let send_at = at + TimeDelta::from_micros(spent_us as i64);
            let node = self.placement.node_of_shard(shard);
            self.metrics.inc(M_SENT, 1);
            let delivered = if !self.nodes[node].up {
                None
            } else {
                self.nodes[node].link.delivery(send_at, REQUEST_BYTES)
            };
            match delivered {
                Some(delay) => {
                    if self.nodes[node].breaker.on_success() {
                        self.node_recovered(node, send_at);
                    }
                    if attempt > 0 {
                        self.metrics.inc(M_RETRIED, 1);
                    }
                    // Transport is ordered per shard: a message cannot
                    // arrive before already-processed traffic, and a
                    // handoff in progress queues it until the move
                    // completes — which is how a Play issued before a
                    // migration completes after it.
                    let arrive = (send_at + delay)
                        .max(self.shards[shard].clock())
                        .max(self.shards[shard].stall_until());
                    let response = self.shards[shard].request(arrive, request)?;
                    self.clock = self.clock.max(at);
                    return Ok(response);
                }
                None => {
                    self.metrics.inc(M_LOST, 1);
                    self.tracer.event(
                        "transport.lost",
                        Category::Fleet,
                        send_at,
                        SpanId::NONE,
                        None,
                        vec![("node", node.into()), ("shard", shard.into())],
                    );
                    if self.nodes[node].breaker.on_failure(send_at) {
                        self.metrics.inc(M_TRIPS, 1);
                        self.tracer.event(
                            "node.breaker_trip",
                            Category::Fleet,
                            send_at,
                            SpanId::NONE,
                            None,
                            vec![("node", node.into())],
                        );
                        if self.migration {
                            self.evacuate(node, send_at, "breaker");
                        }
                    }
                    if attempt >= policy.max_retries
                        || spent_us.saturating_add(backoff_us) > policy.backoff_budget_us
                    {
                        self.clock = self.clock.max(at);
                        return Err(FleetError::Unreachable {
                            node: self.placement.node_of_shard(shard),
                            shard,
                            attempts: attempt + 1,
                        });
                    }
                    spent_us += jittered_backoff(&policy, backoff_us, attempt);
                    backoff_us = backoff_us.saturating_mul(2).max(1);
                    attempt += 1;
                }
            }
        }
    }

    /// Runs the fleet forward to `to`: scripted node events are applied in
    /// order, with every shard's event loop drained up to each event time
    /// first.
    pub fn run_until(&mut self, to: TimePoint) {
        self.advance(to);
    }

    /// Charges an out-of-band payload of `bytes` (e.g. a batch of finished
    /// telemetry segments) over `node`'s link at `at`, exactly like request
    /// traffic: it counts against the transport sent/lost totals and draws
    /// loss + jitter from the link's seeded stream. Returns the delivery
    /// delay, or `None` when the payload was lost (node down, partitioned,
    /// or a loss draw) — the caller decides whether to retry later.
    ///
    /// # Panics
    /// When `node` is out of range.
    pub fn charge_transfer(&mut self, node: usize, at: TimePoint, bytes: u64) -> Option<TimeDelta> {
        self.metrics.inc(M_SENT, 1);
        self.metrics.inc(M_XFER_BYTES, bytes);
        let delivered = if self.nodes[node].up {
            self.nodes[node].link.delivery(at, bytes)
        } else {
            None
        };
        if delivered.is_none() {
            self.metrics.inc(M_LOST, 1);
        }
        delivered
    }

    /// Drains every remaining scripted event and every shard's event loop,
    /// and returns the final fleet statistics. With migration disabled,
    /// shards still stranded on downed nodes shed their open sessions
    /// here if their crash event already fired.
    pub fn finish(&mut self) -> FleetStats {
        if let Some(last) = self.events.last().map(|e| e.at) {
            self.advance(self.clock.max(last));
        }
        let per_shard: Vec<ServerStats> = self.shards.iter_mut().map(|s| s.finish()).collect();
        for s in &self.shards {
            self.clock = self.clock.max(s.clock());
        }
        self.stats_from(per_shard)
    }

    /// A point-in-time fleet snapshot.
    pub fn stats(&self) -> FleetStats {
        self.stats_from(self.shards.iter().map(|s| s.stats()).collect())
    }

    fn stats_from(&self, per_shard: Vec<ServerStats>) -> FleetStats {
        let shards = ShardedStats::from_shards(per_shard);
        let per_node = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let hosted = self.placement.hosted(i);
                let elements_served = hosted
                    .iter()
                    .map(|&s| shards.per_shard[s].elements_served)
                    .sum();
                NodeStats {
                    name: n.name.clone(),
                    up: n.up,
                    hosted,
                    crashes: n.crashes,
                    restarts: n.restarts,
                    breaker_trips: n.breaker.trips,
                    elements_served,
                }
            })
            .collect();
        FleetStats {
            shards,
            per_node,
            migrations: self.metrics.counter(M_MIGRATIONS),
            handoff_bytes: self.metrics.counter(M_HANDOFF_BYTES),
            transport_sent: self.metrics.counter(M_SENT),
            transport_lost: self.metrics.counter(M_LOST),
            transport_retried: self.metrics.counter(M_RETRIED),
            elements_shed: self.metrics.counter(M_SHED),
        }
    }

    /// The fleet metrics rollup: every shard's registry under `shard{i}.`,
    /// every node's hosted-shard merge under `node{i}.`, the unprefixed
    /// global aggregate, the `fleet.*` transport/migration counters, and
    /// the `fleet.nodes`, `fleet.nodes.up`, `fleet.skew` and `shard.skew`
    /// gauges.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut rollup = MetricsRegistry::new();
        for (i, shard) in self.shards.iter().enumerate() {
            rollup.merge_prefixed(shard.metrics(), &format!("shard{i}."));
            rollup.merge_prefixed(shard.metrics(), "");
        }
        for i in 0..self.nodes.len() {
            let mut node_view = MetricsRegistry::new();
            for s in self.placement.hosted(i) {
                node_view.merge_prefixed(self.shards[s].metrics(), "");
            }
            rollup.merge_prefixed(&node_view, &format!("node{i}."));
        }
        rollup.merge_prefixed(&self.metrics, "");
        let stats = self.stats();
        rollup.set_gauge(G_NODES, self.nodes.len() as i64);
        rollup.set_gauge(
            G_NODES_UP,
            self.nodes.iter().filter(|n| n.up).count() as i64,
        );
        rollup.set_gauge(G_FLEET_SKEW, stats.skew_percent());
        rollup.set_gauge(G_SHARD_SKEW, stats.shards.skew_percent());
        rollup
    }

    // ------------------------------------------------------------------
    // Node lifecycle and migration
    // ------------------------------------------------------------------

    /// Applies every scripted event due by `to`, draining shard event
    /// loops to each event instant first, then advances the clock.
    fn advance(&mut self, to: TimePoint) {
        while self.next_event < self.events.len() && self.events[self.next_event].at <= to {
            let ev = self.events[self.next_event];
            self.next_event += 1;
            let at = ev.at.max(self.clock);
            for s in &mut self.shards {
                s.run_until(at);
            }
            self.apply_event(ev, at);
            self.clock = self.clock.max(at);
        }
        for s in &mut self.shards {
            s.run_until(to);
        }
        self.clock = self.clock.max(to);
    }

    fn apply_event(&mut self, ev: NodeEvent, at: TimePoint) {
        match ev.kind {
            NodeEventKind::Crash => {
                if !self.nodes[ev.node].up {
                    return;
                }
                self.nodes[ev.node].up = false;
                self.nodes[ev.node].crashes += 1;
                self.metrics.inc(M_CRASHES, 1);
                let hosted = self.placement.hosted(ev.node);
                self.tracer.event(
                    "node.crash",
                    Category::Fleet,
                    at,
                    SpanId::NONE,
                    None,
                    vec![("node", ev.node.into()), ("hosted", hosted.len().into())],
                );
                if self.migration && self.nodes.iter().any(|n| n.up) {
                    self.evacuate(ev.node, at, "crash");
                } else {
                    // Nobody to fail over to (or migration disabled): the
                    // node's shards lose their open sessions.
                    let mut shed = 0usize;
                    for s in hosted {
                        shed += self.shards[s].shed_pending(at);
                    }
                    self.metrics.inc(M_SHED, shed as u64);
                }
            }
            NodeEventKind::Restart => {
                if self.nodes[ev.node].up {
                    return;
                }
                self.nodes[ev.node].up = true;
                self.nodes[ev.node].health = 100;
                self.nodes[ev.node].breaker.reset();
                self.nodes[ev.node].restarts += 1;
                self.metrics.inc(M_RESTARTS, 1);
                self.tracer.event(
                    "node.restart",
                    Category::Fleet,
                    at,
                    SpanId::NONE,
                    None,
                    vec![("node", ev.node.into())],
                );
                if self.migration {
                    self.restore_home(ev.node, at);
                }
                self.recapacity(ev.node);
            }
            NodeEventKind::BrownoutStart(health) => {
                if !self.nodes[ev.node].up {
                    return;
                }
                self.nodes[ev.node].health = health;
                self.tracer.event(
                    "node.brownout",
                    Category::Fleet,
                    at,
                    SpanId::NONE,
                    None,
                    vec![
                        ("node", ev.node.into()),
                        ("health", u32::from(health).into()),
                    ],
                );
                self.recapacity(ev.node);
            }
            NodeEventKind::BrownoutEnd => {
                if !self.nodes[ev.node].up || self.nodes[ev.node].health == 100 {
                    return;
                }
                self.nodes[ev.node].health = 100;
                self.tracer.event(
                    "node.brownout_end",
                    Category::Fleet,
                    at,
                    SpanId::NONE,
                    None,
                    vec![("node", ev.node.into())],
                );
                // Restored capacity lifts brownout-degraded admissions
                // back to full fidelity (set_capacity pokes the upgrade
                // path).
                self.recapacity(ev.node);
            }
        }
    }

    /// Pings every node whose breaker cooldown has expired — the
    /// half-open probe, driven by the request plane so a failed-over node
    /// (which sees no data traffic) can still heal.
    fn probe_nodes(&mut self, at: TimePoint) {
        for node in 0..self.nodes.len() {
            if !self.nodes[node].up {
                continue;
            }
            let tripped = matches!(
                self.nodes[node].breaker.state,
                BreakerState::Open { .. } | BreakerState::HalfOpen
            );
            if !tripped || !self.nodes[node].breaker.allows_probe(at) {
                continue;
            }
            self.metrics.inc(M_SENT, 1);
            match self.nodes[node].link.delivery(at, REQUEST_BYTES) {
                Some(_) => {
                    if self.nodes[node].breaker.on_success() {
                        self.node_recovered(node, at);
                    }
                }
                None => {
                    self.metrics.inc(M_LOST, 1);
                    self.nodes[node].breaker.on_failure(at);
                }
            }
        }
    }

    /// A node healed (breaker closed after a trip): bring its home shards
    /// back, exactly like a restart's restore.
    fn node_recovered(&mut self, node: usize, at: TimePoint) {
        self.tracer.event(
            "node.recovered",
            Category::Fleet,
            at,
            SpanId::NONE,
            None,
            vec![("node", node.into())],
        );
        if self.migration {
            self.restore_home(node, at);
        }
    }

    /// Migrates every shard hosted by `node` onto the up node hosting the
    /// fewest shards (ties to the lowest index).
    fn evacuate(&mut self, node: usize, at: TimePoint, reason: &'static str) {
        for shard in self.placement.hosted(node) {
            let Some(target) = self.least_loaded_up_node(node) else {
                let shed = self.shards[shard].shed_pending(at);
                self.metrics.inc(M_SHED, shed as u64);
                continue;
            };
            self.migrate(shard, target, at, reason);
        }
    }

    /// Migrates every shard whose *home* is `node` back onto it (salvage
    /// makes the handoff metadata-only when the bytes survived).
    fn restore_home(&mut self, node: usize, at: TimePoint) {
        for shard in 0..self.placement.shard_count() {
            if self.placement.home_of(shard) == node && self.placement.node_of_shard(shard) != node
            {
                self.migrate(shard, node, at, "restore");
            }
        }
    }

    /// The up node (excluding `not`) hosting the fewest shards.
    fn least_loaded_up_node(&self, not: usize) -> Option<usize> {
        (0..self.nodes.len())
            .filter(|&n| n != not && self.nodes[n].up)
            .min_by_key(|&n| (self.placement.hosted(n).len(), n))
    }

    /// Moves `shard` to `to`, charging the catalog handoff: metadata for
    /// every object plus the shard's BLOB payload over the target's link
    /// (payload waived when the target salvaged the shard's bytes from an
    /// earlier stay). The shard's channel stalls until the handoff
    /// completes — in-flight sessions resume afterwards, their stall
    /// attributed to `node-loss`.
    fn migrate(&mut self, shard: usize, to: usize, at: TimePoint, reason: &'static str) {
        let from = self.placement.node_of_shard(shard);
        if from == to {
            return;
        }
        let objects = self.shards[shard].db().object_names().count() as u64;
        let meta_bytes = objects * METADATA_BYTES_PER_OBJECT;
        let payload_bytes = if self.nodes[to].salvaged.contains(&shard) {
            0
        } else {
            let store = self.shards[shard].db().store();
            store
                .blob_ids()
                .into_iter()
                .map(|b| store.len(b).unwrap_or(0))
                .sum()
        };
        let bytes = meta_bytes + payload_bytes;
        let link = &self.nodes[to].link;
        let mut handoff_us = link.propagation_us + bytes.saturating_mul(1_000_000) / link.bandwidth;
        if !self.nodes[from].up {
            handoff_us += self.detection_us;
        }
        let handoff_end = at + TimeDelta::from_micros(handoff_us as i64);
        self.shards[shard].set_stall_until(handoff_end);
        // The source keeps (or kept) the bytes: a later migration back is
        // metadata-only. The target's copy is now authoritative.
        self.nodes[from].salvaged.insert(shard);
        self.nodes[to].salvaged.remove(&shard);
        self.placement.assign(shard, to);
        self.recapacity(from);
        self.recapacity(to);
        self.metrics.inc(M_MIGRATIONS, 1);
        self.metrics.inc(M_HANDOFF_BYTES, bytes);
        self.tracer.event(
            "shard.migrate",
            Category::Fleet,
            at,
            SpanId::NONE,
            None,
            vec![
                ("shard", shard.into()),
                ("from", from.into()),
                ("to", to.into()),
                ("bytes", bytes.into()),
                ("handoff_us", handoff_us.into()),
                ("reason", reason.into()),
            ],
        );
    }

    /// Re-splits `node`'s capacity across the shards it now hosts,
    /// derated by its brownout health.
    fn recapacity(&mut self, node: usize) {
        let hosted = self.placement.hosted(node);
        if hosted.is_empty() {
            return;
        }
        let n = hosted.len() as u64;
        let base = self
            .node_capacity
            .derated(self.nodes[node].health)
            .derated(self.admission_derate);
        let split = Capacity {
            storage_bandwidth: (base.storage_bandwidth / n).max(1),
            decode_rate: if base.decode_rate == 0 {
                0
            } else {
                (base.decode_rate / n).max(1)
            },
            overhead_us: base.overhead_us,
            max_sessions: if base.max_sessions == usize::MAX {
                usize::MAX
            } else {
                (base.max_sessions / n as usize).max(1)
            },
            policy: base.policy,
            cache_aware: base.cache_aware,
        };
        for s in hosted {
            self.shards[s].set_capacity(split);
        }
    }

    /// Migrates the hottest shard off the hottest node when node-level
    /// skew exceeds the configured threshold (cooldown-limited so one hot
    /// minute doesn't thrash placement). The request-plane face of
    /// [`Fleet::rebalance_on_skew`].
    fn maybe_rebalance(&mut self, at: TimePoint) {
        let Some(threshold) = self.rebalance_skew else {
            return;
        };
        if let Some(last) = self.last_rebalance {
            if at - last < self.rebalance_cooldown {
                return;
            }
        }
        if self.rebalance_on_skew(at, threshold).is_some() {
            self.last_rebalance = Some(at);
        }
    }

    // ------------------------------------------------------------------
    // Guarded fleet actions (the remediation plane's entry points)
    // ------------------------------------------------------------------

    /// Node load in integer percent — committed session demand over the
    /// node's current (derated, split) capacity, summed across its hosted
    /// shards. The same signal the telemetry plane samples as
    /// `NodeLoadPct`, so the rebalancer and the `load-skew` alert can
    /// never tell the operator two different stories.
    fn node_load_pct(&self, node: usize) -> usize {
        let hosted = self.placement.hosted(node);
        let committed: u64 = hosted
            .iter()
            .map(|&s| self.shards[s].stats().committed_bps)
            .sum();
        let capacity: u64 = hosted
            .iter()
            .map(|&s| self.shards[s].capacity().storage_bandwidth)
            .sum();
        committed
            .saturating_mul(100)
            .checked_div(capacity)
            .unwrap_or(0) as usize
    }

    /// Migrates the hottest shard off the hottest node when the
    /// cross-node load skew ([`skew_percent`] over per-node
    /// committed/capacity load — the `NodeLoadPct` signal the `load-skew`
    /// alert judges) exceeds `threshold_pct`. Returns the move performed,
    /// or `None` when a guard held it back.
    ///
    /// Guarded no-op (placement untouched, nothing charged) when:
    /// * fewer than two nodes are up — a single-node fleet has nowhere to
    ///   move load;
    /// * skew is at or below `threshold_pct` — an already-balanced fleet
    ///   must not have its placement churned;
    /// * the hottest node hosts only one shard — moving it would just
    ///   relocate the hot spot, not spread it.
    pub fn rebalance_on_skew(&mut self, at: TimePoint, threshold_pct: i64) -> Option<ShardMove> {
        let up: Vec<usize> = (0..self.nodes.len())
            .filter(|&n| self.nodes[n].up)
            .collect();
        if up.len() < 2 {
            return None;
        }
        let skew = skew_percent(up.iter().map(|&n| self.node_load_pct(n)));
        if skew <= threshold_pct {
            return None;
        }
        // The genuinely hottest node (ties break low, deterministically) —
        // never a stand-in picked for hosting enough shards, which is how
        // the old rebalancer could move a shard *onto* the hot spot.
        let &hot = up
            .iter()
            .max_by_key(|&&n| (self.node_load_pct(n), usize::MAX - n))?;
        if self.placement.hosted(hot).len() < 2 || self.node_load_pct(hot) == 0 {
            return None;
        }
        let &cold = up
            .iter()
            .filter(|&&n| n != hot)
            .min_by_key(|&&n| (self.node_load_pct(n), n))?;
        let shard = self
            .placement
            .hosted(hot)
            .into_iter()
            .max_by_key(|&s| (self.shards[s].stats().committed_bps, usize::MAX - s))?;
        self.tracer.event(
            "fleet.rebalance",
            Category::Fleet,
            at,
            SpanId::NONE,
            None,
            vec![
                ("skew", skew.into()),
                ("hot", hot.into()),
                ("cold", cold.into()),
            ],
        );
        self.migrate(shard, cold, at, "rebalance");
        Some(ShardMove {
            shard,
            from: hot,
            to: cold,
        })
    }

    /// Moves `shard` onto node `to`, charging the usual catalog handoff —
    /// the rollback half of a placement action. `None` (untouched) when
    /// the shard is already there or the target is down.
    ///
    /// # Panics
    /// When `shard` or `to` is out of range.
    pub fn move_shard(
        &mut self,
        shard: usize,
        to: usize,
        at: TimePoint,
        reason: &'static str,
    ) -> Option<ShardMove> {
        assert!(shard < self.shards.len(), "shard out of range");
        assert!(to < self.nodes.len(), "node out of range");
        let from = self.placement.node_of_shard(shard);
        if from == to || !self.nodes[to].up {
            return None;
        }
        self.migrate(shard, to, at, reason);
        Some(ShardMove { shard, from, to })
    }

    /// Probes every breaker-tripped node, then migrates the shards of
    /// every node that is down (or still breaker-open) onto the
    /// least-loaded up nodes. A guarded no-op returning no moves on a
    /// healthy fleet — the kill path normally evacuates at crash time, so
    /// this only acts when a crash found no survivors (and one is back) or
    /// migration raced a fault. Returns the moves performed.
    pub fn evacuate_unhealthy(&mut self, at: TimePoint) -> Vec<ShardMove> {
        self.probe_nodes(at);
        let mut moves = Vec::new();
        for node in 0..self.nodes.len() {
            let unhealthy = !self.nodes[node].up
                || matches!(self.nodes[node].breaker.state, BreakerState::Open { .. });
            if !unhealthy {
                continue;
            }
            for shard in self.placement.hosted(node) {
                if let Some(target) = self.least_loaded_up_node(node) {
                    self.migrate(shard, target, at, "evacuate");
                    moves.push(ShardMove {
                        shard,
                        from: node,
                        to: target,
                    });
                }
            }
        }
        moves
    }

    /// Sets the fleet-wide admission derate (percent of node capacity
    /// handed to admission and service; 100 = none, clamped to `1..=100`)
    /// and re-splits every node's capacity. Returns the previous derate —
    /// the rollback handle. A no-op when the derate is unchanged.
    pub fn set_admission_derate(&mut self, percent: u8) -> u8 {
        let percent = percent.clamp(1, 100);
        let prev = self.admission_derate;
        if percent == prev {
            return prev;
        }
        self.admission_derate = percent;
        self.tracer.event(
            "fleet.derate",
            Category::Fleet,
            self.clock,
            SpanId::NONE,
            None,
            vec![
                ("percent", u32::from(percent).into()),
                ("prev", u32::from(prev).into()),
            ],
        );
        for node in 0..self.nodes.len() {
            self.recapacity(node);
        }
        prev
    }

    /// The current fleet-wide admission derate (100 = none).
    pub fn admission_derate(&self) -> u8 {
        self.admission_derate
    }

    /// Forces every shard's active full-fidelity sessions onto their base
    /// layer ([`Server::force_degrade`]) — sticky until
    /// [`Fleet::release_degrade_all`]. Returns sessions degraded.
    pub fn force_degrade_all(&mut self, at: TimePoint) -> usize {
        self.shards.iter_mut().map(|s| s.force_degrade(at)).sum()
    }

    /// Lifts a fleet-wide forced degradation
    /// ([`Server::release_degrade`]). Returns sessions restored.
    pub fn release_degrade_all(&mut self, at: TimePoint) -> usize {
        self.shards.iter_mut().map(|s| s.release_degrade(at)).sum()
    }

    /// Replaces every shard's segment-cache budget, returning the first
    /// shard's previous budget — the rollback handle (budgets are uniform
    /// when set through the fleet builder or this method).
    pub fn set_cache_budget_all(&mut self, budget_bytes: u64) -> u64 {
        let mut prev = 0u64;
        for (i, s) in self.shards.iter_mut().enumerate() {
            let p = s.set_cache_budget(budget_bytes);
            if i == 0 {
                prev = p;
            }
        }
        prev
    }
}

/// The backoff actually charged for retry `attempt` under `policy`:
/// nominal without jitter, seed-deterministic in `[nominal/2, nominal]`
/// with it — the [`RetryPolicy::jittered`] rule, restated here because the
/// transport loop steps simulated time itself instead of running inside
/// [`RetryPolicy::run`].
fn jittered_backoff(policy: &RetryPolicy, nominal: u64, attempt: u32) -> u64 {
    match policy.jitter_seed {
        None => nominal,
        Some(seed) => {
            let half = nominal / 2;
            let spread = nominal - half;
            if spread == 0 {
                return nominal;
            }
            let h = splitmix64(splitmix64(seed) ^ u64::from(attempt + 1));
            half + h % (spread + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: i64) -> TimePoint {
        TimePoint::ZERO + TimeDelta::from_millis(ms)
    }

    #[test]
    fn link_delivery_is_seeded_and_replayable() {
        let run = || {
            let mut link = Link::new(1_000_000)
                .with_jitter_us(500)
                .with_loss(0.3)
                .with_seed(42);
            (0..32)
                .map(|i| link.delivery(t(i), 1_000))
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run(), "same seed, same delivery outcomes");
        assert!(a.iter().any(|d| d.is_none()), "30% loss must lose some");
        assert!(a.iter().any(|d| d.is_some()), "30% loss must pass some");
        for d in a.iter().flatten() {
            // 200 µs propagation + 1000 µs transfer + up to 500 µs jitter.
            assert!(*d >= TimeDelta::from_micros(1_200));
            assert!(*d <= TimeDelta::from_micros(1_700));
        }
    }

    #[test]
    fn link_partitions_lose_everything_in_window() {
        let mut link = Link::new(1_000_000).with_partition(t(10), t(20));
        assert!(link.delivery(t(5), 100).is_some());
        assert!(link.delivery(t(10), 100).is_none());
        assert!(link.delivery(t(19), 100).is_none());
        assert!(link.delivery(t(20), 100).is_some());
    }

    #[test]
    fn breaker_trips_and_heals_like_the_tier_breaker() {
        let mut b = NodeBreaker::new(2, TimeDelta::from_millis(100));
        assert!(!b.on_failure(t(0)), "one failure is below threshold");
        assert!(b.on_failure(t(1)), "second consecutive failure trips");
        assert_eq!(b.trips, 1);
        assert!(!b.allows_probe(t(50)), "open until cooldown expires");
        assert!(b.allows_probe(t(101)), "half-open after cooldown");
        assert!(b.on_success(), "probe success heals");
        assert_eq!(b.state, BreakerState::Closed);
        assert!(!b.on_success(), "already closed");
    }

    #[test]
    fn placement_starts_round_robin_and_reassigns() {
        let mut p = PlacementService::new(4, 2, 7);
        assert_eq!(p.node_of_shard(0), 0);
        assert_eq!(p.node_of_shard(1), 1);
        assert_eq!(p.node_of_shard(2), 0);
        assert_eq!(p.hosted(0), vec![0, 2]);
        let e0 = p.epoch();
        p.assign(2, 1);
        assert_eq!(p.node_of_shard(2), 1);
        assert_eq!(p.home_of(2), 0, "home never changes");
        assert!(p.epoch() > e0);
        assert!(p.render().contains("shard"));
    }

    #[test]
    fn skew_percent_matches_sharded_stats_shape() {
        assert_eq!(skew_percent([10usize, 10].into_iter()), 0);
        assert_eq!(skew_percent([40usize, 0, 0, 0].into_iter()), 300);
        assert_eq!(skew_percent(std::iter::empty()), 0);
    }
}
