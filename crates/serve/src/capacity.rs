//! Admission control: the server's capacity model and typed decisions.
//!
//! The paper defers real-time delivery to the implementation; the
//! implementation's first defence is refusing work it cannot schedule. A
//! [`Capacity`] aggregates the server's storage bandwidth and decode
//! throughput; each `Open` request is checked against the demand the
//! session's schedule would add ([`tbm_player::demanded_rate`]). Three
//! outcomes, in preference order:
//!
//! 1. **admit** — the full-fidelity schedule fits the remaining headroom;
//! 2. **admit degraded** — it does not, but the base-layer schedule of a
//!    scalable stream does (§2.2: "bandwidth can be saved … by ignoring
//!    parts of the storage unit");
//! 3. **reject** — even the base layer would oversubscribe the server, or
//!    the session limit is reached.
//!
//! [`AdmissionPolicy::AdmitAll`] disables the gate (every session admitted
//! at full fidelity) while keeping the same physical capacity — the
//! uncontrolled baseline the §serve experiment sweeps against.

use std::fmt;
use tbm_player::CostModel;
use tbm_time::Rational;

/// Whether the admission gate is enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Enforce the capacity model: degrade or reject infeasible sessions.
    Enforce,
    /// Admit every session at full fidelity regardless of capacity — the
    /// uncontrolled baseline. The physical service rate is unchanged, so
    /// oversubscription shows up as deadline misses instead of rejections.
    AdmitAll,
}

/// Aggregate delivery capacity of one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capacity {
    /// Aggregate storage/transfer bandwidth in bytes per second.
    pub storage_bandwidth: u64,
    /// Aggregate decode throughput in bytes per second (0 = free decoding).
    pub decode_rate: u64,
    /// Fixed per-element dispatch overhead in microseconds.
    pub overhead_us: u64,
    /// Hard cap on concurrently open sessions.
    pub max_sessions: usize,
    /// Whether admission control is enforced.
    pub policy: AdmissionPolicy,
    /// Whether admission prices storage demand against *expected* storage
    /// load given current [`crate::SegmentCache`] residency. Off (the
    /// default), storage and decode stages are both charged the schedule's
    /// full demand. On, the storage stage is charged the demand discounted
    /// by the fraction of the session's planned bytes already resident in
    /// the cache — a hot object costs (almost) no storage bandwidth — while
    /// the decode stage still pays in full, because cache hits skip the
    /// fetch but not the decode.
    pub cache_aware: bool,
}

impl Capacity {
    /// A capacity with the given storage bandwidth, free decoding, no
    /// overhead, an effectively unlimited session count and admission
    /// enforced.
    pub fn new(storage_bandwidth: u64) -> Capacity {
        Capacity {
            storage_bandwidth: storage_bandwidth.max(1),
            decode_rate: 0,
            overhead_us: 0,
            max_sessions: usize::MAX,
            policy: AdmissionPolicy::Enforce,
            cache_aware: false,
        }
    }

    /// Builder: sets aggregate decode throughput.
    pub fn with_decode_rate(mut self, bytes_per_sec: u64) -> Capacity {
        self.decode_rate = bytes_per_sec;
        self
    }

    /// Builder: sets fixed per-element overhead in microseconds.
    pub fn with_overhead_us(mut self, us: u64) -> Capacity {
        self.overhead_us = us;
        self
    }

    /// Builder: caps concurrently open sessions.
    pub fn with_max_sessions(mut self, max: usize) -> Capacity {
        self.max_sessions = max;
        self
    }

    /// Builder: disables the admission gate (the uncontrolled baseline).
    pub fn admit_all(mut self) -> Capacity {
        self.policy = AdmissionPolicy::AdmitAll;
        self
    }

    /// Builder: prices storage demand against expected cache residency
    /// (see [`Capacity::cache_aware`]). Admitted sessions are repriced as
    /// residency shifts, so a session admitted cheaply against a hot cache
    /// is re-charged when its segments are evicted.
    pub fn with_cache_aware_admission(mut self) -> Capacity {
        self.cache_aware = true;
        self
    }

    /// The capacity admission prices against when the store reports
    /// `health_percent`% of its tiers healthy
    /// ([`tbm_blob::BlobStore::health_percent`]): storage bandwidth is
    /// derated proportionally,
    /// never below 1 B/s. A fully healthy store (100) leaves the capacity
    /// unchanged, so single-backend stores are unaffected.
    pub fn derated(&self, health_percent: u8) -> Capacity {
        let h = u64::from(health_percent.min(100));
        Capacity {
            storage_bandwidth: (self.storage_bandwidth.saturating_mul(h) / 100).max(1),
            ..*self
        }
    }

    /// The cost model the scheduler charges elements through — the same
    /// numbers admission reasons about.
    pub fn cost_model(&self) -> CostModel {
        CostModel::bandwidth_only(self.storage_bandwidth)
            .with_decode_rate(self.decode_rate)
            .with_overhead_us(self.overhead_us)
    }

    /// Whether a schedule demanding `demand` bytes/s fits next to
    /// `committed` bytes/s of already-admitted demand. Bytes fetched are
    /// bytes decoded, so one demand figure is checked against both stages.
    pub fn fits(&self, committed: Rational, demand: Rational) -> bool {
        let total = committed + demand;
        if total > Rational::from(self.storage_bandwidth as i64) {
            return false;
        }
        self.decode_rate == 0 || total <= Rational::from(self.decode_rate as i64)
    }

    /// The cache-aware stage check: the storage stage is charged
    /// `storage_demand` (the residency-discounted figure) on top of
    /// `committed_storage`, while the decode stage is charged the full
    /// `decode_demand` on top of `committed_decode`. When the two committed
    /// totals and the two demands coincide — the cache-unaware case — this
    /// reduces exactly to [`Capacity::fits`].
    pub fn fits_staged(
        &self,
        committed_storage: Rational,
        committed_decode: Rational,
        storage_demand: Rational,
        decode_demand: Rational,
    ) -> bool {
        if committed_storage + storage_demand > Rational::from(self.storage_bandwidth as i64) {
            return false;
        }
        self.decode_rate == 0
            || committed_decode + decode_demand <= Rational::from(self.decode_rate as i64)
    }

    /// The tighter of the two stage limits, in bytes per second.
    pub fn service_rate(&self) -> u64 {
        if self.decode_rate == 0 {
            self.storage_bandwidth
        } else {
            self.storage_bandwidth.min(self.decode_rate)
        }
    }
}

/// The typed outcome of an `Open` request's admission check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDecision {
    /// Admitted at full fidelity.
    Admitted,
    /// Admitted, but capped to the first `layers` placement layers of each
    /// element (the scalable base-layer path).
    Degraded {
        /// Placement layers the session may fetch per element.
        layers: usize,
    },
    /// Not admitted; no session was created.
    Rejected {
        /// Why the session was turned away.
        reason: RejectReason,
    },
}

impl AdmitDecision {
    /// `true` for [`AdmitDecision::Admitted`] and
    /// [`AdmitDecision::Degraded`].
    pub fn is_admitted(&self) -> bool {
        !matches!(self, AdmitDecision::Rejected { .. })
    }
}

impl fmt::Display for AdmitDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitDecision::Admitted => write!(f, "admitted"),
            AdmitDecision::Degraded { layers } => {
                write!(f, "admitted degraded ({layers}-layer)")
            }
            AdmitDecision::Rejected { reason } => write!(f, "rejected ({reason})"),
        }
    }
}

/// Why an `Open` request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Even the feasible fallback schedule would oversubscribe the server.
    Saturated {
        /// Bytes/s the session's cheapest feasible schedule demands.
        demanded_bps: u64,
        /// Bytes/s of headroom left under the tighter stage limit.
        available_bps: u64,
    },
    /// The concurrent-session cap is reached.
    SessionLimit {
        /// The configured cap.
        max: usize,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Saturated {
                demanded_bps,
                available_bps,
            } => write!(
                f,
                "saturated: demands {demanded_bps} B/s, {available_bps} B/s available"
            ),
            RejectReason::SessionLimit { max } => {
                write!(f, "session limit {max} reached")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_checks_both_stages() {
        let cap = Capacity::new(1_000_000).with_decode_rate(500_000);
        let r = |n: i64| Rational::from(n);
        assert!(cap.fits(r(0), r(400_000)));
        assert!(
            !cap.fits(r(0), r(600_000)),
            "decode is the tighter stage here"
        );
        assert!(!cap.fits(r(400_000), r(200_000)));
        assert_eq!(cap.service_rate(), 500_000);

        let free_decode = Capacity::new(1_000_000);
        assert!(free_decode.fits(r(0), r(900_000)));
        assert!(!free_decode.fits(r(500_000), r(600_000)));
        assert_eq!(free_decode.service_rate(), 1_000_000);
    }

    #[test]
    fn fits_staged_reduces_to_fits_and_splits_stages() {
        let cap = Capacity::new(1_000_000).with_decode_rate(800_000);
        let r = |n: i64| Rational::from(n);
        // Equal demands on both stages: identical to the one-figure check.
        for (c, d) in [(0, 400_000), (0, 900_000), (500_000, 400_000)] {
            assert_eq!(
                cap.fits_staged(r(c), r(c), r(d), r(d)),
                cap.fits(r(c), r(d))
            );
        }
        // A fully resident session: storage stage charged 0, decode in full.
        assert!(cap.fits_staged(r(950_000), r(0), r(0), r(700_000)));
        // Decode still gates even when storage is free.
        assert!(!cap.fits_staged(r(950_000), r(200_000), r(0), r(700_000)));
        // Free decoding: only the storage stage exists.
        let free = Capacity::new(1_000_000);
        assert!(free.fits_staged(r(0), r(999_999_999), r(1_000_000), r(1)));
    }

    #[test]
    fn cache_aware_flag_defaults_off() {
        let cap = Capacity::new(1_000_000);
        assert!(!cap.cache_aware);
        assert!(cap.with_cache_aware_admission().cache_aware);
        assert!(
            cap.with_cache_aware_admission().derated(50).cache_aware,
            "derating keeps the flag"
        );
    }

    #[test]
    fn cost_model_mirrors_capacity() {
        let cap = Capacity::new(2_000_000)
            .with_decode_rate(8_000_000)
            .with_overhead_us(50);
        let m = cap.cost_model();
        assert_eq!(m.bandwidth, 2_000_000);
        assert_eq!(m.decode_rate, 8_000_000);
        assert_eq!(m.overhead_us, 50);
    }

    #[test]
    fn decisions_display() {
        assert_eq!(AdmitDecision::Admitted.to_string(), "admitted");
        assert!(AdmitDecision::Admitted.is_admitted());
        assert!(AdmitDecision::Degraded { layers: 1 }.is_admitted());
        let rejected = AdmitDecision::Rejected {
            reason: RejectReason::SessionLimit { max: 4 },
        };
        assert!(!rejected.is_admitted());
        assert_eq!(rejected.to_string(), "rejected (session limit 4 reached)");
    }

    #[test]
    fn zero_bandwidth_clamped() {
        assert_eq!(Capacity::new(0).storage_bandwidth, 1);
    }

    #[test]
    fn derating_scales_storage_bandwidth_only() {
        let cap = Capacity::new(1_000_000).with_decode_rate(500_000);
        let half = cap.derated(50);
        assert_eq!(half.storage_bandwidth, 500_000);
        assert_eq!(half.decode_rate, 500_000, "decode is not a tier resource");
        assert_eq!(cap.derated(100), cap, "healthy stores are unaffected");
        assert_eq!(Capacity::new(10).derated(0).storage_bandwidth, 1);
    }
}
