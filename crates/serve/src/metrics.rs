//! Per-server metrics: the `ServerStats` snapshot the bench harness sweeps.
//!
//! Since the observability rework the snapshot is materialised from the
//! server's [`tbm_obs::MetricsRegistry`]: the counters are registry
//! counters and the latency figures are real fixed-bucket [`Histogram`]s
//! rather than ad-hoc percentile fields, so a snapshot carries the whole
//! distribution, not three points of it.

use crate::CacheStats;
use tbm_obs::Histogram;
use tbm_time::TimeDelta;

/// A point-in-time snapshot of one server's delivery statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerStats {
    /// Sessions currently holding capacity (opened, playing or paused).
    pub active_sessions: usize,
    /// Sessions that served their whole schedule.
    pub finished_sessions: usize,
    /// Sessions closed by request.
    pub closed_sessions: usize,
    /// Sessions admitted at full fidelity.
    pub admitted: usize,
    /// Sessions admitted on the degraded (base-layer) path.
    pub admitted_degraded: usize,
    /// Sessions rejected by admission control.
    pub rejected: usize,
    /// Elements served across all sessions.
    pub elements_served: usize,
    /// Elements served after their presentation deadline.
    pub deadline_misses: usize,
    /// Elements recovered intact by retries.
    pub recovered: usize,
    /// Elements presented degraded (base layers or repeated predecessor).
    pub degraded_elements: usize,
    /// Elements not presented at all.
    pub dropped_elements: usize,
    /// Elements presented intact after a cross-tier repair (a storage tier
    /// failed checksum verification and was healed from a verifying tier).
    pub repaired_elements: usize,
    /// Per-element faults detected (checksum mismatch, retry exhaustion,
    /// or a tier-level corruption resolved by repair). Always
    /// `degraded_elements + dropped_elements + repaired_elements`.
    pub faults_detected: usize,
    /// Degraded-admission sessions re-admitted at full fidelity after the
    /// store healed or capacity freed.
    pub upgraded_sessions: usize,
    /// Shared segment cache counters.
    pub cache: CacheStats,
    /// Bytes actually pulled off storage, including retry re-reads.
    pub storage_bytes_read: u64,
    /// Bytes/s of admitted demand currently committed (rounded down).
    pub committed_bps: u64,
    /// Distribution of per-element lateness in microseconds, over elements
    /// that missed their deadline.
    pub lateness: Histogram,
    /// Distribution of per-element service time through the shared channel,
    /// in microseconds, over every served element.
    pub service: Histogram,
}

impl ServerStats {
    /// An all-zero snapshot over the standard latency buckets — the
    /// identity element of [`ServerStats::absorb`].
    pub fn empty() -> ServerStats {
        ServerStats {
            active_sessions: 0,
            finished_sessions: 0,
            closed_sessions: 0,
            admitted: 0,
            admitted_degraded: 0,
            rejected: 0,
            elements_served: 0,
            deadline_misses: 0,
            recovered: 0,
            degraded_elements: 0,
            dropped_elements: 0,
            repaired_elements: 0,
            faults_detected: 0,
            upgraded_sessions: 0,
            cache: CacheStats::default(),
            storage_bytes_read: 0,
            committed_bps: 0,
            lateness: Histogram::new(&tbm_obs::LATENCY_BUCKETS_US),
            service: Histogram::new(&tbm_obs::LATENCY_BUCKETS_US),
        }
    }

    /// Fraction of served elements that missed their deadline.
    pub fn miss_rate(&self) -> f64 {
        if self.elements_served == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.elements_served as f64
        }
    }

    /// Fraction of served elements that were not presented at all.
    pub fn drop_rate(&self) -> f64 {
        if self.elements_served == 0 {
            0.0
        } else {
            self.dropped_elements as f64 / self.elements_served as f64
        }
    }

    /// Sessions admitted in any form.
    pub fn sessions_admitted(&self) -> usize {
        self.admitted + self.admitted_degraded
    }

    /// Median per-element lateness across deadline misses (bucket upper
    /// bound; see [`Histogram::quantile`]).
    pub fn p50_lateness(&self) -> TimeDelta {
        TimeDelta::from_micros(self.lateness.quantile(50) as i64)
    }

    /// 99th-percentile per-element lateness across deadline misses.
    pub fn p99_lateness(&self) -> TimeDelta {
        TimeDelta::from_micros(self.lateness.quantile(99) as i64)
    }

    /// Worst per-element lateness (exact, not bucketed).
    pub fn max_lateness(&self) -> TimeDelta {
        TimeDelta::from_micros(self.lateness.max() as i64)
    }

    /// Adds `other` into this snapshot — the per-shard → global rollup of
    /// a [`crate::ShardedServer`]. Counters and cache stats add; the
    /// lateness/service histograms merge bucket-by-bucket
    /// ([`Histogram::merge`]), so merged p50/p99 are exactly what one
    /// server observing the union would report. The fault invariant
    /// `faults == degraded + dropped + repaired` is preserved by addition:
    /// if it holds per shard it holds globally.
    pub fn absorb(&mut self, other: &ServerStats) {
        self.active_sessions += other.active_sessions;
        self.finished_sessions += other.finished_sessions;
        self.closed_sessions += other.closed_sessions;
        self.admitted += other.admitted;
        self.admitted_degraded += other.admitted_degraded;
        self.rejected += other.rejected;
        self.elements_served += other.elements_served;
        self.deadline_misses += other.deadline_misses;
        self.recovered += other.recovered;
        self.degraded_elements += other.degraded_elements;
        self.dropped_elements += other.dropped_elements;
        self.repaired_elements += other.repaired_elements;
        self.faults_detected += other.faults_detected;
        self.upgraded_sessions += other.upgraded_sessions;
        self.cache.absorb(&other.cache);
        self.storage_bytes_read += other.storage_bytes_read;
        self.committed_bps += other.committed_bps;
        self.lateness.merge(&other.lateness);
        self.service.merge(&other.service);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbm_obs::LATENCY_BUCKETS_US;

    fn stats_with(elements: usize, misses: usize, dropped: usize) -> ServerStats {
        let mut lateness = Histogram::new(&LATENCY_BUCKETS_US);
        for i in 0..misses {
            lateness.observe(1_000 * (i as u64 + 1));
        }
        ServerStats {
            active_sessions: 0,
            finished_sessions: 0,
            closed_sessions: 0,
            admitted: 0,
            admitted_degraded: 0,
            rejected: 0,
            elements_served: elements,
            deadline_misses: misses,
            recovered: 0,
            degraded_elements: 0,
            dropped_elements: dropped,
            repaired_elements: 0,
            faults_detected: dropped,
            upgraded_sessions: 0,
            cache: CacheStats::default(),
            storage_bytes_read: 0,
            committed_bps: 0,
            lateness,
            service: Histogram::new(&LATENCY_BUCKETS_US),
        }
    }

    #[test]
    fn rates_guard_zero_denominators() {
        let idle = stats_with(0, 0, 0);
        assert_eq!(idle.miss_rate(), 0.0);
        assert_eq!(idle.drop_rate(), 0.0);
        assert_eq!(idle.p50_lateness(), TimeDelta::ZERO);
        assert_eq!(idle.max_lateness(), TimeDelta::ZERO);
    }

    #[test]
    fn drop_rate_counts_dropped_over_served() {
        let s = stats_with(40, 10, 4);
        assert!((s.drop_rate() - 0.1).abs() < 1e-12);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn lateness_percentiles_come_from_the_histogram() {
        let s = stats_with(10, 4, 0); // misses at 1, 2, 3, 4 ms
        assert_eq!(s.max_lateness(), TimeDelta::from_micros(4_000));
        // Rank 2 of 4 lands in the ≤2000 µs bucket.
        assert_eq!(s.p50_lateness(), TimeDelta::from_micros(2_000));
        assert_eq!(s.p99_lateness(), TimeDelta::from_micros(4_000));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// An arbitrary snapshot with the fault invariant holding by
        /// construction, lateness populated from `misses` observations and
        /// service from `services` — the shapes `absorb` must preserve.
        fn arb_stats() -> impl Strategy<Value = ServerStats> {
            (
                proptest::collection::vec(0usize..50, 8),
                proptest::collection::vec(1u64..5_000_000, 0..8),
                proptest::collection::vec(1u64..5_000_000, 0..8),
            )
                .prop_map(|(counts, misses, services)| {
                    let mut s = stats_with(counts[0] + misses.len(), 0, counts[1]);
                    s.deadline_misses = misses.len();
                    s.lateness = Histogram::new(&LATENCY_BUCKETS_US);
                    for &m in &misses {
                        s.lateness.observe(m);
                    }
                    for &v in &services {
                        s.service.observe(v);
                    }
                    s.active_sessions = counts[2];
                    s.finished_sessions = counts[3];
                    s.admitted = counts[4];
                    s.degraded_elements = counts[5];
                    s.repaired_elements = counts[6];
                    s.faults_detected = counts[1] + counts[5] + counts[6];
                    s.storage_bytes_read = counts[7] as u64 * 1_000;
                    s
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// `empty()` really is the identity of `absorb`, on both sides —
            /// including for snapshots whose histograms hold zero or one
            /// observation (the empty/single-bucket operands the rollup
            /// sees from idle and one-session shards).
            #[test]
            fn empty_is_absorb_identity(s in arb_stats()) {
                let mut left = ServerStats::empty();
                left.absorb(&s);
                prop_assert_eq!(left, s);

                let mut right = s;
                right.absorb(&ServerStats::empty());
                prop_assert_eq!(right, s);
            }

            /// Absorbing in either order gives the same rollup — shard
            /// enumeration order must not matter — and addition preserves
            /// the fault invariant.
            #[test]
            fn absorb_is_commutative_and_keeps_the_fault_invariant(
                a in arb_stats(),
                b in arb_stats(),
                c in arb_stats(),
            ) {
                let mut ab = a;
                ab.absorb(&b);
                let mut ba = b;
                ba.absorb(&a);
                prop_assert_eq!(ab, ba);

                let mut abc = ab;
                abc.absorb(&c);
                prop_assert_eq!(
                    abc.faults_detected,
                    abc.degraded_elements + abc.dropped_elements + abc.repaired_elements
                );
                prop_assert_eq!(
                    abc.elements_served,
                    a.elements_served + b.elements_served + c.elements_served
                );
                prop_assert_eq!(abc.lateness.count(), abc.deadline_misses as u64);
            }
        }
    }
}
