//! Per-server metrics: the `ServerStats` snapshot the bench harness sweeps.

use crate::CacheStats;
use tbm_time::TimeDelta;

/// A point-in-time snapshot of one server's delivery statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerStats {
    /// Sessions currently holding capacity (opened, playing or paused).
    pub active_sessions: usize,
    /// Sessions that served their whole schedule.
    pub finished_sessions: usize,
    /// Sessions closed by request.
    pub closed_sessions: usize,
    /// Sessions admitted at full fidelity.
    pub admitted: usize,
    /// Sessions admitted on the degraded (base-layer) path.
    pub admitted_degraded: usize,
    /// Sessions rejected by admission control.
    pub rejected: usize,
    /// Elements served across all sessions.
    pub elements_served: usize,
    /// Elements served after their presentation deadline.
    pub deadline_misses: usize,
    /// Elements recovered intact by retries.
    pub recovered: usize,
    /// Elements presented degraded (base layers or repeated predecessor).
    pub degraded_elements: usize,
    /// Elements not presented at all.
    pub dropped_elements: usize,
    /// Unrecoverable per-element faults detected (checksum mismatch or
    /// retry exhaustion). Always `degraded_elements + dropped_elements`.
    pub faults_detected: usize,
    /// Shared segment cache counters.
    pub cache: CacheStats,
    /// Bytes actually pulled off storage, including retry re-reads.
    pub storage_bytes_read: u64,
    /// Bytes/s of admitted demand currently committed (rounded down).
    pub committed_bps: u64,
    /// Median of per-session worst lateness, across sessions that served at
    /// least one element.
    pub p50_lateness: TimeDelta,
    /// 99th percentile of per-session worst lateness.
    pub p99_lateness: TimeDelta,
    /// Worst lateness across all sessions.
    pub max_lateness: TimeDelta,
}

impl ServerStats {
    /// Fraction of served elements that missed their deadline.
    pub fn miss_rate(&self) -> f64 {
        if self.elements_served == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.elements_served as f64
        }
    }

    /// Sessions admitted in any form.
    pub fn sessions_admitted(&self) -> usize {
        self.admitted + self.admitted_degraded
    }
}

/// Nearest-rank percentile of a sorted slice (`p` in 0..=100); zero delta
/// for an empty slice.
pub(crate) fn percentile(sorted: &[TimeDelta], p: u64) -> TimeDelta {
    if sorted.is_empty() {
        return TimeDelta::ZERO;
    }
    let n = sorted.len() as u64;
    let rank = (p * n).div_ceil(100).clamp(1, n);
    sorted[(rank - 1) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let d = |ms: i64| TimeDelta::from_millis(ms);
        let v = vec![d(1), d(2), d(3), d(4), d(5), d(6), d(7), d(8), d(9), d(10)];
        assert_eq!(percentile(&v, 50), d(5));
        assert_eq!(percentile(&v, 99), d(10));
        assert_eq!(percentile(&v, 100), d(10));
        assert_eq!(percentile(&v, 0), d(1));
        assert_eq!(percentile(&[], 50), TimeDelta::ZERO);
        assert_eq!(percentile(&[d(7)], 99), d(7));
    }
}
