//! Typed errors of the serving layer.

use crate::SessionState;
use std::fmt;
use tbm_core::SessionId;
use tbm_db::DbError;
use tbm_time::TimePoint;

/// Errors a [`crate::Server`] request can fail with.
///
/// Admission *refusals* are not errors — a rejected `Open` is a successful
/// request whose answer is [`crate::AdmitDecision::Rejected`]. `ServeError`
/// covers malformed or impossible requests only.
#[derive(Debug)]
pub enum ServeError {
    /// The request referenced a session id the server does not know.
    UnknownSession {
        /// The unknown id.
        session: SessionId,
    },
    /// Catalog lookup failed (no such object, or it has no stream
    /// interpretation to serve).
    Catalog(DbError),
    /// The request was submitted at a simulated time earlier than one the
    /// server has already processed — the event loop only moves forward.
    NonMonotonicTime {
        /// The offending request time.
        at: TimePoint,
        /// The server clock at submission.
        clock: TimePoint,
    },
    /// The session is not in a state that allows this request (e.g. `Play`
    /// on a closed session).
    BadState {
        /// The session in the wrong state.
        session: SessionId,
        /// Its current state.
        state: SessionState,
        /// The request that was refused.
        request: &'static str,
    },
    /// A playback rate with a zero numerator or denominator.
    BadRate {
        /// Requested rate numerator.
        num: u32,
        /// Requested rate denominator.
        den: u32,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownSession { session } => {
                write!(f, "unknown session {session}")
            }
            ServeError::Catalog(e) => write!(f, "catalog lookup failed: {e}"),
            ServeError::NonMonotonicTime { at, clock } => write!(
                f,
                "request at t={}s precedes the server clock t={}s",
                at.seconds(),
                clock.seconds()
            ),
            ServeError::BadState {
                session,
                state,
                request,
            } => write!(f, "{request} refused: {session} is {state}"),
            ServeError::BadRate { num, den } => {
                write!(f, "invalid playback rate {num}/{den}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Catalog(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DbError> for ServeError {
    fn from(e: DbError) -> ServeError {
        ServeError::Catalog(e)
    }
}
