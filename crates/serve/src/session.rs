//! Sessions: per-client playback state inside the server, and the typed
//! request/response API that drives them.

use crate::AdmitDecision;
use std::collections::BTreeSet;
use std::fmt;
use tbm_blob::ByteSpan;
use tbm_core::{BlobId, SessionId};
use tbm_obs::SpanId;
use tbm_player::ElementJob;
use tbm_time::{Rational, TimeDelta, TimePoint, TimeSystem};

/// The lifecycle of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Admitted but not yet playing.
    Opened,
    /// Elements are being scheduled and served.
    Playing,
    /// Playback suspended; remaining elements resume on `Play`.
    Paused,
    /// Every scheduled element was served; capacity released.
    Finished,
    /// Closed by request; capacity released.
    Closed,
}

impl fmt::Display for SessionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SessionState::Opened => "opened",
            SessionState::Playing => "playing",
            SessionState::Paused => "paused",
            SessionState::Finished => "finished",
            SessionState::Closed => "closed",
        })
    }
}

/// A request to the server, timestamped by the caller in simulated time.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session on a catalog object (runs admission control).
    Open {
        /// Name of the media object to serve.
        object: String,
    },
    /// Start (or resume) playback.
    Play {
        /// The session to play.
        session: SessionId,
    },
    /// Suspend playback; unserved elements are kept for resumption.
    Pause {
        /// The session to pause.
        session: SessionId,
    },
    /// Reposition to the element active at `to` on the stream's own
    /// (unit-rate) timeline. Seeking backwards re-presents elements.
    Seek {
        /// The session to reposition.
        session: SessionId,
        /// Target position on the stream timeline.
        to: TimePoint,
    },
    /// Change the playback rate to `num/den` × normal speed for the
    /// remaining elements (re-checked against capacity).
    SetRate {
        /// The session to re-rate.
        session: SessionId,
        /// Rate numerator (must be non-zero).
        num: u32,
        /// Rate denominator (must be non-zero).
        den: u32,
    },
    /// Close the session and release its capacity.
    Close {
        /// The session to close.
        session: SessionId,
    },
}

/// The server's typed answer to a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Outcome of `Open`: the admission decision, and the session id when
    /// admitted.
    Opened {
        /// The new session (absent when rejected).
        session: Option<SessionId>,
        /// The admission decision.
        decision: AdmitDecision,
    },
    /// Playback (re)started.
    Playing {
        /// The session now playing.
        session: SessionId,
        /// Elements queued for service.
        queued: usize,
    },
    /// Playback suspended.
    Paused {
        /// The paused session.
        session: SessionId,
        /// Elements kept for resumption.
        remaining: usize,
    },
    /// Position changed.
    Sought {
        /// The repositioned session.
        session: SessionId,
        /// Elements now pending from the new position.
        remaining: usize,
    },
    /// Outcome of `SetRate`.
    RateSet {
        /// The session whose rate was requested to change.
        session: SessionId,
        /// `false` when the new rate would oversubscribe the server and
        /// admission is enforced; the old rate stays.
        accepted: bool,
    },
    /// Session closed; its final statistics.
    Closed {
        /// The closed session.
        session: SessionId,
        /// Its lifetime statistics.
        stats: SessionStats,
    },
}

/// Per-session delivery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SessionStats {
    /// Elements served (presented, possibly degraded).
    pub elements: usize,
    /// Elements served after their presentation deadline.
    pub misses: usize,
    /// Worst lateness observed.
    pub max_lateness: TimeDelta,
    /// Element-layer reads answered by the shared segment cache.
    pub cache_hits: u64,
    /// Element-layer reads that went to storage.
    pub cache_misses: u64,
    /// Elements recovered intact by retries.
    pub recovered: usize,
    /// Elements presented degraded (base layers or a repeated predecessor).
    pub degraded: usize,
    /// Elements not presented at all.
    pub dropped: usize,
    /// Elements presented intact after a cross-tier repair: a tier failed
    /// checksum verification mid-read and was healed from a verifying tier.
    pub repaired: usize,
}

impl SessionStats {
    /// Fraction of served elements that missed their deadline.
    pub fn miss_rate(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            self.misses as f64 / self.elements as f64
        }
    }
}

/// The fetch plan of one scheduled element: the placement spans the session
/// is allowed to read (capped at its admitted fidelity) and their recorded
/// checksums. Precomputed at admission so serving an element never needs
/// the catalog.
#[derive(Debug, Clone)]
pub(crate) struct ServePlan {
    pub spans: Vec<ByteSpan>,
    pub checksums: Vec<u32>,
}

/// One client's playback session inside a [`crate::Server`].
///
/// Sessions are created by `Open` requests and only ever mutated by the
/// server's event loop; callers observe them through the read accessors.
#[derive(Debug)]
pub struct Session {
    pub(crate) id: SessionId,
    pub(crate) object: String,
    pub(crate) blob: BlobId,
    pub(crate) state: SessionState,
    pub(crate) decision: AdmitDecision,
    pub(crate) system: TimeSystem,
    /// Unit-rate schedule relative to the stream start (deadline order).
    pub(crate) jobs: Vec<ElementJob>,
    /// Fetch plans, parallel to `jobs`.
    pub(crate) plans: Vec<ServePlan>,
    /// Positions in `jobs` not yet served.
    pub(crate) pending: BTreeSet<usize>,
    /// Bumped on every Play/Pause/Seek/SetRate/Close so queued jobs from an
    /// older schedule generation are ignored when popped.
    pub(crate) epoch: u64,
    /// Playback rate `num/den` × normal speed.
    pub(crate) rate: (u32, u32),
    /// Simulated time of the anchoring Play/Seek/SetRate.
    pub(crate) play_time: TimePoint,
    /// Scaled relative deadline (seconds) of the first pending element at
    /// the anchor.
    pub(crate) anchor_rel: Rational,
    /// Completion time of the first element served after the anchor; the
    /// presentation clock runs from here (a one-element startup buffer,
    /// matching `PlaybackSim::with_startup(1)`).
    pub(crate) clock_base: Option<TimePoint>,
    /// Fidelity cap from degraded admission: placement layers the session
    /// may fetch per element (`None` = full fidelity). Cleared when the
    /// session is upgraded back to the full-fidelity schedule.
    pub(crate) layers_cap: Option<usize>,
    /// Bytes/s the *full-fidelity* schedule would commit at unit rate —
    /// what an upgrade from degraded admission must fit.
    pub(crate) full_unit_demand: Rational,
    /// Bytes/s this session commits against capacity at unit rate.
    pub(crate) unit_demand: Rational,
    /// Bytes/s currently committed (unit demand × rate).
    pub(crate) demand: Rational,
    /// Bytes/s currently charged against the *storage* stage. Equal to
    /// `demand` unless cache-aware admission is on, in which case it is
    /// `demand` discounted by the fraction of the session's planned bytes
    /// resident in the segment cache — and it is repriced as residency
    /// shifts (see `Server::reprice_sessions`).
    pub(crate) charged: Rational,
    /// Whether committed capacity has been released (Finished/Closed).
    pub(crate) released: bool,
    /// Whether any element was presented intact (for the repeat ladder).
    pub(crate) have_good: bool,
    pub(crate) stats: SessionStats,
    /// The session's root trace span ([`SpanId::NONE`] when untraced).
    pub(crate) span: SpanId,
    /// Completion time of this session's previously served element — the
    /// baseline for separating cross-session channel wait from the
    /// session's own pipeline backlog in miss attribution.
    pub(crate) last_ready: TimePoint,
    /// Lateness (µs) of this session's previously served element; bounds
    /// the `inherited_us` attribution component of the next element.
    pub(crate) last_lateness_us: i64,
}

impl Session {
    /// The session id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The catalog object being served.
    pub fn object(&self) -> &str {
        &self.object
    }

    /// The current lifecycle state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// The admission decision this session was created under.
    pub fn decision(&self) -> AdmitDecision {
        self.decision
    }

    /// The playback rate as `(num, den)` × normal speed.
    pub fn rate(&self) -> (u32, u32) {
        self.rate
    }

    /// The time system of the stream being served.
    pub fn system(&self) -> TimeSystem {
        self.system
    }

    /// Bytes/s this session commits against the server's capacity.
    pub fn demand_bps(&self) -> Rational {
        self.demand
    }

    /// Bytes/s currently charged against the storage stage —
    /// [`Session::demand_bps`] discounted by segment-cache residency when
    /// cache-aware admission is on, identical to it otherwise.
    pub fn charged_bps(&self) -> Rational {
        self.charged
    }

    /// Statistics so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Elements not yet served.
    pub fn remaining(&self) -> usize {
        self.pending.len()
    }

    /// `true` while the session holds committed capacity.
    pub fn is_active(&self) -> bool {
        matches!(
            self.state,
            SessionState::Opened | SessionState::Playing | SessionState::Paused
        )
    }

    /// The relative deadline of `pos`, scaled by the playback rate, in
    /// seconds.
    pub(crate) fn scaled_rel(&self, pos: usize) -> Rational {
        let (num, den) = self.rate;
        self.jobs[pos].deadline.seconds() * Rational::new(den as i64, num as i64)
    }

    /// The absolute deadline `pos` was queued under.
    pub(crate) fn queued_deadline(&self, pos: usize) -> TimePoint {
        self.play_time + TimeDelta::from_seconds(self.scaled_rel(pos) - self.anchor_rel)
    }

    /// The presentation deadline of `pos` once the session clock is
    /// established (first element after the anchor completes at lateness
    /// zero).
    pub(crate) fn presentation_deadline(&self, pos: usize) -> Option<TimePoint> {
        let base = self.clock_base?;
        Some(base + TimeDelta::from_seconds(self.scaled_rel(pos) - self.anchor_rel))
    }

    /// Re-anchors the schedule at `at` from the current first pending
    /// element, restarting the presentation clock.
    pub(crate) fn anchor(&mut self, at: TimePoint) {
        self.play_time = at;
        self.anchor_rel = self
            .pending
            .first()
            .map(|&p| self.scaled_rel(p))
            .unwrap_or(Rational::ZERO);
        self.clock_base = None;
        self.epoch += 1;
    }
}
