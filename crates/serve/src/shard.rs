//! Sharded catalogs: partition a media catalog across N [`MediaDb`] shards
//! and serve them behind one shard-aware front end.
//!
//! One catalog eventually saturates — one admission budget, one service
//! channel, one cache. [`ShardedDb`] splits the object namespace across N
//! independent [`MediaDb`]s by a *stable, seeded* hash of the object name
//! ([`shard_of`]), and [`ShardedServer`] puts a full [`Server`] — its own
//! [`Capacity`] budget, its own [`SegmentCache`], its own EDF channel — in
//! front of each shard, routing every request to the owner. This is the
//! single-process rehearsal of the multi-node layout the ROADMAP points
//! at: shard boundaries here are exactly the machine boundaries there.
//!
//! Three properties carry over from the single-catalog engine:
//!
//! * **Determinism.** Routing is a pure function of `(name, seed, N)`, and
//!   each shard is the same deterministic event loop it was standalone, so
//!   a sharded run is still a pure function of its request trace and fault
//!   seeds — same seed, byte-identical stats and traces.
//! * **Per-object timing.** A session only ever touches its owning shard's
//!   channel, cache and budget. Absent cross-session contention, an
//!   object's playback timing is identical at N=1 and N=4 (the §shards
//!   experiment asserts this bit-for-bit).
//! * **Accounting.** [`ShardedStats`] keeps per-shard [`ServerStats`]
//!   snapshots *and* a merged global view (exact histogram merges, so
//!   global p50/p99 lateness are as precise as a single server's). The
//!   fault invariant `faults == degraded + dropped + repaired` holds per
//!   shard and, by addition, globally.
//!
//! Hot-shard pathologies are observable: [`ShardedServer::metrics`] rolls
//! every shard's registry up under a `shard{i}.` prefix next to the
//! unprefixed global aggregate, plus a `shard.skew` gauge (percent the
//! hottest shard sits above the per-shard mean element load) for
//! rebalance-on-skew alerting.

use crate::pool::{run_rounds, RoundGoal};
use crate::{Capacity, Request, Response, ServeError, Server, ServerStats, Session, WorkerStats};
use std::fmt;
use std::io;
use tbm_blob::{BlobStore, MemBlobStore, RetryPolicy};
use tbm_core::{InterpretationId, SessionId};
use tbm_db::{DbError, MediaDb};
use tbm_interp::Interpretation;
use tbm_obs::{
    attribute, chrome_trace_to_writer, merge_snapshots, AttributionReport, MetricsRegistry,
    TraceSnapshot, Tracer,
};
use tbm_player::DegradationPolicy;
use tbm_time::{TimeDelta, TimePoint};

/// Session-id stride between shards: shard `i` allocates ids from
/// `i * SHARD_SESSION_STRIDE`, so any session id names its owning shard by
/// division and ids never collide fleet-wide (traces included).
pub const SHARD_SESSION_STRIDE: u64 = 1 << 32;

/// Trace-record-id stride between shards under
/// [`ShardedServer::with_shard_tracers`]: shard `i`'s ring allocates ids
/// from `i * SHARD_TRACE_ID_STRIDE`, so per-shard snapshots concatenated in
/// shard order keep ids unique and parent links intact.
pub const SHARD_TRACE_ID_STRIDE: u64 = 1 << 40;

/// The `shard.skew` gauge emitted by [`ShardedServer::metrics`].
const G_SHARD_SKEW: &str = "shard.skew";

/// The owning shard of `object` among `shards` shards: a seeded FNV-1a
/// hash of the name, reduced mod `shards`.
///
/// The hash is deliberately self-contained (no `std::hash::Hasher`, whose
/// output Rust does not pin across versions): placement must be stable
/// across processes, platforms and releases, because it *is* the routing
/// table. The seed lets two deployments of the same catalog shard
/// differently.
pub fn shard_of(object: &str, seed: u64, shards: usize) -> usize {
    assert!(shards > 0, "a sharded catalog needs at least one shard");
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in object.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Why a registration could not be placed on a shard.
#[derive(Debug)]
pub enum ShardError {
    /// The interpretation has no streams, so there is no name to route by.
    NoStreams,
    /// Two streams of one interpretation hash to different shards. Streams
    /// of one interpretation share a BLOB and must co-locate; capture them
    /// separately (or pick a seed under which they agree).
    Straddles {
        /// The first stream's name (the would-be owner).
        first: String,
        /// The shard the first stream hashes to.
        first_shard: usize,
        /// The stream that disagrees.
        other: String,
        /// The shard the disagreeing stream hashes to.
        other_shard: usize,
    },
    /// The owning shard's catalog rejected the registration.
    Db(DbError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::NoStreams => {
                write!(f, "interpretation has no streams to route by")
            }
            ShardError::Straddles {
                first,
                first_shard,
                other,
                other_shard,
            } => write!(
                f,
                "streams straddle shards: {first:?} owns shard {first_shard} \
                 but {other:?} hashes to shard {other_shard}"
            ),
            ShardError::Db(e) => write!(f, "shard catalog rejected registration: {e}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DbError> for ShardError {
    fn from(e: DbError) -> ShardError {
        ShardError::Db(e)
    }
}

/// N independent [`MediaDb`] catalogs with object names partitioned by
/// [`shard_of`].
///
/// Each shard owns its own BLOB store: capture an object's bytes into
/// [`ShardedDb::store_for_mut`]`(name)` *before* registering its
/// interpretation, so the BLOB lives where the router will look for it.
#[derive(Debug)]
pub struct ShardedDb<S: BlobStore = MemBlobStore> {
    shards: Vec<MediaDb<S>>,
    seed: u64,
}

impl ShardedDb<MemBlobStore> {
    /// `shards` empty in-memory catalogs routed under `seed`.
    pub fn new(shards: usize, seed: u64) -> ShardedDb<MemBlobStore> {
        assert!(shards > 0, "a sharded catalog needs at least one shard");
        ShardedDb {
            shards: (0..shards).map(|_| MediaDb::new()).collect(),
            seed,
        }
    }
}

impl<S: BlobStore> ShardedDb<S> {
    /// One empty catalog per caller-provided store (e.g. a fault-injecting
    /// store per shard), routed under `seed`.
    pub fn with_stores(stores: Vec<S>, seed: u64) -> ShardedDb<S> {
        assert!(
            !stores.is_empty(),
            "a sharded catalog needs at least one shard"
        );
        ShardedDb {
            shards: stores.into_iter().map(MediaDb::with_store).collect(),
            seed,
        }
    }

    /// Adopts pre-built catalogs as shards. The caller asserts that every
    /// object already sits on its [`shard_of`] shard — misplaced objects
    /// are unreachable through a router using the same seed.
    pub fn from_shards(shards: Vec<MediaDb<S>>, seed: u64) -> ShardedDb<S> {
        assert!(
            !shards.is_empty(),
            "a sharded catalog needs at least one shard"
        );
        ShardedDb { shards, seed }
    }

    /// The routing seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `object` (pure hash; the object need not exist).
    pub fn shard_for(&self, object: &str) -> usize {
        shard_of(object, self.seed, self.shards.len())
    }

    /// A shard's catalog.
    pub fn shard(&self, i: usize) -> &MediaDb<S> {
        &self.shards[i]
    }

    /// Mutable access to a shard's catalog.
    pub fn shard_mut(&mut self, i: usize) -> &mut MediaDb<S> {
        &mut self.shards[i]
    }

    /// The shards in order.
    pub fn shards(&self) -> impl Iterator<Item = &MediaDb<S>> {
        self.shards.iter()
    }

    /// Consumes the catalog into its shards, in shard order.
    pub fn into_shards(self) -> Vec<MediaDb<S>> {
        self.shards
    }

    /// Mutable access to the BLOB store of the shard that will own
    /// `object` — the capture entry point: write the object's bytes here,
    /// then register the interpretation.
    pub fn store_for_mut(&mut self, object: &str) -> &mut S {
        let shard = self.shard_for(object);
        self.shards[shard].store_mut()
    }

    /// Registers an interpretation on the shard owning its first stream's
    /// name, after checking every stream agrees on the owner (streams of
    /// one interpretation share a BLOB and cannot straddle shards).
    /// Returns the owning shard and the id within it.
    pub fn register_interpretation(
        &mut self,
        interp: Interpretation,
    ) -> Result<(usize, InterpretationId), ShardError> {
        let owner = {
            let names = interp.stream_names();
            let first = *names.first().ok_or(ShardError::NoStreams)?;
            let owner = self.shard_for(first);
            if let Some(other) = names.iter().find(|n| self.shard_for(n) != owner) {
                return Err(ShardError::Straddles {
                    first: first.to_owned(),
                    first_shard: owner,
                    other: (*other).to_owned(),
                    other_shard: self.shard_for(other),
                });
            }
            owner
        };
        let id = self.shards[owner].register_interpretation(interp)?;
        Ok((owner, id))
    }

    /// Whether `object` is registered (checked on its owning shard only —
    /// a misplaced object is invisible, exactly as it is to the router).
    pub fn contains_object(&self, object: &str) -> bool {
        self.shards[self.shard_for(object)].contains_object(object)
    }

    /// Every `(shard, object name)` pair, in shard order then registration
    /// order — the shard-stable iteration.
    pub fn object_names(&self) -> impl Iterator<Item = (usize, &str)> {
        self.shards
            .iter()
            .enumerate()
            .flat_map(|(i, db)| db.object_names().map(move |n| (i, n)))
    }
}

/// Cross-shard statistics: per-shard [`ServerStats`] snapshots plus their
/// exact merge.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedStats {
    /// One snapshot per shard, in shard order.
    pub per_shard: Vec<ServerStats>,
    /// The additive merge of every shard (histograms merged bucket-wise,
    /// so global p50/p99 lateness are exact rollups).
    pub global: ServerStats,
}

impl ShardedStats {
    /// Builds the rollup from per-shard snapshots.
    pub fn from_shards(per_shard: Vec<ServerStats>) -> ShardedStats {
        let mut global = ServerStats::empty();
        for s in &per_shard {
            global.absorb(s);
        }
        ShardedStats { per_shard, global }
    }

    /// Load skew across shards, in percent: how far the hottest shard's
    /// served-element count sits above the per-shard mean. 0 when idle or
    /// perfectly balanced; 300 when one of four shards serves everything.
    /// This is the `shard.skew` gauge — the rebalance alarm — and it is
    /// [`crate::skew_percent`], the one fleet skew definition the gauges,
    /// the rebalancer and the health plane's `SkewBelow` objective share.
    pub fn skew_percent(&self) -> i64 {
        crate::skew_percent(self.per_shard.iter().map(|s| s.elements_served))
    }
}

/// A shard-aware front end: one [`Server`] per shard of a [`ShardedDb`],
/// with requests routed to the owning shard by [`shard_of`].
///
/// Every shard gets its *own* [`Capacity`] budget and [`SegmentCache`]
/// (set via the builders, which apply per shard), so admission is decided
/// shard-locally — including tier-health derating, which keys off each
/// shard's own store. Session ids are globally unique: shard `i` allocates
/// from `i * `[`SHARD_SESSION_STRIDE`], so follow-up requests route by id
/// arithmetic alone and trace session ids never collide across shards.
///
/// [`SegmentCache`]: crate::SegmentCache
#[derive(Debug)]
pub struct ShardedServer<S: BlobStore = MemBlobStore> {
    shards: Vec<Server<S>>,
    seed: u64,
    clock: TimePoint,
    tracer: Tracer,
    /// Worker threads for parallel drives (1 = always sequential).
    workers: usize,
    /// Barrier spacing for parallel drives: when set, a `run_until` is
    /// split into fixed simulated-time rounds of this length; when unset,
    /// each drive is one round.
    tick: Option<TimeDelta>,
    /// Per-shard tracers ([`ShardedServer::with_shard_tracers`]), in shard
    /// order; empty when tracing is off or shared.
    shard_tracers: Vec<Tracer>,
    /// Per-worker counters accumulated across parallel drives — host
    /// scheduling diagnostics, outside the determinism contract.
    pool_stats: Vec<WorkerStats>,
}

impl<S: BlobStore> ShardedServer<S> {
    /// A front end over `db`, giving every shard its own copy of the
    /// `per_shard` capacity budget. Aggregate fleet capacity is therefore
    /// `N × per_shard` — the scale-out the §shards experiment measures.
    pub fn new(db: ShardedDb<S>, per_shard: Capacity) -> ShardedServer<S> {
        let seed = db.seed();
        let shards = db
            .into_shards()
            .into_iter()
            .enumerate()
            .map(|(i, shard_db)| {
                Server::new(shard_db, per_shard).with_session_base(i as u64 * SHARD_SESSION_STRIDE)
            })
            .collect();
        ShardedServer {
            shards,
            seed,
            clock: TimePoint::ZERO,
            tracer: Tracer::disabled(),
            workers: 1,
            tick: None,
            shard_tracers: Vec::new(),
            pool_stats: Vec::new(),
        }
    }

    /// Builder: drives parallel runs on `workers` OS threads (clamped to
    /// the shard count; 1 keeps every drive sequential). Same seed, same
    /// requests ⇒ byte-identical stats, metrics and traces at *any* worker
    /// count — see the `pool` module docs for why. Parallel drives
    /// require per-shard tracing ([`ShardedServer::with_shard_tracers`]);
    /// with a shared-ring tracer attached ([`ShardedServer::with_tracer`])
    /// drives fall back to sequential so the shared timeline stays
    /// deterministic.
    pub fn with_workers(mut self, workers: usize) -> ShardedServer<S> {
        self.workers = workers.max(1);
        self
    }

    /// Replaces the worker count mid-run, returning the previous one.
    /// Takes effect at the next drive; because every drive's outcome is a
    /// pure function of simulated time, changing the count between drives
    /// never changes what gets served — only how fast. Operators (and the
    /// throughput suite) use this to stage a large session wave cheaply at
    /// one worker, then parallel-drain it.
    pub fn set_workers(&mut self, workers: usize) -> usize {
        std::mem::replace(&mut self.workers, workers.max(1))
    }

    /// Builder: splits parallel drives into fixed simulated-time rounds of
    /// `tick`, committing all shards at each barrier before any shard
    /// enters the next round. Bounds how far shards drift apart inside one
    /// drive; purely a scheduling knob — served elements and their timing
    /// are identical at any tick.
    pub fn with_tick(mut self, tick: TimeDelta) -> ShardedServer<S> {
        assert!(tick > TimeDelta::ZERO, "barrier tick must be positive");
        self.tick = Some(tick);
        self
    }

    /// Builder: gives every shard its own segment cache of `budget_bytes`.
    pub fn with_cache_budget(mut self, budget_bytes: u64) -> ShardedServer<S> {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_cache_budget(budget_bytes))
            .collect();
        self
    }

    /// Builder: sets every shard's per-read retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> ShardedServer<S> {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_retry(retry))
            .collect();
        self
    }

    /// Builder: sets every shard's per-element degradation policy.
    pub fn with_degradation(mut self, policy: DegradationPolicy) -> ShardedServer<S> {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_degradation(policy))
            .collect();
        self
    }

    /// Builder: attaches one tracer to every shard (clones share the ring,
    /// so all shards land in one timeline; session ids disambiguate).
    ///
    /// A shared ring cannot take concurrent writers without the interleave
    /// order depending on host scheduling, so this mode pins drives to the
    /// sequential path even under [`ShardedServer::with_workers`]. For
    /// traced *parallel* runs use [`ShardedServer::with_shard_tracers`].
    pub fn with_tracer(mut self, tracer: Tracer) -> ShardedServer<S> {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_tracer(tracer.clone()))
            .collect();
        self.tracer = tracer;
        self
    }

    /// Builder: gives every shard its *own* tracer ring (each retaining at
    /// most `capacity` records) with a disjoint record-id range
    /// ([`SHARD_TRACE_ID_STRIDE`]), mirroring the session-id stride.
    /// [`ShardedServer::trace`] concatenates the rings in shard order, so
    /// the merged timeline is byte-identical at any worker count — this is
    /// the tracing mode parallel drives require.
    /// [`tbm_obs::DEFAULT_TRACE_CAPACITY`] is the usual `capacity`.
    pub fn with_shard_tracers(mut self, capacity: usize) -> ShardedServer<S> {
        let tracers: Vec<Tracer> = (0..self.shards.len())
            .map(|i| Tracer::with_capacity_and_base(capacity, i as u64 * SHARD_TRACE_ID_STRIDE))
            .collect();
        self.shards = self
            .shards
            .into_iter()
            .zip(tracers.iter())
            .map(|(s, t)| s.with_tracer(t.clone()))
            .collect();
        self.tracer = Tracer::disabled();
        self.shard_tracers = tracers;
        self
    }

    /// The routing seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A shard's server (its capacity, cache stats, sessions, metrics).
    pub fn shard(&self, i: usize) -> &Server<S> {
        &self.shards[i]
    }

    /// The shards in order.
    pub fn shards(&self) -> impl Iterator<Item = &Server<S>> {
        self.shards.iter()
    }

    /// The shard owning `object` (pure hash).
    pub fn shard_for(&self, object: &str) -> usize {
        shard_of(object, self.seed, self.shards.len())
    }

    /// The shard that allocated `id`, or `None` for an id no shard could
    /// have issued.
    pub fn shard_of_session(&self, id: SessionId) -> Option<usize> {
        let shard = (id.raw() / SHARD_SESSION_STRIDE) as usize;
        (shard < self.shards.len()).then_some(shard)
    }

    /// The front-end clock: the latest simulated time processed.
    pub fn clock(&self) -> TimePoint {
        self.clock
    }

    /// Every shard's sessions, in shard order then admission order.
    pub fn sessions(&self) -> impl Iterator<Item = &Session> {
        self.shards.iter().flat_map(|s| s.sessions().iter())
    }

    /// A session by (globally unique) id, wherever it lives.
    pub fn session(&self, id: SessionId) -> Option<&Session> {
        self.shard_of_session(id)
            .and_then(|i| self.shards[i].session(id))
    }

    /// Routes a request to the owning shard: `Open` by name hash, session
    /// requests by session-id arithmetic. Time must be non-decreasing
    /// across *all* requests — one fleet, one clock.
    pub fn request(&mut self, at: TimePoint, request: Request) -> Result<Response, ServeError> {
        if at < self.clock {
            return Err(ServeError::NonMonotonicTime {
                at,
                clock: self.clock,
            });
        }
        self.run_until(at);
        let shard = match &request {
            Request::Open { object } => self.shard_for(object),
            Request::Play { session }
            | Request::Pause { session }
            | Request::Seek { session, .. }
            | Request::SetRate { session, .. }
            | Request::Close { session } => self
                .shard_of_session(*session)
                .ok_or(ServeError::UnknownSession { session: *session })?,
        };
        self.shards[shard].request(at, request)
    }

    /// Serves every shard's queued elements due by `to`, advancing the
    /// fleet clock. Shards share no state, so neither the drive order nor
    /// the worker count changes any shard's outcome; with more than one
    /// worker (and work actually due) the shards are driven by the
    /// the `pool` module between deterministic tick barriers.
    pub fn run_until(&mut self, to: TimePoint) {
        if self.pool_engaged() && self.shards.iter().any(|s| s.has_due(to)) {
            let goals = self.round_goals(to, false);
            let drive = run_rounds(&mut self.shards, &goals, self.workers);
            self.absorb_pool_stats(&drive);
        } else {
            for shard in &mut self.shards {
                shard.run_until(to);
            }
        }
        self.clock = self.clock.max(to);
    }

    /// Drains every shard's event loop completely and returns the final
    /// cross-shard statistics. The drain parallelises exactly like
    /// [`ShardedServer::run_until`]; stats are then collected in shard
    /// order, so the snapshot is byte-identical at any worker count.
    pub fn finish(&mut self) -> ShardedStats {
        if self.pool_engaged() && self.shards.iter().any(|s| s.has_queued()) {
            let goals = self.round_goals(self.clock, true);
            let drive = run_rounds(&mut self.shards, &goals, self.workers);
            self.absorb_pool_stats(&drive);
        }
        let per_shard: Vec<ServerStats> = self.shards.iter_mut().map(|s| s.finish()).collect();
        for shard in &self.shards {
            self.clock = self.clock.max(shard.clock());
        }
        ShardedStats::from_shards(per_shard)
    }

    /// Whether a drive with due work would use the worker pool: more than
    /// one worker, more than one shard, and no shared-ring tracer (which
    /// pins drives to the sequential path — see
    /// [`ShardedServer::with_tracer`]).
    fn pool_engaged(&self) -> bool {
        self.workers > 1 && self.shards.len() > 1 && !self.tracer.is_enabled()
    }

    /// The barrier schedule of one parallel drive: fixed ticks from the
    /// fleet clock through `to` (when a tick is configured), then the
    /// drive goal itself.
    fn round_goals(&self, to: TimePoint, drain: bool) -> Vec<RoundGoal> {
        let mut goals = Vec::new();
        if let Some(tick) = self.tick {
            let mut at = self.clock + tick;
            while at < to {
                goals.push(RoundGoal::RunUntil(at));
                at += tick;
            }
        }
        if !drain || to > self.clock {
            goals.push(RoundGoal::RunUntil(to));
        }
        if drain {
            goals.push(RoundGoal::Drain);
        }
        goals
    }

    /// Folds one drive's per-worker counters into the running totals.
    fn absorb_pool_stats(&mut self, drive: &[WorkerStats]) {
        if self.pool_stats.len() < drive.len() {
            self.pool_stats.resize(drive.len(), WorkerStats::default());
        }
        for (total, d) in self.pool_stats.iter_mut().zip(drive) {
            total.absorb(d);
        }
    }

    /// Per-worker counters accumulated across every parallel drive so far,
    /// indexed by worker. Empty while no drive has engaged the pool.
    /// Host-scheduling diagnostics: *not* part of the deterministic
    /// surface (steal counts vary run to run; served elements do not), and
    /// therefore not merged into [`ShardedServer::metrics`].
    pub fn worker_stats(&self) -> &[WorkerStats] {
        &self.pool_stats
    }

    /// The per-shard tracers created by
    /// [`ShardedServer::with_shard_tracers`], in shard order (empty in
    /// shared-tracer or untraced mode).
    pub fn shard_tracers(&self) -> &[Tracer] {
        &self.shard_tracers
    }

    /// A point-in-time cross-shard snapshot (per-shard + merged global).
    pub fn stats(&self) -> ShardedStats {
        ShardedStats::from_shards(self.shards.iter().map(|s| s.stats()).collect())
    }

    /// The fleet's metrics rollup: every shard's registry under a
    /// `shard{i}.` prefix, the unprefixed additive global aggregate, and
    /// the `shard.skew` gauge ([`ShardedStats::skew_percent`]).
    pub fn metrics(&self) -> MetricsRegistry {
        let mut rollup = MetricsRegistry::new();
        for (i, shard) in self.shards.iter().enumerate() {
            rollup.merge_prefixed(shard.metrics(), &format!("shard{i}."));
            rollup.merge_prefixed(shard.metrics(), "");
        }
        rollup.set_gauge(G_SHARD_SKEW, self.stats().skew_percent());
        rollup
    }

    /// An owned snapshot of the fleet trace: the shared ring under
    /// [`ShardedServer::with_tracer`], or the per-shard rings concatenated
    /// in shard order under [`ShardedServer::with_shard_tracers`] (byte-
    /// identical at any worker count). Empty when untraced.
    pub fn trace(&self) -> TraceSnapshot {
        if self.shard_tracers.is_empty() {
            self.tracer.snapshot()
        } else {
            merge_snapshots(self.shard_tracers.iter().map(|t| t.snapshot()))
        }
    }

    /// Writes the fleet trace ([`ShardedServer::trace`]) as Chrome
    /// `trace_event` JSON.
    pub fn trace_to_writer(&self, w: &mut dyn io::Write) -> io::Result<()> {
        chrome_trace_to_writer(&self.trace(), w)
    }

    /// Deadline-miss attribution over the fleet trace, fleet-wide.
    /// Session ids are globally unique, so per-session backlog chaining
    /// never mixes sessions from different shards.
    pub fn attribution(&self) -> AttributionReport {
        attribute(&self.trace().records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_seeded() {
        // Pinned values: placement is an on-disk/on-wire contract, so the
        // hash must never drift across releases.
        assert_eq!(shard_of("video1", 0, 1), 0);
        let a = shard_of("movie0", 7, 4);
        assert_eq!(a, shard_of("movie0", 7, 4), "same inputs, same shard");
        // Different seeds must be able to move at least one of these names.
        let moved = (0..64u64).any(|seed| {
            ["movie0", "movie1", "movie2", "movie3"]
                .iter()
                .any(|n| shard_of(n, seed, 4) != shard_of(n, seed + 1, 4))
        });
        assert!(moved, "the seed must actually participate in placement");
        // All shards are reachable over a modest namespace.
        let mut hit = [false; 4];
        for i in 0..64 {
            hit[shard_of(&format!("object{i}"), 42, 4)] = true;
        }
        assert!(hit.iter().all(|&h| h), "hash must spread across all shards");
    }

    #[test]
    fn shard_of_matches_golden_vectors() {
        // The routing hash is a wire/disk contract shared with the fleet's
        // placement service: these literals pin the exact seeded-FNV-1a
        // variant. If this test fails, the hash changed — which silently
        // re-homes every object in every deployed catalog. Don't "fix" the
        // vectors; fix the hash.
        for (name, seed, shards, want) in [
            ("video1", 0u64, 4usize, 3usize),
            ("video1", 0, 16, 7),
            ("movie0", 7, 4, 2),
            ("movie1", 7, 4, 1),
            ("movie2", 7, 4, 0),
            ("movie3", 7, 4, 3),
            ("video1", 42, 4, 1),
            ("audio-news", 42, 4, 1),
            ("", 0, 4, 1),
            ("", 42, 8, 7),
            ("clip/2024/01", 1, 8, 3),
            ("clip/2024/01", 2, 8, 0),
        ] {
            assert_eq!(
                shard_of(name, seed, shards),
                want,
                "shard_of({name:?}, {seed}, {shards}) drifted from its golden vector"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        shard_of("x", 0, 0);
    }

    #[test]
    fn skew_is_zero_when_balanced_and_loud_when_hot() {
        let mut even = ServerStats::empty();
        even.elements_served = 10;
        let balanced = ShardedStats::from_shards(vec![even, even]);
        assert_eq!(balanced.skew_percent(), 0);

        let mut hot = ServerStats::empty();
        hot.elements_served = 40;
        let cold = ServerStats::empty();
        let skewed = ShardedStats::from_shards(vec![hot, cold, cold, cold]);
        assert_eq!(skewed.skew_percent(), 300, "one of four carries it all");
        assert_eq!(skewed.global.elements_served, 40);
    }
}
