//! Media types (paper Definition 1).
//!
//! > *"A media type is a specification of the attributes found in media
//! > descriptors and their possible values. For time-based media, a media
//! > type also specifies the form of element descriptors."*
//!
//! A [`MediaType`] declares, for each attribute, its name, value type,
//! whether it is required, and optionally a fixed value or integer range
//! (the CD-audio type *fixes* `sample rate = 44100`). It also declares
//! category constraints checked against streams — e.g. CD audio must be a
//! uniform stream, which yields the paper's `sᵢ₊₁ = sᵢ + dᵢ ∧ dᵢ = 1`
//! requirement.

use crate::{
    keys, AttrValue, CategoryReport, ElementDescriptor, MediaDescriptor, ModelError, StreamCategory,
};
use std::fmt;
use tbm_time::Rational;

/// The broad media kinds discussed by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MediaKind {
    /// Still images.
    Image,
    /// Sampled sound.
    Audio,
    /// Frame sequences.
    Video,
    /// Symbolic music (MIDI-like events) — audio is *derived* from it.
    Music,
    /// Symbolic animation (scene events) — video is *derived* from it.
    Animation,
    /// Structured text (included for completeness of derivation examples).
    Text,
}

impl MediaKind {
    /// All kinds, in declaration order.
    pub const ALL: [MediaKind; 6] = [
        MediaKind::Image,
        MediaKind::Audio,
        MediaKind::Video,
        MediaKind::Music,
        MediaKind::Animation,
        MediaKind::Text,
    ];

    /// `true` for kinds whose representations are inherently time-based.
    pub fn is_time_based(self) -> bool {
        !matches!(self, MediaKind::Image | MediaKind::Text)
    }
}

impl fmt::Display for MediaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MediaKind::Image => "image",
            MediaKind::Audio => "audio",
            MediaKind::Video => "video",
            MediaKind::Music => "music",
            MediaKind::Animation => "animation",
            MediaKind::Text => "text",
        };
        f.write_str(s)
    }
}

/// The value type an attribute specification accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrType {
    /// Signed integer.
    Int,
    /// Exact rational.
    Rational,
    /// Text.
    Text,
    /// Boolean.
    Bool,
}

impl AttrType {
    /// Whether `value` inhabits this type (integers inhabit `Rational`).
    pub fn admits(self, value: &AttrValue) -> bool {
        matches!(
            (self, value),
            (AttrType::Int, AttrValue::Int(_))
                | (AttrType::Rational, AttrValue::Rational(_))
                | (AttrType::Rational, AttrValue::Int(_))
                | (AttrType::Text, AttrValue::Text(_))
                | (AttrType::Bool, AttrValue::Bool(_))
        )
    }

    /// Type name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            AttrType::Int => "int",
            AttrType::Rational => "rational",
            AttrType::Text => "text",
            AttrType::Bool => "bool",
        }
    }
}

/// Specification of one descriptor attribute within a media type.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrSpec {
    /// Attribute key (see [`crate::keys`]).
    pub key: String,
    /// Accepted value type.
    pub ty: AttrType,
    /// Whether a descriptor must supply the attribute.
    pub required: bool,
    /// If set, the attribute must equal this exact value (the CD-audio type
    /// pins `sample rate = 44100`).
    pub fixed: Option<AttrValue>,
    /// If set, an inclusive numeric range for int/rational attributes.
    pub range: Option<(Rational, Rational)>,
}

impl AttrSpec {
    /// A required attribute of the given type.
    pub fn required(key: &str, ty: AttrType) -> AttrSpec {
        AttrSpec {
            key: key.to_owned(),
            ty,
            required: true,
            fixed: None,
            range: None,
        }
    }

    /// An optional attribute of the given type.
    pub fn optional(key: &str, ty: AttrType) -> AttrSpec {
        AttrSpec {
            required: false,
            ..AttrSpec::required(key, ty)
        }
    }

    /// Pins the attribute to an exact value.
    pub fn fixed_value(mut self, v: impl Into<AttrValue>) -> AttrSpec {
        self.fixed = Some(v.into());
        self
    }

    /// Restricts numeric attributes to an inclusive range.
    pub fn in_range(mut self, lo: Rational, hi: Rational) -> AttrSpec {
        self.range = Some((lo, hi));
        self
    }

    fn check(&self, desc: &MediaDescriptor) -> Result<(), ModelError> {
        let value = match desc.get(&self.key) {
            Some(v) => v,
            None if self.required => {
                return Err(ModelError::MissingAttribute {
                    key: self.key.clone(),
                })
            }
            None => return Ok(()),
        };
        if !self.ty.admits(value) {
            return Err(ModelError::WrongAttributeType {
                key: self.key.clone(),
                expected: self.ty.name(),
            });
        }
        if let Some(fixed) = &self.fixed {
            let matches = match (fixed.as_rational(), value.as_rational()) {
                (Some(a), Some(b)) => a == b,
                _ => fixed == value,
            };
            if !matches {
                return Err(ModelError::AttributeOutOfRange {
                    key: self.key.clone(),
                    constraint: format!("must equal {fixed}"),
                });
            }
        }
        if let Some((lo, hi)) = self.range {
            if let Some(v) = value.as_rational() {
                if v < lo || v > hi {
                    return Err(ModelError::AttributeOutOfRange {
                        key: self.key.clone(),
                        constraint: format!("must lie in [{lo}, {hi}]"),
                    });
                }
            }
        }
        Ok(())
    }
}

/// A media type: attribute specifications plus stream-category constraints
/// (Definition 1).
#[derive(Debug, Clone, PartialEq)]
pub struct MediaType {
    name: String,
    kind: MediaKind,
    attr_specs: Vec<AttrSpec>,
    /// Categories every stream of this type must satisfy.
    required_categories: Vec<StreamCategory>,
    /// Whether streams of this type carry per-element descriptors.
    has_element_descriptors: bool,
}

impl MediaType {
    /// Creates a media type with no attribute specs or constraints.
    pub fn new(name: &str, kind: MediaKind) -> MediaType {
        MediaType {
            name: name.to_owned(),
            kind,
            attr_specs: Vec::new(),
            required_categories: Vec::new(),
            has_element_descriptors: false,
        }
    }

    /// The type's name (e.g. `"CD audio"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The type's media kind.
    pub fn kind(&self) -> MediaKind {
        self.kind
    }

    /// Adds an attribute specification, builder style.
    pub fn with_attr(mut self, spec: AttrSpec) -> MediaType {
        self.attr_specs.push(spec);
        self
    }

    /// Requires streams of this type to satisfy `category`.
    pub fn require_category(mut self, category: StreamCategory) -> MediaType {
        self.required_categories.push(category);
        self
    }

    /// Declares that elements of this type carry their own descriptors
    /// (the paper's ADPCM example).
    pub fn with_element_descriptors(mut self) -> MediaType {
        self.has_element_descriptors = true;
        self
    }

    /// Whether streams of this type carry per-element descriptors.
    pub fn has_element_descriptors(&self) -> bool {
        self.has_element_descriptors
    }

    /// The categories required of every stream of this type.
    pub fn required_categories(&self) -> &[StreamCategory] {
        &self.required_categories
    }

    /// The attribute specifications.
    pub fn attr_specs(&self) -> &[AttrSpec] {
        &self.attr_specs
    }

    /// Validates a media descriptor against this type.
    pub fn validate_descriptor(&self, desc: &MediaDescriptor) -> Result<(), ModelError> {
        if desc.kind() != self.kind {
            return Err(ModelError::KindMismatch {
                expected: self.kind.to_string(),
                found: desc.kind().to_string(),
            });
        }
        for spec in &self.attr_specs {
            spec.check(desc)?;
        }
        Ok(())
    }

    /// Validates a stream's category report against this type's constraints.
    pub fn validate_categories(&self, report: &CategoryReport) -> Result<(), ModelError> {
        for &cat in &self.required_categories {
            if !report.satisfies(cat) {
                return Err(ModelError::CategoryViolation {
                    required: cat.name(),
                });
            }
        }
        Ok(())
    }

    /// Validates an element descriptor's presence against the type: types
    /// without element descriptors expect empty ones.
    pub fn validate_element_descriptor(&self, ed: &ElementDescriptor) -> Result<(), ModelError> {
        if !self.has_element_descriptors && !ed.is_empty() {
            return Err(ModelError::AttributeOutOfRange {
                key: "<element descriptor>".to_owned(),
                constraint: format!(
                    "media type `{}` does not define element descriptors",
                    self.name
                ),
            });
        }
        Ok(())
    }

    // ---- Built-in types used throughout the reproduction -----------------

    /// The paper's example: CD audio — 44.1 kHz, 16-bit, stereo, uniform.
    ///
    /// "Element descriptors are not necessary since all elements have the
    /// same form (16 bit PCM samples)."
    pub fn cd_audio() -> MediaType {
        MediaType::new("CD audio", MediaKind::Audio)
            .with_attr(AttrSpec::required(keys::SAMPLE_RATE, AttrType::Int).fixed_value(44100))
            .with_attr(AttrSpec::required(keys::SAMPLE_SIZE, AttrType::Int).fixed_value(16))
            .with_attr(AttrSpec::required(keys::CHANNELS, AttrType::Int).fixed_value(2))
            .with_attr(AttrSpec::optional(keys::DURATION, AttrType::Rational))
            .with_attr(AttrSpec::optional(keys::QUALITY_FACTOR, AttrType::Text))
            .with_attr(AttrSpec::optional(keys::ENCODING, AttrType::Text))
            .require_category(StreamCategory::Uniform)
    }

    /// The paper's ADPCM example: encoding parameters vary over the
    /// sequence, so elements carry descriptors.
    pub fn adpcm_audio() -> MediaType {
        MediaType::new("ADPCM audio", MediaKind::Audio)
            .with_attr(
                AttrSpec::required(keys::SAMPLE_RATE, AttrType::Int)
                    .in_range(Rational::from(8000), Rational::from(48000)),
            )
            .with_attr(
                AttrSpec::required(keys::CHANNELS, AttrType::Int)
                    .in_range(Rational::from(1), Rational::from(8)),
            )
            .with_attr(AttrSpec::optional(keys::DURATION, AttrType::Rational))
            .with_attr(AttrSpec::optional(keys::QUALITY_FACTOR, AttrType::Text))
            .with_attr(AttrSpec::optional(keys::ENCODING, AttrType::Text))
            .require_category(StreamCategory::Continuous)
            .with_element_descriptors()
    }

    /// Generic PCM audio at a declared rate.
    pub fn pcm_audio() -> MediaType {
        MediaType::new("PCM audio", MediaKind::Audio)
            .with_attr(
                AttrSpec::required(keys::SAMPLE_RATE, AttrType::Int)
                    .in_range(Rational::from(1), Rational::from(384_000)),
            )
            .with_attr(AttrSpec::required(keys::SAMPLE_SIZE, AttrType::Int))
            .with_attr(AttrSpec::required(keys::CHANNELS, AttrType::Int))
            .with_attr(AttrSpec::optional(keys::DURATION, AttrType::Rational))
            .with_attr(AttrSpec::optional(keys::QUALITY_FACTOR, AttrType::Text))
            .with_attr(AttrSpec::optional(keys::ENCODING, AttrType::Text))
            .with_attr(AttrSpec::optional(keys::LANGUAGE, AttrType::Text))
            .require_category(StreamCategory::Uniform)
    }

    /// Fixed-frame-rate digital video (constant frequency, sizes may vary
    /// under compression).
    pub fn video(name: &str) -> MediaType {
        MediaType::new(name, MediaKind::Video)
            .with_attr(AttrSpec::required(keys::FRAME_RATE, AttrType::Rational))
            .with_attr(AttrSpec::required(keys::FRAME_WIDTH, AttrType::Int))
            .with_attr(AttrSpec::required(keys::FRAME_HEIGHT, AttrType::Int))
            .with_attr(AttrSpec::optional(keys::FRAME_DEPTH, AttrType::Int))
            .with_attr(AttrSpec::optional(keys::COLOR_MODEL, AttrType::Text))
            .with_attr(AttrSpec::optional(keys::ENCODING, AttrType::Text))
            .with_attr(AttrSpec::optional(keys::DURATION, AttrType::Rational))
            .with_attr(AttrSpec::optional(keys::QUALITY_FACTOR, AttrType::Text))
            .require_category(StreamCategory::ConstantFrequency)
    }

    /// Interframe-compressed video: still constant frequency, but elements
    /// carry descriptors (frame kind, references).
    pub fn interframe_video(name: &str) -> MediaType {
        MediaType::video(name).with_element_descriptors()
    }

    /// Symbolic music: non-continuous (chords overlap, rests leave gaps).
    pub fn music() -> MediaType {
        MediaType::new("music", MediaKind::Music)
            .with_attr(AttrSpec::required(keys::PPQ, AttrType::Int))
            .with_attr(AttrSpec::optional(keys::TEMPO, AttrType::Rational))
            .with_attr(AttrSpec::optional(keys::DURATION, AttrType::Rational))
            .with_element_descriptors()
    }

    /// MIDI event streams: event-based (`dᵢ = 0`).
    pub fn midi() -> MediaType {
        MediaType::new("MIDI", MediaKind::Music)
            .with_attr(AttrSpec::required(keys::PPQ, AttrType::Int))
            .with_attr(AttrSpec::optional(keys::TEMPO, AttrType::Rational))
            .with_attr(AttrSpec::optional(keys::DURATION, AttrType::Rational))
            .require_category(StreamCategory::EventBased)
            .with_element_descriptors()
    }

    /// Symbolic animation: non-continuous movement specifications.
    pub fn animation() -> MediaType {
        MediaType::new("animation", MediaKind::Animation)
            .with_attr(AttrSpec::optional(keys::FRAME_RATE, AttrType::Rational))
            .with_attr(AttrSpec::optional(keys::DURATION, AttrType::Rational))
            .with_element_descriptors()
    }

    /// Still images (not time-based; usable in derivations such as color
    /// separation).
    pub fn image() -> MediaType {
        MediaType::new("image", MediaKind::Image)
            .with_attr(AttrSpec::required(keys::FRAME_WIDTH, AttrType::Int))
            .with_attr(AttrSpec::required(keys::FRAME_HEIGHT, AttrType::Int))
            .with_attr(AttrSpec::optional(keys::COLOR_MODEL, AttrType::Text))
            .with_attr(AttrSpec::optional(keys::ENCODING, AttrType::Text))
    }
}

impl fmt::Display for MediaType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MediaDescriptor;

    fn cd_descriptor() -> MediaDescriptor {
        MediaDescriptor::new(MediaKind::Audio)
            .with(keys::SAMPLE_RATE, 44100)
            .with(keys::SAMPLE_SIZE, 16)
            .with(keys::CHANNELS, 2)
    }

    #[test]
    fn cd_audio_accepts_spec_descriptor() {
        assert!(MediaType::cd_audio()
            .validate_descriptor(&cd_descriptor())
            .is_ok());
    }

    #[test]
    fn cd_audio_pins_sample_rate() {
        let d = cd_descriptor().with(keys::SAMPLE_RATE, 48000);
        let err = MediaType::cd_audio().validate_descriptor(&d).unwrap_err();
        assert!(matches!(err, ModelError::AttributeOutOfRange { .. }));
    }

    #[test]
    fn missing_required_attribute_reported() {
        let d = MediaDescriptor::new(MediaKind::Audio).with(keys::SAMPLE_RATE, 44100);
        let err = MediaType::cd_audio().validate_descriptor(&d).unwrap_err();
        assert!(matches!(err, ModelError::MissingAttribute { .. }));
    }

    #[test]
    fn wrong_type_reported() {
        let d = cd_descriptor().with(keys::SAMPLE_SIZE, "sixteen");
        let err = MediaType::cd_audio().validate_descriptor(&d).unwrap_err();
        assert!(matches!(err, ModelError::WrongAttributeType { .. }));
    }

    #[test]
    fn kind_mismatch_reported() {
        let d = MediaDescriptor::new(MediaKind::Video);
        let err = MediaType::cd_audio().validate_descriptor(&d).unwrap_err();
        assert!(matches!(err, ModelError::KindMismatch { .. }));
    }

    #[test]
    fn range_constraints() {
        let t = MediaType::adpcm_audio();
        let ok = MediaDescriptor::new(MediaKind::Audio)
            .with(keys::SAMPLE_RATE, 22050)
            .with(keys::CHANNELS, 2);
        assert!(t.validate_descriptor(&ok).is_ok());
        let bad = MediaDescriptor::new(MediaKind::Audio)
            .with(keys::SAMPLE_RATE, 96000)
            .with(keys::CHANNELS, 2);
        assert!(matches!(
            t.validate_descriptor(&bad),
            Err(ModelError::AttributeOutOfRange { .. })
        ));
    }

    #[test]
    fn element_descriptor_policy() {
        let cd = MediaType::cd_audio();
        assert!(!cd.has_element_descriptors());
        assert!(cd
            .validate_element_descriptor(&ElementDescriptor::empty())
            .is_ok());
        let ed = ElementDescriptor::from_pairs([("step", 3i64)]);
        assert!(cd.validate_element_descriptor(&ed).is_err());
        assert!(MediaType::adpcm_audio()
            .validate_element_descriptor(&ed)
            .is_ok());
    }

    #[test]
    fn time_based_kinds() {
        assert!(MediaKind::Audio.is_time_based());
        assert!(MediaKind::Video.is_time_based());
        assert!(MediaKind::Music.is_time_based());
        assert!(MediaKind::Animation.is_time_based());
        assert!(!MediaKind::Image.is_time_based());
        assert!(!MediaKind::Text.is_time_based());
    }

    #[test]
    fn optional_attrs_may_be_absent() {
        // duration/quality omitted — still valid.
        assert!(MediaType::cd_audio()
            .validate_descriptor(&cd_descriptor())
            .is_ok());
    }

    #[test]
    fn display() {
        assert_eq!(MediaType::cd_audio().to_string(), "CD audio (audio)");
        assert_eq!(MediaKind::Music.to_string(), "music");
    }
}
