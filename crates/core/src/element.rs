//! The element interface required by timed streams.
//!
//! Definition 3's tuples carry media elements `eᵢ` whose concrete form is
//! media-specific (video frames, audio samples, musical notes…). The stream
//! layer needs only two things from an element: its *size* (for data-rate
//! classification and interpretation placement) and its *element descriptor*
//! (for homogeneity classification). [`StreamElement`] captures exactly
//! that; concrete media in `tbm-media` implement it.

use crate::ElementDescriptor;

/// Behaviour required of media elements stored in a [`crate::TimedStream`].
pub trait StreamElement {
    /// The element's encoded size in bytes.
    ///
    /// Figure 1 visualizes this as the *area* of each element rectangle; the
    /// constant-data-rate and uniform categories constrain it.
    fn byte_size(&self) -> u64;

    /// A cheap equality token for the element's descriptor.
    ///
    /// Elements with equal tokens must have equal element descriptors.
    /// Homogeneity classification compares tokens, so a second of CD audio
    /// (44 100 elements) classifies without allocating 44 100 descriptors.
    /// The default token (0) declares "no element descriptor", which is
    /// correct for fully homogeneous media.
    fn descriptor_token(&self) -> u64 {
        0
    }

    /// The element's full descriptor, materialized on demand.
    fn element_descriptor(&self) -> ElementDescriptor {
        ElementDescriptor::empty()
    }
}

/// A minimal element carrying only a size and an optional descriptor.
///
/// Used by tests, benchmarks and layers that manipulate stream *structure*
/// without materializing media content (e.g. interpretation planning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizedElement {
    size: u64,
    descriptor: ElementDescriptor,
}

impl SizedElement {
    /// An element of `size` bytes with an empty descriptor.
    pub fn new(size: u64) -> SizedElement {
        SizedElement {
            size,
            descriptor: ElementDescriptor::empty(),
        }
    }

    /// An element of `size` bytes with the given descriptor.
    pub fn with_descriptor(size: u64, descriptor: ElementDescriptor) -> SizedElement {
        SizedElement { size, descriptor }
    }

    /// The descriptor attached to the element.
    pub fn descriptor(&self) -> &ElementDescriptor {
        &self.descriptor
    }
}

impl StreamElement for SizedElement {
    fn byte_size(&self) -> u64 {
        self.size
    }

    fn descriptor_token(&self) -> u64 {
        if self.descriptor.is_empty() {
            0
        } else {
            self.descriptor.token()
        }
    }

    fn element_descriptor(&self) -> ElementDescriptor {
        self.descriptor.clone()
    }
}

/// References to elements delegate to the referent.
impl<T: StreamElement + ?Sized> StreamElement for &T {
    fn byte_size(&self) -> u64 {
        (**self).byte_size()
    }

    fn descriptor_token(&self) -> u64 {
        (**self).descriptor_token()
    }

    fn element_descriptor(&self) -> ElementDescriptor {
        (**self).element_descriptor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_element_reports_size() {
        let e = SizedElement::new(1024);
        assert_eq!(e.byte_size(), 1024);
        assert_eq!(e.descriptor_token(), 0);
        assert!(e.element_descriptor().is_empty());
    }

    #[test]
    fn descriptor_token_tracks_descriptor() {
        let d1 = ElementDescriptor::from_pairs([("kind", "I")]);
        let d2 = ElementDescriptor::from_pairs([("kind", "P")]);
        let a = SizedElement::with_descriptor(10, d1.clone());
        let b = SizedElement::with_descriptor(10, d1);
        let c = SizedElement::with_descriptor(10, d2);
        assert_eq!(a.descriptor_token(), b.descriptor_token());
        assert_ne!(a.descriptor_token(), c.descriptor_token());
        assert_ne!(a.descriptor_token(), 0);
    }

    #[test]
    fn reference_delegation() {
        let e = SizedElement::new(5);
        let r: &SizedElement = &e;
        assert_eq!(StreamElement::byte_size(&r), 5);
    }
}
