//! # tbm-core — the timed-stream data model
//!
//! This crate implements the heart of *Data Modeling of Time-Based Media*
//! (Gibbs, Breiteneder, Tsichritzis; SIGMOD 1994): media types, media and
//! element descriptors (Definition 1), timed streams (Definition 3) and the
//! stream-category taxonomy of the paper's Figure 1.
//!
//! The central abstraction is the [`TimedStream`]: a finite sequence of
//! tuples `⟨eᵢ, sᵢ, dᵢ⟩` whose elements belong to a [`MediaType`] and whose
//! start times and durations are discrete time values in a
//! [`tbm_time::TimeSystem`]. Streams are classified ([`classify`],
//! [`CategoryReport`]) into the paper's eight categories:
//!
//! | category | constraint |
//! |---|---|
//! | homogeneous | element descriptors constant |
//! | heterogeneous | element descriptors vary |
//! | continuous | `sᵢ₊₁ = sᵢ + dᵢ` |
//! | non-continuous | gaps and/or overlaps |
//! | event-based | `dᵢ = 0` for all `i` |
//! | constant frequency | continuous ∧ constant duration |
//! | constant data rate | continuous ∧ constant size/duration ratio |
//! | uniform | continuous ∧ constant size ∧ constant duration |
//!
//! Higher layers build on this: `tbm-interp` maps BLOBs to streams
//! (interpretation), `tbm-derive` computes streams from streams (derivation)
//! and `tbm-compose` relates media objects in time and space (composition).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod attr;
mod category;
mod checksum;
mod descriptor;
mod element;
mod error;
mod ids;
mod mediatype;
mod quality;
mod stream;

pub use attr::AttrValue;
pub use category::{classify, CategoryReport, StreamCategory};
pub use checksum::{crc32, Crc32};
pub use descriptor::{keys, ElementDescriptor, MediaDescriptor};
pub use element::{SizedElement, StreamElement};
pub use error::ModelError;
pub use ids::{
    BlobId, DerivationId, InterpretationId, MediaObjectId, MultimediaObjectId, SessionId,
};
pub use mediatype::{AttrSpec, AttrType, MediaKind, MediaType};
pub use quality::{AudioQuality, QualityFactor, VideoQuality};
pub use stream::{StreamStats, TimedStream, TimedTuple};
