//! Timed streams (paper Definition 3).
//!
//! > *"A timed stream is a finite sequence of tuples of the form
//! > `⟨eᵢ, sᵢ, dᵢ⟩`, i = 1 … n. Each timed stream is based on a media type T
//! > and a discrete time system D. … Start times and durations satisfy
//! > `sᵢ₊₁ ≥ sᵢ` and `dᵢ ≥ 0`."*
//!
//! [`TimedStream`] enforces those constraints at construction and offers the
//! structural queries the higher layers need: span, gaps/overlaps,
//! element-at-time lookup (binary search over the ordered starts), time-window
//! slicing, and aggregate statistics for resource allocation
//! ([`StreamStats`] — the paper asks descriptors to carry "the average data
//! rate for each stream \[and\] a measure of data rate variation").

use crate::{MediaType, ModelError, StreamElement};
use std::fmt;
use tbm_time::{Interval, Rational, TimeDelta, TimeSystem};

/// One `⟨element, start, duration⟩` tuple of a timed stream.
///
/// `start` and `duration` are *discrete* time values, measured in the
/// stream's [`TimeSystem`]. The paper is explicit that these are scheduling
/// times — "the start time of a video frame is not the time when the frame
/// was captured … but when it should be displayed relative to other frames".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedTuple<E> {
    /// The media element `eᵢ`.
    pub element: E,
    /// Discrete start time `sᵢ`.
    pub start: i64,
    /// Discrete duration `dᵢ ≥ 0`.
    pub duration: i64,
}

impl<E> TimedTuple<E> {
    /// Creates a tuple.
    pub fn new(element: E, start: i64, duration: i64) -> TimedTuple<E> {
        TimedTuple {
            element,
            start,
            duration,
        }
    }

    /// Discrete end time `sᵢ + dᵢ`.
    pub fn end(&self) -> i64 {
        self.start + self.duration
    }

    /// `true` for zero-duration (event) tuples.
    pub fn is_event(&self) -> bool {
        self.duration == 0
    }

    /// The tuple's continuous-time interval under `system`.
    pub fn interval(&self, system: TimeSystem) -> Interval {
        Interval::new(
            system.tick_to_seconds(self.start),
            system.ticks_to_delta(self.duration),
        )
        .expect("duration >= 0")
    }
}

/// A timed stream: ordered tuples over a media type and time system.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedStream<E> {
    media_type: MediaType,
    system: TimeSystem,
    tuples: Vec<TimedTuple<E>>,
}

impl<E: StreamElement> TimedStream<E> {
    /// Creates an empty stream.
    pub fn empty(media_type: MediaType, system: TimeSystem) -> TimedStream<E> {
        TimedStream {
            media_type,
            system,
            tuples: Vec::new(),
        }
    }

    /// Creates a stream from tuples, validating Definition 3's constraints.
    pub fn from_tuples(
        media_type: MediaType,
        system: TimeSystem,
        tuples: Vec<TimedTuple<E>>,
    ) -> Result<TimedStream<E>, ModelError> {
        for (i, t) in tuples.iter().enumerate() {
            if t.duration < 0 {
                return Err(ModelError::NegativeDuration {
                    index: i,
                    duration: t.duration,
                });
            }
            if i > 0 && t.start < tuples[i - 1].start {
                return Err(ModelError::UnorderedStart {
                    index: i,
                    prev_start: tuples[i - 1].start,
                    start: t.start,
                });
            }
        }
        Ok(TimedStream {
            media_type,
            system,
            tuples,
        })
    }

    /// Builds a *continuous* stream (`sᵢ₊₁ = sᵢ + dᵢ`) from elements and
    /// their durations, starting at `start`.
    pub fn continuous_from(
        media_type: MediaType,
        system: TimeSystem,
        start: i64,
        elements: impl IntoIterator<Item = (E, i64)>,
    ) -> Result<TimedStream<E>, ModelError> {
        let mut tuples = Vec::new();
        let mut at = start;
        for (i, (element, duration)) in elements.into_iter().enumerate() {
            if duration < 0 {
                return Err(ModelError::NegativeDuration { index: i, duration });
            }
            tuples.push(TimedTuple::new(element, at, duration));
            at += duration;
        }
        Ok(TimedStream {
            media_type,
            system,
            tuples,
        })
    }

    /// Builds a *constant-frequency* stream: every element lasts one tick.
    pub fn constant_frequency(
        media_type: MediaType,
        system: TimeSystem,
        start: i64,
        elements: impl IntoIterator<Item = E>,
    ) -> TimedStream<E> {
        let tuples = elements
            .into_iter()
            .enumerate()
            .map(|(i, e)| TimedTuple::new(e, start + i as i64, 1))
            .collect();
        TimedStream {
            media_type,
            system,
            tuples,
        }
    }

    /// Appends a tuple, validating ordering against the current tail.
    pub fn push(&mut self, tuple: TimedTuple<E>) -> Result<(), ModelError> {
        if tuple.duration < 0 {
            return Err(ModelError::NegativeDuration {
                index: self.tuples.len(),
                duration: tuple.duration,
            });
        }
        if let Some(last) = self.tuples.last() {
            if tuple.start < last.start {
                return Err(ModelError::UnorderedStart {
                    index: self.tuples.len(),
                    prev_start: last.start,
                    start: tuple.start,
                });
            }
        }
        self.tuples.push(tuple);
        Ok(())
    }

    /// The stream's media type.
    pub fn media_type(&self) -> &MediaType {
        &self.media_type
    }

    /// The stream's discrete time system.
    pub fn system(&self) -> TimeSystem {
        self.system
    }

    /// The tuples, in start order.
    pub fn tuples(&self) -> &[TimedTuple<E>] {
        &self.tuples
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the stream holds no elements.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over the tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, TimedTuple<E>> {
        self.tuples.iter()
    }

    /// The discrete span `[s₁, sₙ + dₙ)` of the stream, if non-empty.
    ///
    /// The end accounts for overlapping tails: it is the max over all
    /// tuple ends, not just the last tuple's.
    pub fn tick_span(&self) -> Option<(i64, i64)> {
        let first = self.tuples.first()?;
        let end = self.tuples.iter().map(TimedTuple::end).max()?;
        Some((first.start, end))
    }

    /// The continuous-time interval covered by the stream.
    pub fn interval(&self) -> Option<Interval> {
        let (s, e) = self.tick_span()?;
        Interval::from_bounds(
            self.system.tick_to_seconds(s),
            self.system.tick_to_seconds(e),
        )
        .ok()
    }

    /// Total continuous duration of the span.
    pub fn duration(&self) -> TimeDelta {
        self.interval()
            .map(|iv| iv.duration())
            .unwrap_or(TimeDelta::ZERO)
    }

    /// Index of the last element whose start is ≤ `tick`, if any — the basic
    /// "which element is playing at time t" lookup.
    pub fn index_at_tick(&self, tick: i64) -> Option<usize> {
        if self.tuples.is_empty() || tick < self.tuples[0].start {
            return None;
        }
        // partition_point: number of tuples with start <= tick.
        let n = self.tuples.partition_point(|t| t.start <= tick);
        Some(n - 1)
    }

    /// The element *active* at `tick`: its start is ≤ `tick` and its span
    /// covers `tick` (events match only exactly).
    pub fn element_at_tick(&self, tick: i64) -> Option<&TimedTuple<E>> {
        let idx = self.index_at_tick(tick)?;
        // Walk back over simultaneous starts / overlapping elements to find
        // one that covers `tick`.
        self.tuples[..=idx].iter().rev().find(|t| {
            if t.is_event() {
                t.start == tick
            } else {
                t.start <= tick && tick < t.end()
            }
        })
    }

    /// The contiguous run of tuples whose *start* lies in `[from, to)`.
    ///
    /// Starts are ordered, so this is a slice. Use [`TimedStream::covering`]
    /// to additionally include an element already active at `from`.
    pub fn window(&self, from: i64, to: i64) -> &[TimedTuple<E>] {
        if from >= to {
            return &[];
        }
        let lo = self.tuples.partition_point(|t| t.start < from);
        let hi = self.tuples.partition_point(|t| t.start < to);
        &self.tuples[lo..hi]
    }

    /// Like [`TimedStream::window`], but extended left to include elements
    /// that start before `from` yet are still active at `from` (straddling
    /// elements). Needed when cutting continuous media mid-element.
    pub fn covering(&self, from: i64, to: i64) -> &[TimedTuple<E>] {
        if from >= to {
            return &[];
        }
        let mut lo = self.tuples.partition_point(|t| t.start < from);
        let hi = self.tuples.partition_point(|t| t.start < to);
        // Walk left over elements whose span still covers `from`.
        while lo > 0 && self.tuples[lo - 1].end() > from {
            lo -= 1;
        }
        &self.tuples[lo..hi]
    }

    /// Aggregate statistics for classification and resource allocation.
    pub fn stats(&self) -> StreamStats {
        let mut stats = StreamStats {
            count: self.tuples.len(),
            ..StreamStats::default()
        };
        if self.tuples.is_empty() {
            return stats;
        }
        let mut token0 = None;
        let mut homogeneous = true;
        let mut continuous = true;
        let mut event_based = true;
        let mut const_duration = true;
        let mut const_size = true;
        let mut const_rate = true;
        let first = &self.tuples[0];
        let d0 = first.duration;
        let z0 = first.element.byte_size();
        // rate r_i = size_i / duration_i compared exactly via cross-multiplication
        let mut prev_end = first.start;
        for (i, t) in self.tuples.iter().enumerate() {
            let size = t.element.byte_size();
            stats.total_bytes += size;
            stats.min_size = stats.min_size.min(size);
            stats.max_size = stats.max_size.max(size);
            let tok = t.element.descriptor_token();
            match token0 {
                None => token0 = Some(tok),
                Some(t0) if t0 != tok => homogeneous = false,
                _ => {}
            }
            if i > 0 && t.start != prev_end {
                continuous = false;
            }
            prev_end = t.end();
            if t.duration != 0 {
                event_based = false;
            }
            if t.duration != d0 {
                const_duration = false;
            }
            if size != z0 {
                const_size = false;
            }
            // size_i / dur_i == size_0 / dur_0  ⇔  size_i * dur_0 == size_0 * dur_i
            if t.duration == 0 || d0 == 0 {
                if t.duration != d0 || size != z0 {
                    const_rate = false;
                }
            } else if (size as u128) * (d0 as u128) != (z0 as u128) * (t.duration as u128) {
                const_rate = false;
            }
        }
        stats.homogeneous = homogeneous;
        stats.continuous = continuous;
        stats.event_based = event_based;
        stats.constant_duration = const_duration;
        stats.constant_size = const_size;
        stats.constant_rate = const_rate;
        stats
    }

    /// Average data rate in bytes/second over the stream span (the paper's
    /// "average data rate" descriptor attribute). `None` for empty or
    /// zero-length streams.
    pub fn average_data_rate(&self) -> Option<Rational> {
        let (s, e) = self.tick_span()?;
        if e == s {
            return None;
        }
        let seconds = self.system.ticks_to_delta(e - s).seconds();
        let total: u64 = self.tuples.iter().map(|t| t.element.byte_size()).sum();
        Some(Rational::from(total as i64) / seconds)
    }

    /// Peak-to-average rate ratio, a measure of data-rate variation for
    /// non-uniform streams. `None` when undefined.
    pub fn rate_variation(&self) -> Option<Rational> {
        let avg = self.average_data_rate()?;
        if avg.is_zero() {
            return None;
        }
        let peak = self
            .tuples
            .iter()
            .filter(|t| t.duration > 0)
            .map(|t| {
                Rational::from(t.element.byte_size() as i64)
                    / self.system.ticks_to_delta(t.duration).seconds()
            })
            .max()?;
        Some(peak / avg)
    }

    /// The gaps (`sᵢ₊₁ > sᵢ + dᵢ`) between consecutive tuples, as discrete
    /// `(from, to)` ranges. Non-continuous streams have at least one gap or
    /// overlap.
    pub fn gaps(&self) -> Vec<(i64, i64)> {
        self.tuples
            .windows(2)
            .filter_map(|w| {
                let end = w[0].end();
                if w[1].start > end {
                    Some((end, w[1].start))
                } else {
                    None
                }
            })
            .collect()
    }

    /// The overlaps (`sᵢ₊₁ < sᵢ + dᵢ`) between consecutive tuples — chords
    /// in the paper's music example.
    pub fn overlaps(&self) -> Vec<(i64, i64)> {
        self.tuples
            .windows(2)
            .filter_map(|w| {
                let end = w[0].end();
                if w[1].start < end {
                    Some((w[1].start, end.min(w[1].end().max(w[1].start))))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Maps the elements through `f`, preserving timing — the shape of every
    /// content-changing derivation.
    pub fn map_elements<F, E2>(&self, mut f: F) -> TimedStream<E2>
    where
        F: FnMut(&TimedTuple<E>) -> E2,
        E2: StreamElement,
        E: Clone,
    {
        TimedStream {
            media_type: self.media_type.clone(),
            system: self.system,
            tuples: self
                .tuples
                .iter()
                .map(|t| TimedTuple::new(f(t), t.start, t.duration))
                .collect(),
        }
    }

    /// Consumes the stream, returning its parts.
    pub fn into_parts(self) -> (MediaType, TimeSystem, Vec<TimedTuple<E>>) {
        (self.media_type, self.system, self.tuples)
    }
}

impl<E: StreamElement> fmt::Display for TimedStream<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "timed stream [{} × {}] over {}, span {:?}",
            self.len(),
            self.media_type,
            self.system,
            self.tick_span()
        )
    }
}

/// Aggregate stream statistics computed in one pass; the raw material for
/// category classification and descriptor population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamStats {
    /// Number of elements.
    pub count: usize,
    /// Sum of element sizes in bytes.
    pub total_bytes: u64,
    /// Smallest element size.
    pub min_size: u64,
    /// Largest element size.
    pub max_size: u64,
    /// All element descriptors equal.
    pub homogeneous: bool,
    /// `sᵢ₊₁ = sᵢ + dᵢ` throughout.
    pub continuous: bool,
    /// All durations zero.
    pub event_based: bool,
    /// All durations equal.
    pub constant_duration: bool,
    /// All sizes equal.
    pub constant_size: bool,
    /// Size/duration ratio constant.
    pub constant_rate: bool,
}

impl Default for StreamStats {
    fn default() -> StreamStats {
        StreamStats {
            count: 0,
            total_bytes: 0,
            min_size: u64::MAX,
            max_size: 0,
            homogeneous: true,
            continuous: true,
            event_based: true,
            constant_duration: true,
            constant_size: true,
            constant_rate: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ElementDescriptor, SizedElement};

    fn uniform_stream(n: usize, size: u64) -> TimedStream<SizedElement> {
        TimedStream::constant_frequency(
            MediaType::pcm_audio(),
            TimeSystem::CD_AUDIO,
            0,
            (0..n).map(|_| SizedElement::new(size)),
        )
    }

    #[test]
    fn definition3_ordering_enforced() {
        let bad = vec![
            TimedTuple::new(SizedElement::new(1), 5, 1),
            TimedTuple::new(SizedElement::new(1), 3, 1),
        ];
        let err = TimedStream::from_tuples(MediaType::pcm_audio(), TimeSystem::CD_AUDIO, bad)
            .unwrap_err();
        assert!(matches!(err, ModelError::UnorderedStart { index: 1, .. }));
    }

    #[test]
    fn definition3_nonnegative_duration_enforced() {
        let bad = vec![TimedTuple::new(SizedElement::new(1), 0, -1)];
        let err = TimedStream::from_tuples(MediaType::pcm_audio(), TimeSystem::CD_AUDIO, bad)
            .unwrap_err();
        assert!(matches!(err, ModelError::NegativeDuration { .. }));
        let mut s = uniform_stream(1, 4);
        assert!(s
            .push(TimedTuple::new(SizedElement::new(4), 0, -2))
            .is_err());
    }

    #[test]
    fn equal_starts_are_allowed() {
        // A chord: two notes starting together (s_{i+1} >= s_i permits equality).
        let tuples = vec![
            TimedTuple::new(SizedElement::new(3), 0, 4),
            TimedTuple::new(SizedElement::new(3), 0, 2),
        ];
        assert!(
            TimedStream::from_tuples(MediaType::music(), TimeSystem::MIDI_PPQ_480, tuples).is_ok()
        );
    }

    #[test]
    fn continuous_builder_chains_starts() {
        let s = TimedStream::continuous_from(
            MediaType::pcm_audio(),
            TimeSystem::CD_AUDIO,
            10,
            [(SizedElement::new(2), 3), (SizedElement::new(2), 5)],
        )
        .unwrap();
        assert_eq!(s.tuples()[0].start, 10);
        assert_eq!(s.tuples()[1].start, 13);
        assert_eq!(s.tick_span(), Some((10, 18)));
        assert!(s.stats().continuous);
    }

    #[test]
    fn span_and_duration() {
        let s = uniform_stream(44100, 4);
        assert_eq!(s.tick_span(), Some((0, 44100)));
        assert_eq!(s.duration(), TimeDelta::from_secs(1));
        assert!(uniform_stream(0, 4).tick_span().is_none());
    }

    #[test]
    fn span_accounts_for_overlapping_tails() {
        // Second element starts later but ends before the first.
        let tuples = vec![
            TimedTuple::new(SizedElement::new(1), 0, 100),
            TimedTuple::new(SizedElement::new(1), 10, 5),
        ];
        let s =
            TimedStream::from_tuples(MediaType::music(), TimeSystem::MIDI_PPQ_480, tuples).unwrap();
        assert_eq!(s.tick_span(), Some((0, 100)));
    }

    #[test]
    fn element_at_tick_continuous() {
        let s = uniform_stream(100, 4);
        assert_eq!(s.element_at_tick(0).unwrap().start, 0);
        assert_eq!(s.element_at_tick(57).unwrap().start, 57);
        assert_eq!(s.element_at_tick(99).unwrap().start, 99);
        assert!(s.element_at_tick(100).is_none());
        assert!(s.element_at_tick(-1).is_none());
    }

    #[test]
    fn element_at_tick_with_gap() {
        let tuples = vec![
            TimedTuple::new(SizedElement::new(1), 0, 10),
            TimedTuple::new(SizedElement::new(1), 20, 10),
        ];
        let s =
            TimedStream::from_tuples(MediaType::music(), TimeSystem::MIDI_PPQ_480, tuples).unwrap();
        assert!(s.element_at_tick(5).is_some());
        assert!(s.element_at_tick(15).is_none()); // inside the gap
        assert!(s.element_at_tick(25).is_some());
        assert_eq!(s.gaps(), vec![(10, 20)]);
    }

    #[test]
    fn event_lookup_exact_only() {
        let tuples = vec![
            TimedTuple::new(SizedElement::new(3), 0, 0),
            TimedTuple::new(SizedElement::new(3), 10, 0),
        ];
        let s =
            TimedStream::from_tuples(MediaType::midi(), TimeSystem::MIDI_PPQ_480, tuples).unwrap();
        assert!(s.element_at_tick(0).is_some());
        assert!(s.element_at_tick(5).is_none());
        assert!(s.element_at_tick(10).is_some());
    }

    #[test]
    fn window_selects_intersecting() {
        let s = uniform_stream(100, 4);
        let w = s.window(10, 20);
        assert_eq!(w.len(), 10);
        assert_eq!(w[0].start, 10);
        assert_eq!(w[9].start, 19);
        assert!(s.window(20, 10).is_empty());
        // An element straddling the boundary is excluded by `window` but
        // included by `covering`.
        let tuples = vec![TimedTuple::new(SizedElement::new(1), 0, 50)];
        let long =
            TimedStream::from_tuples(MediaType::music(), TimeSystem::MIDI_PPQ_480, tuples).unwrap();
        assert!(long.window(10, 20).is_empty());
        assert_eq!(long.covering(10, 20).len(), 1);
    }

    #[test]
    fn average_data_rate_cd_audio() {
        // 44100 samples × 4 bytes over 1 s = 176400 B/s — the paper's
        // 172 kB/s stereo CD figure (k = 1024).
        let s = uniform_stream(44100, 4);
        assert_eq!(s.average_data_rate(), Some(Rational::from(176_400)));
        assert_eq!(
            s.average_data_rate().unwrap() / Rational::from(1024),
            Rational::new(176_400, 1024)
        );
        assert_eq!(s.rate_variation(), Some(Rational::ONE));
    }

    #[test]
    fn rate_variation_detects_peaks() {
        let s = TimedStream::continuous_from(
            MediaType::video("test"),
            TimeSystem::PAL,
            0,
            [(SizedElement::new(100), 1), (SizedElement::new(300), 1)],
        )
        .unwrap();
        // avg = 400 bytes / (2/25 s) = 5000 B/s; peak = 300/(1/25) = 7500.
        assert_eq!(s.rate_variation(), Some(Rational::new(3, 2)));
    }

    #[test]
    fn overlaps_detected() {
        let tuples = vec![
            TimedTuple::new(SizedElement::new(1), 0, 10),
            TimedTuple::new(SizedElement::new(1), 5, 10),
        ];
        let s =
            TimedStream::from_tuples(MediaType::music(), TimeSystem::MIDI_PPQ_480, tuples).unwrap();
        assert_eq!(s.overlaps(), vec![(5, 10)]);
        assert!(s.gaps().is_empty());
        assert!(!s.stats().continuous);
    }

    #[test]
    fn map_elements_preserves_timing() {
        let s = uniform_stream(10, 4);
        let mapped = s.map_elements(|t| SizedElement::new(t.element.byte_size() * 2));
        assert_eq!(mapped.len(), 10);
        assert_eq!(mapped.tuples()[3].start, 3);
        assert_eq!(mapped.tuples()[3].element.byte_size(), 8);
    }

    #[test]
    fn stats_single_pass() {
        let d = ElementDescriptor::from_pairs([("k", 1i64)]);
        let tuples = vec![
            TimedTuple::new(SizedElement::with_descriptor(10, d.clone()), 0, 1),
            TimedTuple::new(SizedElement::new(20), 1, 2),
        ];
        let s = TimedStream::from_tuples(MediaType::adpcm_audio(), TimeSystem::CD_AUDIO, tuples)
            .unwrap();
        let st = s.stats();
        assert_eq!(st.count, 2);
        assert_eq!(st.total_bytes, 30);
        assert_eq!((st.min_size, st.max_size), (10, 20));
        assert!(!st.homogeneous);
        assert!(st.continuous);
        assert!(!st.event_based);
        assert!(!st.constant_duration);
        assert!(!st.constant_size);
        assert!(st.constant_rate); // 10/1 == 20/2
    }
}
