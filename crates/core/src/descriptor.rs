//! Media and element descriptors (paper Definition 1 and the Fig. 2 example).
//!
//! > *"The minimum a database system should know about media objects includes
//! > their type (e.g., image, audio) and encoding attributes that vary from
//! > type to type. We call such information a media descriptor."*
//!
//! A [`MediaDescriptor`] carries the media kind plus an ordered attribute
//! map; [`keys`] lists the well-known attribute names used throughout the
//! reproduction, matching the paper's Fig. 2 descriptors (`frame rate`,
//! `frame width`, `sample size`, `encoding`, …). An [`ElementDescriptor`]
//! describes a single media element in a heterogeneous stream — the paper's
//! example is ADPCM audio whose encoding parameters vary over the sequence.

use crate::{AttrValue, MediaKind, ModelError, QualityFactor};
use std::collections::BTreeMap;
use std::fmt;
use tbm_time::{Rational, TimeDelta};

/// Well-known descriptor attribute keys.
///
/// These mirror the attribute names printed in the paper's Fig. 2 media
/// descriptors.
pub mod keys {
    /// Stream category summary (e.g. `"homogeneous, constant frequency"`).
    pub const CATEGORY: &str = "category";
    /// Descriptive quality factor (see [`crate::QualityFactor`]).
    pub const QUALITY_FACTOR: &str = "quality factor";
    /// Total duration in seconds (rational).
    pub const DURATION: &str = "duration";
    /// Video frame rate in frames/second (rational).
    pub const FRAME_RATE: &str = "frame rate";
    /// Video frame width in pixels.
    pub const FRAME_WIDTH: &str = "frame width";
    /// Video frame height in pixels.
    pub const FRAME_HEIGHT: &str = "frame height";
    /// Bits per pixel of the *source* frames.
    pub const FRAME_DEPTH: &str = "frame depth";
    /// Source color model (`"RGB"`, `"YUV"`, `"CMYK"`, `"grayscale"`).
    pub const COLOR_MODEL: &str = "color model";
    /// Encoding chain description (e.g. `"YUV 8:2:2, JPEG"`).
    pub const ENCODING: &str = "encoding";
    /// Audio sample rate in samples/second.
    pub const SAMPLE_RATE: &str = "sample rate";
    /// Audio sample size in bits.
    pub const SAMPLE_SIZE: &str = "sample size";
    /// Number of audio channels.
    pub const CHANNELS: &str = "number of channels";
    /// Average data rate in bytes/second (rational) — the paper notes
    /// descriptors "should also contain information that helps allocate
    /// resources for playback".
    pub const AVG_DATA_RATE: &str = "average data rate";
    /// Peak-to-average data rate ratio (rational), a measure of rate variation.
    pub const RATE_VARIATION: &str = "data rate variation";
    /// MIDI pulses-per-quarter-note resolution.
    pub const PPQ: &str = "pulses per quarter";
    /// Beats per minute for music media.
    pub const TEMPO: &str = "tempo";
    /// Language tag for audio tracks (enables the paper's §1.2 query
    /// "select a specific sound track" by language).
    pub const LANGUAGE: &str = "language";
}

/// A media descriptor: the media kind plus encoding attributes (Definition 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediaDescriptor {
    kind: MediaKind,
    attrs: BTreeMap<String, AttrValue>,
}

impl MediaDescriptor {
    /// Creates an empty descriptor for a media kind.
    pub fn new(kind: MediaKind) -> MediaDescriptor {
        MediaDescriptor {
            kind,
            attrs: BTreeMap::new(),
        }
    }

    /// The media kind (image, audio, video, …).
    pub fn kind(&self) -> MediaKind {
        self.kind
    }

    /// Sets an attribute, builder style.
    pub fn with(mut self, key: &str, value: impl Into<AttrValue>) -> MediaDescriptor {
        self.attrs.insert(key.to_owned(), value.into());
        self
    }

    /// Sets an attribute in place.
    pub fn set(&mut self, key: &str, value: impl Into<AttrValue>) {
        self.attrs.insert(key.to_owned(), value.into());
    }

    /// Looks up an attribute.
    pub fn get(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.get(key)
    }

    /// Integer attribute accessor.
    pub fn get_int(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(AttrValue::as_int)
    }

    /// Rational attribute accessor (integers coerce).
    pub fn get_rational(&self, key: &str) -> Option<Rational> {
        self.get(key).and_then(AttrValue::as_rational)
    }

    /// Text attribute accessor.
    pub fn get_text(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(AttrValue::as_text)
    }

    /// The descriptor's quality factor, if present and recognized.
    pub fn quality(&self) -> Option<QualityFactor> {
        self.get_text(keys::QUALITY_FACTOR)
            .and_then(QualityFactor::parse)
    }

    /// Sets the quality factor from the typed representation.
    pub fn set_quality(&mut self, q: QualityFactor) {
        self.set(keys::QUALITY_FACTOR, q.name());
    }

    /// The declared total duration, if present.
    pub fn duration(&self) -> Option<TimeDelta> {
        self.get_rational(keys::DURATION)
            .map(TimeDelta::from_seconds)
    }

    /// Iterates attributes in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of attributes present.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// `true` when no attributes are set.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Requires an attribute to be present, with a typed error.
    pub fn require(&self, key: &str) -> Result<&AttrValue, ModelError> {
        self.get(key).ok_or_else(|| ModelError::MissingAttribute {
            key: key.to_owned(),
        })
    }
}

impl fmt::Display for MediaDescriptor {
    /// Prints in the paper's Fig. 2 style:
    ///
    /// ```text
    /// video descriptor = {
    ///   quality factor = VHS quality
    ///   frame rate = 25
    ///   ...
    /// }
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} descriptor = {{", self.kind)?;
        for (k, v) in self.iter() {
            writeln!(f, "  {k} = {v}")?;
        }
        write!(f, "}}")
    }
}

/// An element descriptor: per-element attributes within a stream.
///
/// Homogeneous streams have a constant element descriptor ("element
/// descriptor attributes are subsumed by the media descriptors" — Fig. 2
/// discussion); heterogeneous streams vary. Equality of element descriptors
/// is what the homogeneity classification compares, so this type is cheap to
/// compare and hash.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ElementDescriptor {
    attrs: Vec<(String, AttrValue)>, // sorted by key
}

impl ElementDescriptor {
    /// The empty element descriptor (used by fully homogeneous media).
    pub fn empty() -> ElementDescriptor {
        ElementDescriptor::default()
    }

    /// Builds a descriptor from key/value pairs (order-insensitive).
    pub fn from_pairs<I, K, V>(pairs: I) -> ElementDescriptor
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<AttrValue>,
    {
        let mut attrs: Vec<(String, AttrValue)> = pairs
            .into_iter()
            .map(|(k, v)| (k.into(), v.into()))
            .collect();
        attrs.sort_by(|a, b| a.0.cmp(&b.0));
        attrs.dedup_by(|a, b| a.0 == b.0);
        ElementDescriptor { attrs }
    }

    /// Looks up an attribute by key.
    pub fn get(&self, key: &str) -> Option<&AttrValue> {
        self.attrs
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| &self.attrs[i].1)
    }

    /// Iterates attributes in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// `true` when the descriptor carries no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// A stable 64-bit fingerprint; equal descriptors have equal tokens.
    ///
    /// Classification over long streams (a second of CD audio is 44 100
    /// elements) compares tokens instead of full descriptors.
    pub fn token(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.attrs.hash(&mut h);
        h.finish()
    }
}

impl fmt::Display for ElementDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AudioQuality, VideoQuality};

    /// Rebuilds the paper's Fig. 2 `video1` descriptor.
    fn fig2_video_descriptor() -> MediaDescriptor {
        let mut d = MediaDescriptor::new(MediaKind::Video)
            .with(keys::CATEGORY, "homogeneous, constant frequency")
            .with(keys::DURATION, Rational::from(600))
            .with(keys::FRAME_RATE, 25)
            .with(keys::FRAME_WIDTH, 640)
            .with(keys::FRAME_HEIGHT, 480)
            .with(keys::FRAME_DEPTH, 24)
            .with(keys::COLOR_MODEL, "RGB")
            .with(keys::ENCODING, "YUV 8:2:2, JPEG");
        d.set_quality(QualityFactor::Video(VideoQuality::Vhs));
        d
    }

    #[test]
    fn fig2_video_descriptor_attributes() {
        let d = fig2_video_descriptor();
        assert_eq!(d.kind(), MediaKind::Video);
        assert_eq!(d.get_int(keys::FRAME_WIDTH), Some(640));
        assert_eq!(d.get_int(keys::FRAME_HEIGHT), Some(480));
        assert_eq!(d.get_rational(keys::FRAME_RATE), Some(Rational::from(25)));
        assert_eq!(d.get_text(keys::COLOR_MODEL), Some("RGB"));
        assert_eq!(d.quality(), Some(QualityFactor::Video(VideoQuality::Vhs)));
        assert_eq!(d.duration(), Some(TimeDelta::from_secs(600)));
    }

    #[test]
    fn fig2_audio_descriptor_attributes() {
        let mut d = MediaDescriptor::new(MediaKind::Audio)
            .with(keys::CATEGORY, "homogeneous, uniform")
            .with(keys::DURATION, Rational::from(600))
            .with(keys::SAMPLE_RATE, 44100)
            .with(keys::SAMPLE_SIZE, 16)
            .with(keys::CHANNELS, 2)
            .with(keys::ENCODING, "PCM");
        d.set_quality(QualityFactor::Audio(AudioQuality::Cd));
        assert_eq!(d.get_int(keys::SAMPLE_RATE), Some(44100));
        assert_eq!(d.get_int(keys::CHANNELS), Some(2));
        assert_eq!(d.quality(), Some(QualityFactor::Audio(AudioQuality::Cd)));
    }

    #[test]
    fn display_matches_paper_layout() {
        let d = MediaDescriptor::new(MediaKind::Audio)
            .with(keys::SAMPLE_RATE, 44100)
            .with(keys::ENCODING, "PCM");
        let s = d.to_string();
        assert!(s.starts_with("audio descriptor = {"));
        assert!(s.contains("  sample rate = 44100"));
        assert!(s.contains("  encoding = PCM"));
        assert!(s.ends_with('}'));
    }

    #[test]
    fn require_reports_missing() {
        let d = MediaDescriptor::new(MediaKind::Video);
        assert!(matches!(
            d.require(keys::FRAME_RATE),
            Err(ModelError::MissingAttribute { .. })
        ));
    }

    #[test]
    fn element_descriptor_order_insensitive_equality() {
        let a = ElementDescriptor::from_pairs([("step", AttrValue::from(4)), ("pred", 7.into())]);
        let b = ElementDescriptor::from_pairs([("pred", AttrValue::from(7)), ("step", 4.into())]);
        assert_eq!(a, b);
        assert_eq!(a.token(), b.token());
        assert_eq!(a.get("step"), Some(&AttrValue::Int(4)));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn element_descriptor_tokens_differ() {
        let a = ElementDescriptor::from_pairs([("step", 4i64)]);
        let b = ElementDescriptor::from_pairs([("step", 5i64)]);
        assert_ne!(a, b);
        assert_ne!(a.token(), b.token());
        assert!(ElementDescriptor::empty().is_empty());
    }

    #[test]
    fn element_descriptor_display() {
        let a = ElementDescriptor::from_pairs([("b", 2i64), ("a", 1i64)]);
        assert_eq!(a.to_string(), "{a=1, b=2}");
    }

    #[test]
    fn duplicate_keys_deduplicate() {
        let a = ElementDescriptor::from_pairs([("k", 1i64), ("k", 2i64)]);
        assert_eq!(a.iter().count(), 1);
    }
}
