//! Typed attribute values for media and element descriptors.

use std::fmt;
use tbm_time::Rational;

/// A value held by a descriptor attribute.
///
/// The paper's example descriptors mix integers (`frame width = 640`),
/// rationals (`frame rate = 25`, but 30000/1001 for NTSC), text
/// (`color model = RGB`), and qualities (`quality factor = "VHS quality"`).
/// Quality factors are stored as text here; the typed view lives in
/// [`crate::QualityFactor`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AttrValue {
    /// A signed integer attribute (widths, sample sizes, channel counts…).
    Int(i64),
    /// An exact rational attribute (rates, ratios).
    Rational(Rational),
    /// A textual attribute (encodings, color models, quality names).
    Text(String),
    /// A boolean flag.
    Bool(bool),
}

impl AttrValue {
    /// The integer value, if this is an [`AttrValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The rational value; integers coerce losslessly.
    pub fn as_rational(&self) -> Option<Rational> {
        match self {
            AttrValue::Rational(v) => Some(*v),
            AttrValue::Int(v) => Some(Rational::from(*v)),
            _ => None,
        }
    }

    /// The text value, if this is an [`AttrValue::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttrValue::Text(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean value, if this is an [`AttrValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The name of this value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            AttrValue::Int(_) => "int",
            AttrValue::Rational(_) => "rational",
            AttrValue::Text(_) => "text",
            AttrValue::Bool(_) => "bool",
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Rational(v) => write!(f, "{v}"),
            AttrValue::Text(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> AttrValue {
        AttrValue::Int(v)
    }
}

impl From<i32> for AttrValue {
    fn from(v: i32) -> AttrValue {
        AttrValue::Int(v as i64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> AttrValue {
        AttrValue::Int(v as i64)
    }
}

impl From<Rational> for AttrValue {
    fn from(v: Rational) -> AttrValue {
        AttrValue::Rational(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> AttrValue {
        AttrValue::Text(v.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Text(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> AttrValue {
        AttrValue::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(AttrValue::from(640).as_int(), Some(640));
        assert_eq!(
            AttrValue::from(640).as_rational(),
            Some(Rational::from(640))
        );
        assert_eq!(AttrValue::from("RGB").as_text(), Some("RGB"));
        assert_eq!(AttrValue::from(true).as_bool(), Some(true));
        assert_eq!(AttrValue::from("RGB").as_int(), None);
        assert_eq!(AttrValue::from(1).as_text(), None);
    }

    #[test]
    fn rational_attr() {
        let ntsc = Rational::new(30000, 1001);
        assert_eq!(AttrValue::from(ntsc).as_rational(), Some(ntsc));
        assert_eq!(AttrValue::from(ntsc).as_int(), None);
    }

    #[test]
    fn display_and_type_names() {
        assert_eq!(AttrValue::from(25).to_string(), "25");
        assert_eq!(AttrValue::from("YUV").to_string(), "YUV");
        assert_eq!(AttrValue::from(25).type_name(), "int");
        assert_eq!(AttrValue::from("x").type_name(), "text");
        assert_eq!(AttrValue::from(false).type_name(), "bool");
        assert_eq!(AttrValue::from(Rational::new(1, 2)).type_name(), "rational");
    }
}
