//! Identifier newtypes shared across the model layers.
//!
//! The paper's instance diagram (Fig. 4a) relates BLOBs, media objects,
//! derivation objects and multimedia objects. These relationships are stored
//! by id; each layer gets its own newtype so a BLOB id can never be passed
//! where a media-object id is expected.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw id value.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw id value.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// Identifies a BLOB (Definition 4) in a blob store.
    BlobId,
    "blob:"
);
id_type!(
    /// Identifies an interpretation (Definition 5) of a BLOB.
    InterpretationId,
    "interp:"
);
id_type!(
    /// Identifies a media object — derived or non-derived.
    MediaObjectId,
    "media:"
);
id_type!(
    /// Identifies a derivation object (Definition 6).
    DerivationId,
    "deriv:"
);
id_type!(
    /// Identifies a multimedia object (Definition 7).
    MultimediaObjectId,
    "mm:"
);
id_type!(
    /// Identifies one client playback session at the serving layer.
    SessionId,
    "session:"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_and_display() {
        let b = BlobId::new(7);
        assert_eq!(b.raw(), 7);
        assert_eq!(b.to_string(), "blob:7");
        assert_eq!(BlobId::from(7), b);
        assert_ne!(BlobId::new(1), BlobId::new(2));
        assert_eq!(MediaObjectId::new(3).to_string(), "media:3");
        assert_eq!(DerivationId::new(4).to_string(), "deriv:4");
        assert_eq!(MultimediaObjectId::new(5).to_string(), "mm:5");
        assert_eq!(InterpretationId::new(6).to_string(), "interp:6");
        assert_eq!(SessionId::new(8).to_string(), "session:8");
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(BlobId::new(1) < BlobId::new(2));
    }
}
