//! Error type for the data-model layer.

use std::fmt;

/// Errors raised while constructing or validating model objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A timed tuple violated Definition 3's ordering constraint
    /// (`sᵢ₊₁ ≥ sᵢ`).
    UnorderedStart {
        /// Index of the offending tuple.
        index: usize,
        /// Previous tuple's start.
        prev_start: i64,
        /// Offending start.
        start: i64,
    },
    /// A timed tuple had a negative duration (Definition 3 requires `dᵢ ≥ 0`).
    NegativeDuration {
        /// Index of the offending tuple.
        index: usize,
        /// The negative duration supplied.
        duration: i64,
    },
    /// A descriptor is missing an attribute its media type requires.
    MissingAttribute {
        /// The required attribute key.
        key: String,
    },
    /// A descriptor attribute has the wrong type.
    WrongAttributeType {
        /// The attribute key.
        key: String,
        /// The expected type name.
        expected: &'static str,
    },
    /// A descriptor attribute holds a value outside its specified range.
    AttributeOutOfRange {
        /// The attribute key.
        key: String,
        /// Human-readable description of the violated constraint.
        constraint: String,
    },
    /// The stream's media type requires a category constraint the stream
    /// does not satisfy (e.g. CD audio must be uniform).
    CategoryViolation {
        /// The required category's name.
        required: &'static str,
    },
    /// The media kind of a descriptor does not match the media type.
    KindMismatch {
        /// Kind declared by the media type.
        expected: String,
        /// Kind found in the descriptor.
        found: String,
    },
    /// An operation received an empty stream where elements are required.
    EmptyStream,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnorderedStart {
                index,
                prev_start,
                start,
            } => write!(
                f,
                "tuple {index} starts at {start}, before previous start {prev_start} \
                 (Definition 3 requires s(i+1) >= s(i))"
            ),
            ModelError::NegativeDuration { index, duration } => write!(
                f,
                "tuple {index} has negative duration {duration} (Definition 3 requires d >= 0)"
            ),
            ModelError::MissingAttribute { key } => {
                write!(f, "descriptor is missing required attribute `{key}`")
            }
            ModelError::WrongAttributeType { key, expected } => {
                write!(f, "descriptor attribute `{key}` must be of type {expected}")
            }
            ModelError::AttributeOutOfRange { key, constraint } => {
                write!(
                    f,
                    "descriptor attribute `{key}` violates constraint: {constraint}"
                )
            }
            ModelError::CategoryViolation { required } => {
                write!(f, "stream violates required category `{required}`")
            }
            ModelError::KindMismatch { expected, found } => {
                write!(
                    f,
                    "descriptor kind `{found}` does not match media type kind `{expected}`"
                )
            }
            ModelError::EmptyStream => write!(f, "operation requires a non-empty stream"),
        }
    }
}

impl std::error::Error for ModelError {}
