//! CRC32 (IEEE 802.3) checksums.
//!
//! The paper argues that interpretation data "is crucial and the task should
//! not be left to applications" — a BLOB whose interpretation is lost is
//! "meaningless data". The same holds for the bytes themselves: a silently
//! flipped bit in a BLOB or in the catalog yields garbage frames with no
//! diagnosis. Every integrity check in the workspace (per-element checksums
//! in `tbm-interp`, the catalog footer in `tbm-db`) uses this one CRC32 so
//! the values are comparable across layers.

/// A streaming CRC32 (IEEE polynomial, reflected, as used by zip/png).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

/// Lookup table for the reflected IEEE polynomial `0xEDB88320`.
const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

impl Crc32 {
    /// A fresh checksum state.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

/// The CRC32 of `bytes` in one call.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"interpretation of time-based media";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 1024];
        data[500] = 0x55;
        let before = crc32(&data);
        data[700] ^= 0x01;
        assert_ne!(before, crc32(&data));
    }
}
