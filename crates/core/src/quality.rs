//! Descriptive quality factors (paper §2.2, "Quality Factors").
//!
//! > *"These parameters should not be visible at the data modeling level …
//! > video quality (and the same applies for audio quality) should be
//! > specified via descriptive quality factors. For example a particular
//! > video-valued attribute might be of 'broadcast quality' or 'VHS
//! > quality'."*
//!
//! [`QualityFactor`] is the data-model-level notion; the codec layer
//! (`tbm-codec`) maps each factor to concrete low-level encoding parameters
//! (quantizer scales, target bits-per-pixel, sample rates) so those
//! parameters stay invisible to the schema, exactly as the paper demands.

use std::cmp::Ordering;
use std::fmt;

/// Descriptive video quality levels, ordered from worst to best.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VideoQuality {
    /// Thumbnail / scrub preview quality.
    Preview,
    /// VHS quality — the paper's running example (≈0.5 bits/pixel after
    /// compression in the Fig. 2 walk-through).
    Vhs,
    /// Near-broadcast quality (the paper's description of MPEG II).
    Broadcast,
    /// Studio / production quality (effectively lossless).
    Studio,
}

/// Descriptive audio quality levels, ordered from worst to best.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AudioQuality {
    /// Telephone quality (8 kHz, single channel).
    Phone,
    /// AM-radio quality (22.05 kHz).
    AmRadio,
    /// CD quality — 44.1 kHz, 16-bit, stereo (the paper's CD audio media type).
    Cd,
    /// Studio quality (48 kHz or better).
    Studio,
}

/// A quality factor for a media-valued attribute: either a video or an audio
/// quality level.
///
/// Quality factors order within their own medium; comparing a video factor
/// with an audio factor yields no ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QualityFactor {
    /// A video quality level.
    Video(VideoQuality),
    /// An audio quality level.
    Audio(AudioQuality),
}

impl QualityFactor {
    /// The paper's canonical descriptive name, e.g. `"VHS quality"`.
    pub fn name(self) -> &'static str {
        match self {
            QualityFactor::Video(VideoQuality::Preview) => "preview quality",
            QualityFactor::Video(VideoQuality::Vhs) => "VHS quality",
            QualityFactor::Video(VideoQuality::Broadcast) => "broadcast quality",
            QualityFactor::Video(VideoQuality::Studio) => "studio quality",
            QualityFactor::Audio(AudioQuality::Phone) => "phone quality",
            QualityFactor::Audio(AudioQuality::AmRadio) => "AM quality",
            QualityFactor::Audio(AudioQuality::Cd) => "CD quality",
            QualityFactor::Audio(AudioQuality::Studio) => "studio audio quality",
        }
    }

    /// Parses a canonical descriptive name back into a factor.
    pub fn parse(name: &str) -> Option<QualityFactor> {
        let all = [
            QualityFactor::Video(VideoQuality::Preview),
            QualityFactor::Video(VideoQuality::Vhs),
            QualityFactor::Video(VideoQuality::Broadcast),
            QualityFactor::Video(VideoQuality::Studio),
            QualityFactor::Audio(AudioQuality::Phone),
            QualityFactor::Audio(AudioQuality::AmRadio),
            QualityFactor::Audio(AudioQuality::Cd),
            QualityFactor::Audio(AudioQuality::Studio),
        ];
        all.into_iter().find(|q| q.name() == name)
    }

    /// `true` for video quality factors.
    pub fn is_video(self) -> bool {
        matches!(self, QualityFactor::Video(_))
    }

    /// `true` for audio quality factors.
    pub fn is_audio(self) -> bool {
        matches!(self, QualityFactor::Audio(_))
    }
}

impl PartialOrd for QualityFactor {
    /// Orders within a medium; cross-media comparisons return `None`.
    fn partial_cmp(&self, other: &QualityFactor) -> Option<Ordering> {
        match (self, other) {
            (QualityFactor::Video(a), QualityFactor::Video(b)) => a.partial_cmp(b),
            (QualityFactor::Audio(a), QualityFactor::Audio(b)) => a.partial_cmp(b),
            _ => None,
        }
    }
}

impl fmt::Display for QualityFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<VideoQuality> for QualityFactor {
    fn from(q: VideoQuality) -> QualityFactor {
        QualityFactor::Video(q)
    }
}

impl From<AudioQuality> for QualityFactor {
    fn from(q: AudioQuality) -> QualityFactor {
        QualityFactor::Audio(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_names() {
        assert_eq!(
            QualityFactor::Video(VideoQuality::Vhs).name(),
            "VHS quality"
        );
        assert_eq!(QualityFactor::Audio(AudioQuality::Cd).name(), "CD quality");
        assert_eq!(
            QualityFactor::Video(VideoQuality::Broadcast).name(),
            "broadcast quality"
        );
    }

    #[test]
    fn parse_roundtrip() {
        for q in [
            QualityFactor::Video(VideoQuality::Preview),
            QualityFactor::Video(VideoQuality::Vhs),
            QualityFactor::Video(VideoQuality::Broadcast),
            QualityFactor::Video(VideoQuality::Studio),
            QualityFactor::Audio(AudioQuality::Phone),
            QualityFactor::Audio(AudioQuality::AmRadio),
            QualityFactor::Audio(AudioQuality::Cd),
            QualityFactor::Audio(AudioQuality::Studio),
        ] {
            assert_eq!(QualityFactor::parse(q.name()), Some(q));
        }
        assert_eq!(QualityFactor::parse("4K quality"), None);
    }

    #[test]
    fn ordering_within_medium() {
        assert!(VideoQuality::Vhs < VideoQuality::Broadcast);
        assert!(AudioQuality::Phone < AudioQuality::Cd);
        let v: QualityFactor = VideoQuality::Vhs.into();
        let b: QualityFactor = VideoQuality::Broadcast.into();
        assert_eq!(v.partial_cmp(&b), Some(Ordering::Less));
    }

    #[test]
    fn cross_media_not_ordered() {
        let v: QualityFactor = VideoQuality::Studio.into();
        let a: QualityFactor = AudioQuality::Phone.into();
        assert_eq!(v.partial_cmp(&a), None);
        assert!(v.is_video() && !v.is_audio());
        assert!(a.is_audio());
    }
}
