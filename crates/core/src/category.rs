//! The stream-category taxonomy of the paper's Figure 1.
//!
//! §3.3 derives eight categories of timed streams from constraints on the
//! tuples `⟨eᵢ, sᵢ, dᵢ⟩`. [`classify`] computes, in one pass, which
//! categories a concrete stream inhabits; [`CategoryReport`] answers
//! membership queries and renders the taxonomy line the paper prints in
//! media descriptors (`category = homogeneous, constant frequency`).

use crate::{StreamElement, StreamStats, TimedStream};
use std::fmt;

/// One of the eight stream categories of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamCategory {
    /// Element descriptors are constant (e.g. CD audio).
    Homogeneous,
    /// Element descriptors vary (e.g. ADPCM with varying parameters).
    Heterogeneous,
    /// `sᵢ₊₁ = sᵢ + dᵢ` — a unique element for every time value in the span
    /// (digital audio and video).
    Continuous,
    /// Gaps and/or overlaps among elements (music, animation).
    NonContinuous,
    /// All elements are duration-less events (`dᵢ = 0`), e.g. MIDI.
    EventBased,
    /// Continuous with constant element duration (fixed-frame-rate video).
    ConstantFrequency,
    /// Continuous with constant size/duration ratio.
    ConstantDataRate,
    /// Continuous with constant size *and* duration (raw audio/video).
    Uniform,
}

impl StreamCategory {
    /// All categories in the order Figure 1 lists them.
    pub const ALL: [StreamCategory; 8] = [
        StreamCategory::Homogeneous,
        StreamCategory::Heterogeneous,
        StreamCategory::Continuous,
        StreamCategory::NonContinuous,
        StreamCategory::EventBased,
        StreamCategory::ConstantFrequency,
        StreamCategory::ConstantDataRate,
        StreamCategory::Uniform,
    ];

    /// The category's name as printed in Figure 1.
    pub fn name(self) -> &'static str {
        match self {
            StreamCategory::Homogeneous => "homogeneous",
            StreamCategory::Heterogeneous => "heterogeneous",
            StreamCategory::Continuous => "continuous",
            StreamCategory::NonContinuous => "non-continuous",
            StreamCategory::EventBased => "event-based",
            StreamCategory::ConstantFrequency => "constant frequency",
            StreamCategory::ConstantDataRate => "constant data rate",
            StreamCategory::Uniform => "uniform",
        }
    }
}

impl fmt::Display for StreamCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The categories a stream satisfies, plus the stats they were derived from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoryReport {
    stats: StreamStats,
}

impl CategoryReport {
    /// Builds a report from precomputed stats.
    pub fn from_stats(stats: StreamStats) -> CategoryReport {
        CategoryReport { stats }
    }

    /// The underlying single-pass statistics.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Whether the stream satisfies `category`.
    ///
    /// Vacuous truths are resolved in favour of the *stronger* category:
    /// empty and single-element streams are homogeneous, continuous,
    /// constant-frequency etc., matching the universally-quantified
    /// definitions in §3.3.
    pub fn satisfies(&self, category: StreamCategory) -> bool {
        let s = &self.stats;
        match category {
            StreamCategory::Homogeneous => s.homogeneous,
            StreamCategory::Heterogeneous => !s.homogeneous,
            StreamCategory::Continuous => s.continuous,
            StreamCategory::NonContinuous => !s.continuous,
            StreamCategory::EventBased => s.event_based && s.count > 0,
            StreamCategory::ConstantFrequency => {
                s.continuous && s.constant_duration && !s.event_based
            }
            StreamCategory::ConstantDataRate => s.continuous && s.constant_rate && !s.event_based,
            StreamCategory::Uniform => {
                s.continuous && s.constant_duration && s.constant_size && !s.event_based
            }
        }
    }

    /// All satisfied categories, in Figure 1 order.
    pub fn categories(&self) -> Vec<StreamCategory> {
        StreamCategory::ALL
            .into_iter()
            .filter(|c| self.satisfies(*c))
            .collect()
    }

    /// The descriptor line: the *most informative* categories, in the style
    /// of the paper's `category = homogeneous, constant frequency` /
    /// `category = homogeneous, uniform`.
    pub fn descriptor_line(&self) -> String {
        let mut parts: Vec<&str> = Vec::new();
        parts.push(if self.stats.homogeneous {
            "homogeneous"
        } else {
            "heterogeneous"
        });
        if self.satisfies(StreamCategory::EventBased) {
            parts.push("event-based");
        } else if self.satisfies(StreamCategory::Uniform) {
            parts.push("uniform");
        } else if self.satisfies(StreamCategory::ConstantDataRate)
            && self.satisfies(StreamCategory::ConstantFrequency)
        {
            parts.push("constant frequency");
            parts.push("constant data rate");
        } else if self.satisfies(StreamCategory::ConstantFrequency) {
            parts.push("constant frequency");
        } else if self.satisfies(StreamCategory::ConstantDataRate) {
            parts.push("constant data rate");
        } else if self.satisfies(StreamCategory::Continuous) {
            parts.push("continuous");
        } else {
            parts.push("non-continuous");
        }
        parts.join(", ")
    }
}

impl fmt::Display for CategoryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.descriptor_line())
    }
}

/// Classifies a stream into the Figure 1 categories.
pub fn classify<E: StreamElement>(stream: &TimedStream<E>) -> CategoryReport {
    CategoryReport::from_stats(stream.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ElementDescriptor, MediaType, SizedElement, TimedTuple};
    use tbm_time::TimeSystem;

    fn stream(tuples: Vec<TimedTuple<SizedElement>>) -> TimedStream<SizedElement> {
        TimedStream::from_tuples(MediaType::music(), TimeSystem::MIDI_PPQ_480, tuples).unwrap()
    }

    /// Figure 1, row "uniform": CD audio — constant size and duration.
    #[test]
    fn cd_audio_is_uniform() {
        let s = TimedStream::constant_frequency(
            MediaType::cd_audio(),
            TimeSystem::CD_AUDIO,
            0,
            (0..1000).map(|_| SizedElement::new(4)),
        );
        let r = classify(&s);
        assert!(r.satisfies(StreamCategory::Homogeneous));
        assert!(r.satisfies(StreamCategory::Continuous));
        assert!(r.satisfies(StreamCategory::ConstantFrequency));
        assert!(r.satisfies(StreamCategory::ConstantDataRate));
        assert!(r.satisfies(StreamCategory::Uniform));
        assert!(!r.satisfies(StreamCategory::EventBased));
        assert!(!r.satisfies(StreamCategory::NonContinuous));
        assert_eq!(r.descriptor_line(), "homogeneous, uniform");
    }

    /// Figure 1, row "constant frequency": compressed video — fixed duration,
    /// varying sizes.
    #[test]
    fn compressed_video_is_constant_frequency_not_uniform() {
        let sizes = [900u64, 1100, 950, 1050];
        let s = TimedStream::constant_frequency(
            MediaType::video("JPEG video"),
            TimeSystem::PAL,
            0,
            sizes.iter().map(|&z| SizedElement::new(z)),
        );
        let r = classify(&s);
        assert!(r.satisfies(StreamCategory::ConstantFrequency));
        assert!(!r.satisfies(StreamCategory::Uniform));
        assert!(!r.satisfies(StreamCategory::ConstantDataRate));
        assert_eq!(r.descriptor_line(), "homogeneous, constant frequency");
    }

    /// Figure 1, row "constant data rate": sizes proportional to durations.
    #[test]
    fn proportional_sizes_are_constant_data_rate() {
        let s = TimedStream::continuous_from(
            MediaType::pcm_audio(),
            TimeSystem::CD_AUDIO,
            0,
            [
                (SizedElement::new(100), 1),
                (SizedElement::new(200), 2),
                (SizedElement::new(300), 3),
            ],
        )
        .unwrap();
        let r = classify(&s);
        assert!(r.satisfies(StreamCategory::ConstantDataRate));
        assert!(!r.satisfies(StreamCategory::ConstantFrequency));
        assert!(!r.satisfies(StreamCategory::Uniform));
        assert_eq!(r.descriptor_line(), "homogeneous, constant data rate");
    }

    /// Figure 1, row "heterogeneous": element descriptors vary (ADPCM).
    #[test]
    fn varying_descriptors_are_heterogeneous() {
        let d1 = ElementDescriptor::from_pairs([("step", 1i64)]);
        let d2 = ElementDescriptor::from_pairs([("step", 2i64)]);
        let s = stream(vec![
            TimedTuple::new(SizedElement::with_descriptor(8, d1), 0, 1),
            TimedTuple::new(SizedElement::with_descriptor(8, d2), 1, 1),
        ]);
        let r = classify(&s);
        assert!(r.satisfies(StreamCategory::Heterogeneous));
        assert!(!r.satisfies(StreamCategory::Homogeneous));
        assert!(r.descriptor_line().starts_with("heterogeneous"));
    }

    /// Figure 1, row "non-continuous": music with rests (gaps) and chords
    /// (overlaps).
    #[test]
    fn gaps_and_overlaps_are_non_continuous() {
        let with_gap = stream(vec![
            TimedTuple::new(SizedElement::new(3), 0, 10),
            TimedTuple::new(SizedElement::new(3), 20, 10),
        ]);
        assert!(classify(&with_gap).satisfies(StreamCategory::NonContinuous));

        let with_chord = stream(vec![
            TimedTuple::new(SizedElement::new(3), 0, 10),
            TimedTuple::new(SizedElement::new(3), 0, 10),
        ]);
        assert!(classify(&with_chord).satisfies(StreamCategory::NonContinuous));
        assert_eq!(
            classify(&with_chord).descriptor_line(),
            "homogeneous, non-continuous"
        );
    }

    /// Figure 1, row "event-based": MIDI events with `dᵢ = 0`.
    #[test]
    fn midi_events_are_event_based() {
        let s = stream(vec![
            TimedTuple::new(SizedElement::new(3), 0, 0),
            TimedTuple::new(SizedElement::new(3), 240, 0),
            TimedTuple::new(SizedElement::new(3), 480, 0),
        ]);
        let r = classify(&s);
        assert!(r.satisfies(StreamCategory::EventBased));
        // Event-based is a special case of non-continuous here (gaps).
        assert!(r.satisfies(StreamCategory::NonContinuous));
        assert!(!r.satisfies(StreamCategory::ConstantFrequency));
        assert!(!r.satisfies(StreamCategory::Uniform));
        assert_eq!(r.descriptor_line(), "homogeneous, event-based");
    }

    #[test]
    fn empty_stream_vacuously_strong() {
        let s = TimedStream::<SizedElement>::empty(MediaType::music(), TimeSystem::MIDI_PPQ_480);
        let r = classify(&s);
        assert!(r.satisfies(StreamCategory::Homogeneous));
        assert!(r.satisfies(StreamCategory::Continuous));
        assert!(!r.satisfies(StreamCategory::EventBased)); // requires elements
    }

    #[test]
    fn uniform_implies_the_weaker_categories() {
        let s = TimedStream::constant_frequency(
            MediaType::cd_audio(),
            TimeSystem::CD_AUDIO,
            0,
            (0..10).map(|_| SizedElement::new(4)),
        );
        let r = classify(&s);
        for c in [
            StreamCategory::Continuous,
            StreamCategory::ConstantFrequency,
            StreamCategory::ConstantDataRate,
            StreamCategory::Uniform,
        ] {
            assert!(r.satisfies(c), "uniform stream should satisfy {c}");
        }
    }

    #[test]
    fn category_names_match_figure_1() {
        let names: Vec<_> = StreamCategory::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "homogeneous",
                "heterogeneous",
                "continuous",
                "non-continuous",
                "event-based",
                "constant frequency",
                "constant data rate",
                "uniform",
            ]
        );
    }
}
