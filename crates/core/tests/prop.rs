//! Property tests on timed-stream invariants and the category taxonomy.

use proptest::prelude::*;
use tbm_core::{
    classify, ElementDescriptor, MediaType, SizedElement, StreamCategory, TimedStream, TimedTuple,
};
use tbm_time::TimeSystem;

/// Random valid tuple lists: start-ordered, non-negative durations.
fn tuples() -> impl Strategy<Value = Vec<TimedTuple<SizedElement>>> {
    prop::collection::vec((0i64..50, 0i64..8, 1u64..100, 0u8..3), 0..60).prop_map(|raw| {
        let mut at = 0i64;
        raw.into_iter()
            .map(|(gap, dur, size, tok)| {
                at += gap;
                let desc = if tok == 0 {
                    ElementDescriptor::empty()
                } else {
                    ElementDescriptor::from_pairs([("v", tok as i64)])
                };
                TimedTuple::new(SizedElement::with_descriptor(size, desc), at, dur)
            })
            .collect()
    })
}

fn stream(tuples: Vec<TimedTuple<SizedElement>>) -> TimedStream<SizedElement> {
    TimedStream::from_tuples(MediaType::music(), TimeSystem::MIDI_PPQ_480, tuples)
        .expect("generated tuples are valid")
}

proptest! {
    /// Category implications of Figure 1: uniform ⟹ constant frequency ∧
    /// constant data rate ⟹ continuous; event-based ⟹ not uniform (unless
    /// degenerate); homogeneous xor heterogeneous.
    #[test]
    fn category_implications(ts in tuples()) {
        let s = stream(ts);
        let r = classify(&s);
        let sat = |c| r.satisfies(c);
        // Exactly one of homogeneous/heterogeneous.
        prop_assert!(sat(StreamCategory::Homogeneous) ^ sat(StreamCategory::Heterogeneous));
        // Exactly one of continuous/non-continuous.
        prop_assert!(sat(StreamCategory::Continuous) ^ sat(StreamCategory::NonContinuous));
        if sat(StreamCategory::Uniform) {
            prop_assert!(sat(StreamCategory::ConstantFrequency));
            prop_assert!(sat(StreamCategory::ConstantDataRate));
        }
        if sat(StreamCategory::ConstantFrequency) || sat(StreamCategory::ConstantDataRate) {
            prop_assert!(sat(StreamCategory::Continuous));
        }
        if sat(StreamCategory::EventBased) {
            prop_assert!(!sat(StreamCategory::ConstantFrequency));
            prop_assert!(!sat(StreamCategory::Uniform));
        }
    }

    /// The descriptor line always names the homogeneity side and one
    /// temporal category.
    #[test]
    fn descriptor_line_is_well_formed(ts in tuples()) {
        let s = stream(ts);
        let line = classify(&s).descriptor_line();
        prop_assert!(line.starts_with("homogeneous") || line.starts_with("heterogeneous"));
        prop_assert!(line.contains(", "));
    }

    /// `element_at_tick` agrees with a brute-force scan everywhere in and
    /// around the span.
    #[test]
    fn lookup_agrees_with_scan(ts in tuples(), probe in -5i64..600) {
        let s = stream(ts);
        let by_index = s.element_at_tick(probe).map(|t| (t.start, t.duration));
        let by_scan = s
            .iter()
            .rev()
            .find(|t| {
                if t.is_event() {
                    t.start == probe
                } else {
                    t.start <= probe && probe < t.end()
                }
            })
            .map(|t| (t.start, t.duration));
        prop_assert_eq!(by_index, by_scan);
    }

    /// `window` returns exactly the tuples whose start lies in range, and
    /// `covering` is a superset that additionally covers the left edge.
    #[test]
    fn window_and_covering(ts in tuples(), a in 0i64..300, len in 0i64..100) {
        let s = stream(ts);
        let b = a + len;
        let w = s.window(a, b);
        prop_assert!(w.iter().all(|t| a <= t.start && t.start < b));
        let expected = s.iter().filter(|t| a <= t.start && t.start < b).count();
        prop_assert_eq!(w.len(), expected);
        let c = s.covering(a, b);
        prop_assert!(c.len() >= w.len());
        // Everything in covering either starts in-window or spans `a`.
        prop_assert!(c.iter().all(|t| (a <= t.start && t.start < b) || (t.start < a && t.end() > a)));
    }

    /// A stream is continuous iff it has no gaps and no overlaps.
    #[test]
    fn continuity_iff_no_gaps_or_overlaps(ts in tuples()) {
        let s = stream(ts);
        if s.len() < 2 {
            return Ok(());
        }
        let continuous = classify(&s).satisfies(StreamCategory::Continuous);
        prop_assert_eq!(continuous, s.gaps().is_empty() && s.overlaps().is_empty());
    }

    /// Span bounds every tuple; duration is non-negative and matches span.
    #[test]
    fn span_bounds_all(ts in tuples()) {
        let s = stream(ts);
        if let Some((lo, hi)) = s.tick_span() {
            prop_assert!(s.iter().all(|t| t.start >= lo && t.end() <= hi));
            prop_assert!(lo <= hi);
        } else {
            prop_assert!(s.is_empty());
        }
    }

    /// map_elements preserves count and timing.
    #[test]
    fn map_preserves_timing(ts in tuples()) {
        let s = stream(ts);
        let mapped = s.map_elements(|t| SizedElement::new(t.element.byte_size() + 1));
        prop_assert_eq!(mapped.len(), s.len());
        for (a, b) in s.iter().zip(mapped.iter()) {
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(a.duration, b.duration);
            prop_assert_eq!(a.element.byte_size() + 1, b.element.byte_size());
        }
    }

    /// Total bytes in stats equals the sum of element sizes.
    #[test]
    fn stats_totals(ts in tuples()) {
        let s = stream(ts);
        let total: u64 = s.iter().map(|t| t.element.byte_size()).sum();
        prop_assert_eq!(s.stats().total_bytes, total);
        prop_assert_eq!(s.stats().count, s.len());
    }
}

use tbm_core::StreamElement;
