//! Property tests over interpretation tables, indexes and capture layouts.

use proptest::prelude::*;
use tbm_blob::{BlobStore, ByteSpan, MemBlobStore};
use tbm_core::{MediaDescriptor, MediaKind};
use tbm_interp::{ChunkedIndex, ElementEntry, Interpretation, StreamInterp, TimeIndex};
use tbm_time::TimeSystem;

/// Random valid, contiguous-placement element tables.
fn contiguous_entries() -> impl Strategy<Value = Vec<ElementEntry>> {
    prop::collection::vec((0i64..4, 0i64..5, 1u64..200, any::<bool>()), 1..80).prop_map(|raw| {
        let mut at = 0u64;
        let mut t = 0i64;
        raw.into_iter()
            .map(|(gap, dur, size, key)| {
                t += gap;
                let mut e = ElementEntry::simple(t, dur, ByteSpan::new(at, size));
                e.is_key = key;
                at += size;
                t += 0; // starts ordered but may repeat
                e
            })
            .collect()
    })
}

proptest! {
    /// The chosen time index always agrees with the linear-scan reference.
    #[test]
    fn time_index_agrees_with_scan(entries in contiguous_entries(), probe in -3i64..500) {
        let idx = TimeIndex::build(&entries);
        prop_assert_eq!(
            idx.lookup(&entries, probe),
            TimeIndex::lookup_scan(&entries, probe),
            "probe {}", probe
        );
    }

    /// The chunked index agrees with the full table at every chunk size.
    #[test]
    fn chunked_index_agrees(entries in contiguous_entries(), chunk in 1usize..32) {
        let ci = ChunkedIndex::build(&entries, chunk).expect("contiguous layout");
        for (i, e) in entries.iter().enumerate() {
            prop_assert_eq!(ci.placement(i), e.placement.as_single());
        }
        prop_assert_eq!(ci.placement(entries.len()), None);
    }

    /// StreamInterp accepts exactly the tables that satisfy Definition 3.
    #[test]
    fn validation_matches_definition(entries in contiguous_entries(), swap in any::<(u8, u8)>()) {
        let desc = MediaDescriptor::new(MediaKind::Video);
        // Valid as generated.
        prop_assert!(StreamInterp::new(desc.clone(), TimeSystem::PAL, entries.clone()).is_ok());
        // A start-order violation is rejected.
        if entries.len() >= 2 {
            let i = swap.0 as usize % entries.len();
            let j = swap.1 as usize % entries.len();
            if entries[i].start != entries[j].start {
                let mut bad = entries.clone();
                bad.swap(i, j);
                prop_assert!(StreamInterp::new(desc, TimeSystem::PAL, bad).is_err());
            }
        }
    }

    /// Reading every element back through the interpretation returns the
    /// exact bytes written, regardless of extent fragmentation.
    #[test]
    fn element_reads_roundtrip(sizes in prop::collection::vec(1usize..300, 1..30),
                               extent in 1usize..256) {
        let mut store = MemBlobStore::with_extent_size(extent);
        let blob = store.create().unwrap();
        let mut entries = Vec::new();
        let mut originals = Vec::new();
        let mut at = 0u64;
        for (i, &size) in sizes.iter().enumerate() {
            let data: Vec<u8> = (0..size).map(|j| (i * 31 + j) as u8).collect();
            store.append(blob, &data).unwrap();
            entries.push(ElementEntry::simple(i as i64, 1, ByteSpan::new(at, size as u64)));
            at += size as u64;
            originals.push(data);
        }
        let stream = StreamInterp::new(
            MediaDescriptor::new(MediaKind::Video),
            TimeSystem::PAL,
            entries,
        )
        .unwrap();
        for (i, original) in originals.iter().enumerate() {
            prop_assert_eq!(&stream.read_element(&store, blob, i).unwrap(), original);
        }
    }

    /// `key_before` returns the nearest preceding key (or 0) for all
    /// configurations.
    #[test]
    fn key_before_is_nearest(entries in contiguous_entries(), probe in 0usize..80) {
        let stream = StreamInterp::new(
            MediaDescriptor::new(MediaKind::Video),
            TimeSystem::PAL,
            entries.clone(),
        )
        .unwrap();
        if probe >= entries.len() {
            prop_assert!(stream.key_before(probe).is_err());
            return Ok(());
        }
        let k = stream.key_before(probe).unwrap();
        let expected = (0..=probe).rev().find(|&i| entries[i].is_key).unwrap_or(0);
        prop_assert_eq!(k, expected);
    }

    /// Views are non-destructive and renumber densely.
    #[test]
    fn filtered_views(entries in contiguous_entries(), modulus in 1usize..5) {
        let stream = StreamInterp::new(
            MediaDescriptor::new(MediaKind::Video),
            TimeSystem::PAL,
            entries.clone(),
        )
        .unwrap();
        let view = stream.filtered_view(|i, _| i % modulus == 0);
        prop_assert_eq!(view.len(), entries.len().div_ceil(modulus));
        prop_assert_eq!(stream.len(), entries.len());
        // The view's entries are exactly the kept originals, in order.
        for (vi, e) in view.entries().iter().enumerate() {
            prop_assert_eq!(e, &entries[vi * modulus]);
        }
    }
}

/// Interpretation-level invariant: views never alias or mutate the original.
#[test]
fn interpretation_views_are_independent() {
    let mut interp = Interpretation::new(tbm_core::BlobId::new(0));
    for name in ["a", "b", "c"] {
        let entries = vec![ElementEntry::simple(0, 1, ByteSpan::new(0, 1))];
        interp
            .add_stream(
                name,
                StreamInterp::new(
                    MediaDescriptor::new(MediaKind::Audio),
                    TimeSystem::CD_AUDIO,
                    entries,
                )
                .unwrap(),
            )
            .unwrap();
    }
    let view = interp.view(&["b"]).unwrap();
    assert_eq!(view.stream_names(), vec!["b"]);
    assert_eq!(interp.stream_names(), vec!["a", "b", "c"]);
}
