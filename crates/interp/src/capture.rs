//! Capture pipelines: write a BLOB and build its interpretation together.
//!
//! The paper recommends that a BLOB have "a single, complete, interpretation
//! which is built up as the BLOB is captured or created and then permanently
//! associated with the BLOB." Each function here is one capture pipeline,
//! reproducing one of the §2.2 layout issues:
//!
//! * [`capture_av_interleaved`] — the Fig. 2 walk-through: intraframe-coded
//!   video with PCM audio *interleaved* after each frame.
//! * [`capture_av_padded`] — the same, with CD-I-style sector *padding*.
//! * [`capture_audio_adpcm`] — *heterogeneous* elements with varying
//!   encoding parameters in their element descriptors.
//! * [`capture_video_interframe`] — *out-of-order* key/intermediate element
//!   placement (the `1,4,2,3` example).
//! * [`capture_video_scalable`] — *scalable* two-layer placement.
//!
//! Each returns the BLOB id plus the completed [`Interpretation`].

use crate::{ElementEntry, InterpError, Interpretation, StreamInterp};
use tbm_blob::ByteSpan;
use tbm_blob::{BlobStore, BlobWriter};
use tbm_codec::adpcm;
use tbm_codec::dct::{self, DctParams};
use tbm_codec::interframe::{self, EncodedSequence, EncodedVideoFrame, FrameKind, GopParams};
use tbm_codec::scalable;
use tbm_core::BlobId;
use tbm_core::{crc32, keys, MediaDescriptor, MediaKind, QualityFactor, StreamElement};
use tbm_media::{AudioBuffer, Frame};
use tbm_time::{Rational, TimeSystem};

/// Descriptor key recording the quantizer percentage a capture used, so
/// materialization can rebuild decode parameters. (Low-level, so not part of
/// [`tbm_core::keys`] — the paper wants such parameters kept out of the
/// schema surface; it lives in the descriptor only as decoder provisioning.)
pub const QUANT_KEY: &str = "quantizer percent";

/// Builds the Fig. 2-style video media descriptor.
pub fn video_descriptor(
    width: u32,
    height: u32,
    frame_rate: Rational,
    quality: Option<QualityFactor>,
    duration_secs: Rational,
    encoding: &str,
    category: &str,
) -> MediaDescriptor {
    let mut d = MediaDescriptor::new(MediaKind::Video)
        .with(keys::CATEGORY, category)
        .with(keys::DURATION, duration_secs)
        .with(keys::FRAME_RATE, frame_rate)
        .with(keys::FRAME_WIDTH, width as i64)
        .with(keys::FRAME_HEIGHT, height as i64)
        .with(keys::FRAME_DEPTH, 24)
        .with(keys::COLOR_MODEL, "RGB")
        .with(keys::ENCODING, encoding);
    if let Some(q) = quality {
        d.set_quality(q);
    }
    d
}

/// Builds the Fig. 2-style PCM audio media descriptor.
pub fn audio_pcm_descriptor(
    sample_rate: i64,
    sample_size: i64,
    channels: i64,
    quality: Option<QualityFactor>,
    duration_secs: Rational,
) -> MediaDescriptor {
    let mut d = MediaDescriptor::new(MediaKind::Audio)
        .with(keys::CATEGORY, "homogeneous, uniform")
        .with(keys::DURATION, duration_secs)
        .with(keys::SAMPLE_RATE, sample_rate)
        .with(keys::SAMPLE_SIZE, sample_size)
        .with(keys::CHANNELS, channels)
        .with(keys::ENCODING, "PCM");
    if let Some(q) = quality {
        d.set_quality(q);
    }
    d
}

/// Adds the resource-allocation attributes the paper asks descriptors to
/// carry ("the average data rate for each stream, a measure of data rate
/// variation") from the finished element table.
fn annotate_rates(d: &mut MediaDescriptor, entries: &[ElementEntry], system: TimeSystem) {
    let (Some(first), Some(end)) = (
        entries.first().map(|e| e.start),
        entries.iter().map(ElementEntry::end).max(),
    ) else {
        return;
    };
    if end == first {
        return;
    }
    let secs = system.ticks_to_delta(end - first).seconds();
    let total: u64 = entries.iter().map(|e| e.size).sum();
    let avg = Rational::from(total as i64) / secs;
    d.set(keys::AVG_DATA_RATE, avg);
    let peak = entries
        .iter()
        .filter(|e| e.duration > 0)
        .map(|e| Rational::from(e.size as i64) / system.ticks_to_delta(e.duration).seconds())
        .max();
    if let Some(p) = peak {
        if !avg.is_zero() {
            d.set(keys::RATE_VARIATION, p / avg);
        }
    }
}

/// Result of an audio/video capture: the BLOB and its interpretation, plus
/// layout accounting for the experiments.
#[derive(Debug)]
pub struct AvCapture {
    /// The written BLOB.
    pub blob: BlobId,
    /// Its complete interpretation (`video1`, `audio1`).
    pub interpretation: Interpretation,
    /// Total BLOB bytes written.
    pub blob_len: u64,
    /// Bytes of padding inserted (zero for unpadded layouts).
    pub padding_bytes: u64,
}

/// The Fig. 2 pipeline: for each video frame, append the intraframe-coded
/// frame then the accompanying `samples_per_frame` PCM sample-frames
/// ("audio samples following the associated video frame").
///
/// `audio` must contain at least `frames.len() × samples_per_frame`
/// sample-frames.
pub fn capture_av_interleaved<S: BlobStore + ?Sized>(
    store: &mut S,
    frames: &[Frame],
    audio: &AudioBuffer,
    samples_per_frame: usize,
    video_system: TimeSystem,
    params: DctParams,
    quality: Option<QualityFactor>,
) -> Result<AvCapture, InterpError> {
    capture_av_inner(
        store,
        frames,
        audio,
        samples_per_frame,
        video_system,
        params,
        quality,
        None,
    )
}

/// The padded variant: each frame+audio unit is zero-padded to a multiple of
/// `sector` bytes — the paper's "storage units may be padded with unused
/// data to match storage transfer rates to media data rates. This is
/// commonly used in CD-I."
#[allow(clippy::too_many_arguments)] // capture parameters mirror the paper's example
pub fn capture_av_padded<S: BlobStore + ?Sized>(
    store: &mut S,
    frames: &[Frame],
    audio: &AudioBuffer,
    samples_per_frame: usize,
    video_system: TimeSystem,
    params: DctParams,
    quality: Option<QualityFactor>,
    sector: u64,
) -> Result<AvCapture, InterpError> {
    capture_av_inner(
        store,
        frames,
        audio,
        samples_per_frame,
        video_system,
        params,
        quality,
        Some(sector.max(1)),
    )
}

#[allow(clippy::too_many_arguments)]
fn capture_av_inner<S: BlobStore + ?Sized>(
    store: &mut S,
    frames: &[Frame],
    audio: &AudioBuffer,
    samples_per_frame: usize,
    video_system: TimeSystem,
    params: DctParams,
    quality: Option<QualityFactor>,
    sector: Option<u64>,
) -> Result<AvCapture, InterpError> {
    if frames.is_empty() {
        return Err(InterpError::InvalidEntries {
            detail: "capture requires at least one frame".to_owned(),
        });
    }
    let need = frames.len() * samples_per_frame;
    if audio.frames() < need {
        return Err(InterpError::InvalidEntries {
            detail: format!(
                "audio has {} sample-frames, capture needs {need}",
                audio.frames()
            ),
        });
    }
    let blob = store.create()?;
    let mut writer = BlobWriter::new(store, blob)?;
    let mut video_entries = Vec::with_capacity(frames.len());
    let mut audio_entries = Vec::with_capacity(frames.len());
    let mut padding = 0u64;
    for (i, frame) in frames.iter().enumerate() {
        let encoded = dct::encode_frame(frame, params);
        let vspan = writer.write(&encoded)?;
        video_entries.push(
            ElementEntry::simple(i as i64, 1, vspan)
                .with_checksums(vec![crc32(&encoded)])
                .expect("one checksum per layer"),
        );
        let chunk = audio.slice_frames(i * samples_per_frame, (i + 1) * samples_per_frame);
        let abytes = chunk.to_bytes();
        let aspan = writer.write(&abytes)?;
        audio_entries.push(
            ElementEntry::simple(
                (i * samples_per_frame) as i64,
                samples_per_frame as i64,
                aspan,
            )
            .with_checksums(vec![crc32(&abytes)])
            .expect("one checksum per layer"),
        );
        if let Some(sector) = sector {
            padding += writer.align_to(sector)?.len;
        }
    }
    let blob_len = writer.position();

    let w = frames[0].width();
    let h = frames[0].height();
    let duration = video_system.ticks_to_delta(frames.len() as i64).seconds();
    let mut vdesc = video_descriptor(
        w,
        h,
        video_system.frequency(),
        quality,
        duration,
        "YUV 8:2:2, JPEG",
        "homogeneous, constant frequency",
    );
    annotate_rates(&mut vdesc, &video_entries, video_system);
    let audio_system = TimeSystem::from_hz(
        (video_system.frequency() * Rational::from(samples_per_frame as i64)).round(),
    );
    let mut adesc = audio_pcm_descriptor(
        audio_system.frequency().round(),
        16,
        audio.channels() as i64,
        Some(QualityFactor::parse("CD quality").expect("known name")),
        duration,
    );
    annotate_rates(&mut adesc, &audio_entries, audio_system);

    let mut interpretation = Interpretation::new(blob);
    interpretation.add_stream(
        "video1",
        StreamInterp::new(vdesc, video_system, video_entries)?,
    )?;
    interpretation.add_stream(
        "audio1",
        StreamInterp::new(adesc, audio_system, audio_entries)?,
    )?;
    Ok(AvCapture {
        blob,
        interpretation,
        blob_len,
        padding_bytes: padding,
    })
}

/// Captures ADPCM audio: one block per element, each carrying its varying
/// encoding parameters as an element descriptor (the paper's heterogeneous
/// example).
pub fn capture_audio_adpcm<S: BlobStore + ?Sized>(
    store: &mut S,
    audio: &AudioBuffer,
    sample_rate: u32,
    block_frames: usize,
) -> Result<(BlobId, Interpretation), InterpError> {
    let blob = store.create()?;
    let blocks = adpcm::encode_blocks(audio, block_frames);
    let mut writer = BlobWriter::new(store, blob)?;
    let mut entries = Vec::with_capacity(blocks.len());
    let mut at = 0i64;
    for b in &blocks {
        let bytes = b.to_bytes();
        let span = writer.write(&bytes)?;
        entries.push(
            ElementEntry::simple(at, b.frames() as i64, span)
                .with_descriptor(b.element_descriptor())
                .with_checksums(vec![crc32(&bytes)])
                .expect("one checksum per layer"),
        );
        at += b.frames() as i64;
    }
    let system = TimeSystem::from_hz(sample_rate as i64);
    let duration = system.ticks_to_delta(at).seconds();
    let mut desc = MediaDescriptor::new(MediaKind::Audio)
        .with(keys::CATEGORY, "heterogeneous, continuous")
        .with(keys::DURATION, duration)
        .with(keys::SAMPLE_RATE, sample_rate as i64)
        .with(keys::CHANNELS, audio.channels() as i64)
        .with(keys::ENCODING, "ADPCM");
    annotate_rates(&mut desc, &entries, system);
    let mut interpretation = Interpretation::new(blob);
    interpretation.add_stream("audio1", StreamInterp::new(desc, system, entries)?)?;
    Ok((blob, interpretation))
}

/// Captures interframe-coded video with **out-of-order placement**: bytes
/// land in decode order ("key elements … placed in storage units prior to
/// the intermediate elements") while the element table stays in display
/// order, as Definition 3 requires of start times.
pub fn capture_video_interframe<S: BlobStore + ?Sized>(
    store: &mut S,
    frames: &[Frame],
    video_system: TimeSystem,
    params: GopParams,
    quality: Option<QualityFactor>,
) -> Result<(BlobId, Interpretation), InterpError> {
    let blob = store.create()?;
    let seq = interframe::encode_sequence(frames, params)?;
    let mut writer = BlobWriter::new(store, blob)?;
    // Write in decode order, remembering each display index's placement.
    let mut placements: Vec<Option<(ByteSpan, FrameKind, u32)>> = vec![None; frames.len()];
    for ef in &seq.frames {
        let span = writer.write(&ef.data)?;
        placements[ef.display_index] = Some((span, ef.kind, crc32(&ef.data)));
    }
    // Element table in display (start-time) order.
    let mut entries = Vec::with_capacity(frames.len());
    for (display, p) in placements.into_iter().enumerate() {
        let (span, kind, sum) = p.ok_or_else(|| InterpError::InvalidEntries {
            detail: format!("encoder produced no frame for display index {display}"),
        })?;
        let mut e = ElementEntry::simple(display as i64, 1, span)
            .with_checksums(vec![sum])
            .expect("one checksum per layer")
            .with_descriptor(
                EncodedVideoFrame {
                    kind,
                    display_index: display,
                    data: Vec::new(),
                }
                .element_descriptor(),
            );
        e.is_key = kind == FrameKind::I;
        entries.push(e);
    }
    let (w, h) = frames
        .first()
        .map(|f| (f.width(), f.height()))
        .unwrap_or((0, 0));
    let duration = video_system.ticks_to_delta(frames.len() as i64).seconds();
    let mut desc = video_descriptor(
        w,
        h,
        video_system.frequency(),
        quality,
        duration,
        "YUV 8:2:2, interframe GOP",
        "heterogeneous, constant frequency",
    );
    desc.set(QUANT_KEY, params.dct.quant_percent as i64);
    annotate_rates(&mut desc, &entries, video_system);
    let mut interpretation = Interpretation::new(blob);
    interpretation.add_stream("video1", StreamInterp::new(desc, video_system, entries)?)?;
    Ok((blob, interpretation))
}

/// Reassembles the decode-order [`EncodedSequence`] from an interframe
/// stream's interpretation, reading element bytes back from the BLOB.
/// Storage order *is* decode order in this layout, so elements are sorted by
/// placement offset.
pub fn reassemble_interframe<S: BlobStore + ?Sized>(
    store: &S,
    blob: BlobId,
    stream: &StreamInterp,
    params: GopParams,
    width: u32,
    height: u32,
) -> Result<EncodedSequence, InterpError> {
    let mut order: Vec<usize> = (0..stream.len()).collect();
    order.sort_by_key(|&i| {
        stream.entries()[i]
            .placement
            .layers()
            .first()
            .map(|s| s.offset)
            .unwrap_or(u64::MAX)
    });
    let mut frames = Vec::with_capacity(order.len());
    for display in order {
        let e = stream.entry(display)?;
        let kind = match e
            .descriptor
            .as_ref()
            .and_then(|d| d.get("frame kind"))
            .and_then(|v| v.as_text())
        {
            Some("I") => FrameKind::I,
            Some("P") => FrameKind::P,
            Some("B") => FrameKind::B,
            other => {
                return Err(InterpError::InvalidEntries {
                    detail: format!("element {display} has no frame kind ({other:?})"),
                })
            }
        };
        let data = stream.read_element(store, blob, display)?;
        frames.push(EncodedVideoFrame {
            kind,
            display_index: display,
            data,
        });
    }
    Ok(EncodedSequence {
        width,
        height,
        params,
        frames,
    })
}

/// Captures video with two-layer scalable placement: each element's bytes
/// are `[base][enhancement]` recorded as two spans, so base-only readers
/// skip the enhancement bytes entirely.
pub fn capture_video_scalable<S: BlobStore + ?Sized>(
    store: &mut S,
    frames: &[Frame],
    video_system: TimeSystem,
    params: DctParams,
) -> Result<(BlobId, Interpretation), InterpError> {
    let blob = store.create()?;
    let mut writer = BlobWriter::new(store, blob)?;
    let mut entries = Vec::with_capacity(frames.len());
    for (i, frame) in frames.iter().enumerate() {
        let lf = scalable::encode_layered(frame, params);
        let base = writer.write(&lf.base)?;
        let enh = writer.write(&lf.enhancement)?;
        let e = ElementEntry::simple(i as i64, 1, ByteSpan::new(base.offset, 0))
            .with_layers(vec![base, enh])
            .expect("two layers")
            .with_checksums(vec![crc32(&lf.base), crc32(&lf.enhancement)])
            .expect("one checksum per layer");
        entries.push(e);
    }
    let (w, h) = frames
        .first()
        .map(|f| (f.width(), f.height()))
        .unwrap_or((0, 0));
    let duration = video_system.ticks_to_delta(frames.len() as i64).seconds();
    let mut desc = video_descriptor(
        w,
        h,
        video_system.frequency(),
        None,
        duration,
        "YUV 8:2:2, layered DCT",
        "homogeneous, constant frequency",
    );
    desc.set(QUANT_KEY, params.quant_percent as i64);
    annotate_rates(&mut desc, &entries, video_system);
    let mut interpretation = Interpretation::new(blob);
    interpretation.add_stream("video1", StreamInterp::new(desc, video_system, entries)?)?;
    Ok((blob, interpretation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbm_blob::MemBlobStore;
    use tbm_codec::scalable::LayeredFrame;
    use tbm_media::gen::{AudioSignal, VideoPattern};
    use tbm_media::PixelFormat;

    fn frames(n: usize) -> Vec<Frame> {
        (0..n as u64)
            .map(|i| VideoPattern::MovingBar.render(i, 48, 32))
            .collect()
    }

    fn tone(frames: usize) -> AudioBuffer {
        AudioSignal::Sine {
            hz: 440.0,
            amplitude: 9000,
        }
        .generate(0, frames, 44100, 2)
    }

    #[test]
    fn interleaved_layout_alternates_video_audio() {
        let mut store = MemBlobStore::new();
        let cap = capture_av_interleaved(
            &mut store,
            &frames(5),
            &tone(5 * 1764),
            1764,
            TimeSystem::PAL,
            DctParams::default(),
            None,
        )
        .unwrap();
        let v = cap.interpretation.stream("video1").unwrap();
        let a = cap.interpretation.stream("audio1").unwrap();
        assert_eq!(v.len(), 5);
        assert_eq!(a.len(), 5);
        assert_eq!(cap.padding_bytes, 0);
        // Each audio chunk sits immediately after its video frame.
        for i in 0..5 {
            let vs = v.entry(i).unwrap().placement.as_single().unwrap();
            let as_ = a.entry(i).unwrap().placement.as_single().unwrap();
            assert_eq!(as_.offset, vs.end(), "frame {i}");
            assert_eq!(as_.len, 1764 * 4);
        }
        // Audio timing: 1764-tick elements at 44100 Hz.
        assert_eq!(a.entry(1).unwrap().start, 1764);
        assert_eq!(a.system().frequency(), Rational::from(44100));
        // Every element decodes.
        for i in 0..5 {
            let bytes = v.read_element(&store, cap.blob, i).unwrap();
            let f = dct::decode_frame(&bytes).unwrap();
            assert_eq!((f.width(), f.height()), (48, 32));
        }
    }

    #[test]
    fn interleaved_descriptors_follow_fig2() {
        let mut store = MemBlobStore::new();
        let cap = capture_av_interleaved(
            &mut store,
            &frames(3),
            &tone(3 * 1764),
            1764,
            TimeSystem::PAL,
            DctParams::default(),
            QualityFactor::parse("VHS quality"),
        )
        .unwrap();
        let v = cap.interpretation.stream("video1").unwrap().descriptor();
        assert_eq!(v.get_int(keys::FRAME_WIDTH), Some(48));
        assert_eq!(v.get_rational(keys::FRAME_RATE), Some(Rational::from(25)));
        assert_eq!(v.get_text(keys::QUALITY_FACTOR), Some("VHS quality"));
        assert_eq!(v.get_text(keys::ENCODING), Some("YUV 8:2:2, JPEG"));
        assert!(v.get_rational(keys::AVG_DATA_RATE).is_some());
        let a = cap.interpretation.stream("audio1").unwrap().descriptor();
        assert_eq!(a.get_int(keys::SAMPLE_RATE), Some(44100));
        assert_eq!(a.get_int(keys::CHANNELS), Some(2));
        assert_eq!(a.get_text(keys::ENCODING), Some("PCM"));
    }

    #[test]
    fn capture_validates_inputs() {
        let mut store = MemBlobStore::new();
        assert!(capture_av_interleaved(
            &mut store,
            &[],
            &tone(10),
            5,
            TimeSystem::PAL,
            DctParams::default(),
            None
        )
        .is_err());
        assert!(capture_av_interleaved(
            &mut store,
            &frames(3),
            &tone(100),
            1764,
            TimeSystem::PAL,
            DctParams::default(),
            None
        )
        .is_err());
    }

    #[test]
    fn padded_layout_aligns_units() {
        let mut store = MemBlobStore::new();
        let sector = 2048u64;
        let cap = capture_av_padded(
            &mut store,
            &frames(4),
            &tone(4 * 1764),
            1764,
            TimeSystem::PAL,
            DctParams::default(),
            None,
            sector,
        )
        .unwrap();
        assert!(cap.padding_bytes > 0);
        assert_eq!(cap.blob_len % sector, 0);
        // Each video element starts on a sector boundary.
        let v = cap.interpretation.stream("video1").unwrap();
        for e in v.entries() {
            assert_eq!(e.placement.as_single().unwrap().offset % sector, 0);
        }
        // Accounting: mapped + padding = blob length.
        assert_eq!(
            cap.interpretation.mapped_bytes() + cap.padding_bytes,
            cap.blob_len
        );
    }

    #[test]
    fn adpcm_capture_is_heterogeneous() {
        let mut store = MemBlobStore::new();
        let (blob, interp) = capture_audio_adpcm(&mut store, &tone(8192), 44100, 1024).unwrap();
        let s = interp.stream("audio1").unwrap();
        assert_eq!(s.len(), 8);
        // Element descriptors present and varying.
        let d0 = s.entry(0).unwrap().descriptor.clone().unwrap();
        let d4 = s.entry(4).unwrap().descriptor.clone().unwrap();
        assert_ne!(d0, d4);
        // Blocks decode through the interpretation.
        let bytes = s.read_element(&store, blob, 3).unwrap();
        let block = adpcm::AdpcmBlock::from_bytes(&bytes).unwrap();
        assert_eq!(block.frames(), 1024);
        assert_eq!(
            s.descriptor().get_text(keys::CATEGORY),
            Some("heterogeneous, continuous")
        );
    }

    #[test]
    fn interframe_capture_places_out_of_order() {
        let mut store = MemBlobStore::new();
        let params = GopParams {
            gop_size: 6,
            b_frames: 2,
            dct: DctParams::default(),
        };
        let fr = frames(4);
        let (_, interp) =
            capture_video_interframe(&mut store, &fr, TimeSystem::PAL, params, None).unwrap();
        let s = interp.stream("video1").unwrap();
        // Table is in display order (starts 0..4)…
        let starts: Vec<i64> = s.entries().iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![0, 1, 2, 3]);
        // …but placement offsets realize the paper's 1,4,2,3 order.
        let mut by_offset: Vec<usize> = (0..4).collect();
        by_offset.sort_by_key(|&i| s.entries()[i].placement.as_single().unwrap().offset);
        assert_eq!(by_offset, vec![0, 3, 1, 2]);
        // Keys: only element 0 is an I frame here.
        assert_eq!(s.key_elements(), &[0]);
        assert_eq!(s.key_before(2).unwrap(), 0);
    }

    #[test]
    fn interframe_reassembles_and_decodes() {
        let mut store = MemBlobStore::new();
        let params = GopParams {
            gop_size: 6,
            b_frames: 2,
            dct: DctParams::default(),
        };
        let fr = frames(8);
        let (blob, interp) =
            capture_video_interframe(&mut store, &fr, TimeSystem::PAL, params, None).unwrap();
        let s = interp.stream("video1").unwrap();
        let seq = reassemble_interframe(&store, blob, s, params, 48, 32).unwrap();
        let decoded = interframe::decode_sequence(&seq).unwrap();
        assert_eq!(decoded.len(), 8);
        for (src, dec) in fr.iter().zip(&decoded) {
            let reference = src.to_format(PixelFormat::Yuv420);
            assert!(reference.mean_abs_diff(dec).unwrap() < 8.0);
        }
    }

    #[test]
    fn scalable_capture_reads_layers_independently() {
        let mut store = MemBlobStore::new();
        let fr = frames(3);
        let (blob, interp) =
            capture_video_scalable(&mut store, &fr, TimeSystem::PAL, DctParams::default()).unwrap();
        let s = interp.stream("video1").unwrap();
        let e = s.entry(1).unwrap();
        assert_eq!(e.placement.layer_count(), 2);
        // Base-only read is smaller than the full element.
        let base = s.read_element_layers(&store, blob, 1, 1).unwrap();
        let full = s.read_element(&store, blob, 1).unwrap();
        assert!(base.len() < full.len());
        // Both reads decode through the layered codec.
        let base_len = e.placement.layers()[0].len as usize;
        let lf = LayeredFrame {
            width: 48,
            height: 32,
            quant_percent: 100,
            base: full[..base_len].to_vec(),
            enhancement: full[base_len..].to_vec(),
        };
        let reference = fr[1].to_format(PixelFormat::Yuv420);
        let base_err = reference
            .mean_abs_diff(&scalable::decode_base(&lf).unwrap())
            .unwrap();
        let full_err = reference
            .mean_abs_diff(&scalable::decode_full(&lf).unwrap())
            .unwrap();
        assert!(full_err < base_err);
    }
}
