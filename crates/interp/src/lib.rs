//! # tbm-interp — interpretation of BLOBs
//!
//! Implements the paper's Definition 5:
//!
//! > *"An interpretation, I, of a BLOB B, is a mapping from B to a set of
//! > media objects. For each object, I specifies the object's descriptor and
//! > its placement in B. If the object is a media sequence then for each
//! > media element I specifies the element's order within the sequence, its
//! > start time, duration and element descriptor."*
//!
//! The concrete form follows the paper's §4.1 tables —
//! `video1(elementNumber, elementSize, blobPlacement)` and friends — as
//! [`ElementEntry`] rows inside a [`StreamInterp`], grouped per BLOB into an
//! [`Interpretation`]. Lookup goes through index structures
//! ([`TimeIndex`], the key-element index) that are *not* visible to
//! applications: "the indexes used to implement interpretation should not be
//! visible to applications, what needs be visible are the results of
//! interpretation — the media elements and their descriptors."
//!
//! The [`capture`] module builds interpretations while writing BLOBs (the
//! paper's recommended practice: a single complete interpretation "built up
//! as the BLOB is captured") for every layout §2.2 calls out: interleaving,
//! padding, out-of-order key elements and scalable layers.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod capture;
mod entry;
mod error;
mod index;
mod interpretation;
mod stream;

pub use entry::{ElementEntry, Placement};
pub use error::InterpError;
pub use index::{ChunkedIndex, TimeIndex};
pub use interpretation::Interpretation;
pub use stream::{StreamInterp, VerifyReport};
