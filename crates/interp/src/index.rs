//! Index structures over element tables.
//!
//! The paper notes that "existing storage systems for time-based media use
//! multiple index structures, allowing rapid lookup of the element occurring
//! at a specific time … (for example, QuickTime uses up to seven indexes for
//! a single timed stream)," and that these indexes "should not be visible to
//! applications." Two live here:
//!
//! * [`TimeIndex`] — time → element-number. For constant-frequency streams
//!   it degenerates to a stride computation (O(1)); otherwise it binary
//!   searches the ordered starts (O(log n)). The `exp_fig2` benchmark
//!   ablates these against a naive linear scan.
//! * [`ChunkedIndex`] — element-number → byte offset at reduced memory: one
//!   base offset per chunk of elements plus per-element sizes, trading a
//!   short scan (≤ chunk size) for not storing one span per element. This is
//!   the table-size/lookup-cost design choice DESIGN.md calls out for
//!   ablation.

use crate::ElementEntry;
use tbm_blob::ByteSpan;

/// Time → element lookup strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimeIndex {
    /// Constant-frequency fast path: element `(t − start) / duration`.
    Uniform {
        /// Start of the first element.
        start: i64,
        /// Common element duration (> 0).
        duration: i64,
        /// Element count.
        count: usize,
    },
    /// General path: binary search over ordered starts.
    Search,
}

impl TimeIndex {
    /// Chooses the best index for a table of entries (assumed start-ordered).
    pub fn build(entries: &[ElementEntry]) -> TimeIndex {
        if let Some(first) = entries.first() {
            let d = first.duration;
            if d > 0 {
                let uniform = entries
                    .iter()
                    .enumerate()
                    .all(|(i, e)| e.duration == d && e.start == first.start + (i as i64) * d);
                if uniform {
                    return TimeIndex::Uniform {
                        start: first.start,
                        duration: d,
                        count: entries.len(),
                    };
                }
            }
        }
        TimeIndex::Search
    }

    /// The element number active at `tick`, if any.
    pub fn lookup(&self, entries: &[ElementEntry], tick: i64) -> Option<usize> {
        match *self {
            TimeIndex::Uniform {
                start,
                duration,
                count,
            } => {
                if tick < start {
                    return None;
                }
                let idx = ((tick - start) / duration) as usize;
                (idx < count).then_some(idx)
            }
            TimeIndex::Search => {
                if entries.is_empty() || tick < entries[0].start {
                    return None;
                }
                let n = entries.partition_point(|e| e.start <= tick);
                // Walk back over ties/overlaps to an element covering `tick`.
                entries[..n].iter().enumerate().rev().find_map(|(i, e)| {
                    let covers = if e.duration == 0 {
                        e.start == tick
                    } else {
                        e.start <= tick && tick < e.end()
                    };
                    covers.then_some(i)
                })
            }
        }
    }

    /// Reference implementation: linear scan (the no-index baseline the
    /// benchmark compares against). Like `lookup`, overlapping coverage
    /// resolves to the *most recently started* covering element.
    pub fn lookup_scan(entries: &[ElementEntry], tick: i64) -> Option<usize> {
        entries.iter().enumerate().rev().find_map(|(i, e)| {
            let covers = if e.duration == 0 {
                e.start == tick
            } else {
                e.start <= tick && tick < e.end()
            };
            covers.then_some(i)
        })
    }
}

/// A two-level element-number → placement index.
///
/// Stores `offsets[c]` = byte offset of the first element of chunk `c`, plus
/// all element sizes; the offset of element `i` is the chunk base plus the
/// sizes of the elements before it within the chunk. Memory: one `u64` per
/// element (size) + one per chunk, versus the full table's span per element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkedIndex {
    chunk_size: usize,
    chunk_offsets: Vec<u64>,
    sizes: Vec<u64>,
}

impl ChunkedIndex {
    /// Builds from contiguous single-span entries (each element's bytes
    /// immediately follow the previous element's). Returns `None` when the
    /// layout is not contiguous, or entries are layered.
    pub fn build(entries: &[ElementEntry], chunk_size: usize) -> Option<ChunkedIndex> {
        let chunk_size = chunk_size.max(1);
        let mut chunk_offsets = Vec::with_capacity(entries.len().div_ceil(chunk_size));
        let mut sizes = Vec::with_capacity(entries.len());
        let mut expect: Option<u64> = None;
        for (i, e) in entries.iter().enumerate() {
            let span = e.placement.as_single()?;
            if let Some(x) = expect {
                if span.offset != x {
                    return None;
                }
            }
            if i % chunk_size == 0 {
                chunk_offsets.push(span.offset);
            }
            sizes.push(span.len);
            expect = Some(span.end());
        }
        Some(ChunkedIndex {
            chunk_size,
            chunk_offsets,
            sizes,
        })
    }

    /// Number of elements indexed.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// `true` when no elements are indexed.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// The placement of element `i`: chunk base + intra-chunk size scan.
    pub fn placement(&self, i: usize) -> Option<ByteSpan> {
        if i >= self.sizes.len() {
            return None;
        }
        let chunk = i / self.chunk_size;
        let mut offset = self.chunk_offsets[chunk];
        for j in chunk * self.chunk_size..i {
            offset += self.sizes[j];
        }
        Some(ByteSpan::new(offset, self.sizes[i]))
    }

    /// Approximate memory footprint in bytes (for the ablation report).
    pub fn memory_bytes(&self) -> usize {
        self.chunk_offsets.len() * 8 + self.sizes.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_entries(n: usize, dur: i64, size: u64) -> Vec<ElementEntry> {
        let mut at = 0u64;
        (0..n)
            .map(|i| {
                let e = ElementEntry::simple(i as i64 * dur, dur, ByteSpan::new(at, size));
                at += size;
                e
            })
            .collect()
    }

    fn variable_entries() -> Vec<ElementEntry> {
        // Variable sizes, contiguous placement, continuous timing.
        let sizes = [10u64, 25, 5, 40, 15];
        let mut at = 0u64;
        let mut start = 0i64;
        sizes
            .iter()
            .map(|&z| {
                let e = ElementEntry::simple(start, 2, ByteSpan::new(at, z));
                at += z;
                start += 2;
                e
            })
            .collect()
    }

    #[test]
    fn uniform_fast_path_selected_and_correct() {
        let entries = uniform_entries(100, 1, 4);
        let idx = TimeIndex::build(&entries);
        assert!(matches!(idx, TimeIndex::Uniform { .. }));
        for t in [0i64, 1, 57, 99] {
            assert_eq!(idx.lookup(&entries, t), Some(t as usize));
            assert_eq!(TimeIndex::lookup_scan(&entries, t), Some(t as usize));
        }
        assert_eq!(idx.lookup(&entries, -1), None);
        assert_eq!(idx.lookup(&entries, 100), None);
    }

    #[test]
    fn search_path_for_gappy_streams() {
        let entries = vec![
            ElementEntry::simple(0, 5, ByteSpan::new(0, 3)),
            ElementEntry::simple(10, 5, ByteSpan::new(3, 3)),
        ];
        let idx = TimeIndex::build(&entries);
        assert_eq!(idx, TimeIndex::Search);
        assert_eq!(idx.lookup(&entries, 3), Some(0));
        assert_eq!(idx.lookup(&entries, 7), None); // in the gap
        assert_eq!(idx.lookup(&entries, 12), Some(1));
        assert_eq!(idx.lookup(&entries, 15), None);
    }

    #[test]
    fn search_matches_scan_on_events() {
        let entries = vec![
            ElementEntry::simple(5, 0, ByteSpan::new(0, 3)),
            ElementEntry::simple(9, 0, ByteSpan::new(3, 3)),
        ];
        let idx = TimeIndex::build(&entries);
        for t in 0..12 {
            assert_eq!(
                idx.lookup(&entries, t),
                TimeIndex::lookup_scan(&entries, t),
                "t = {t}"
            );
        }
    }

    #[test]
    fn variable_durations_fall_back_to_search() {
        let entries = vec![
            ElementEntry::simple(0, 2, ByteSpan::new(0, 3)),
            ElementEntry::simple(2, 3, ByteSpan::new(3, 3)),
        ];
        assert_eq!(TimeIndex::build(&entries), TimeIndex::Search);
    }

    #[test]
    fn chunked_index_agrees_with_full_table() {
        let entries = variable_entries();
        for chunk in [1usize, 2, 3, 16] {
            let ci = ChunkedIndex::build(&entries, chunk).unwrap();
            assert_eq!(ci.len(), entries.len());
            for (i, e) in entries.iter().enumerate() {
                assert_eq!(
                    ci.placement(i),
                    e.placement.as_single(),
                    "chunk {chunk} elem {i}"
                );
            }
            assert_eq!(ci.placement(99), None);
        }
    }

    #[test]
    fn chunked_index_rejects_non_contiguous() {
        let entries = vec![
            ElementEntry::simple(0, 1, ByteSpan::new(0, 10)),
            ElementEntry::simple(1, 1, ByteSpan::new(999, 10)),
        ];
        assert!(ChunkedIndex::build(&entries, 4).is_none());
    }

    #[test]
    fn chunked_index_rejects_layered() {
        let e = ElementEntry::simple(0, 1, ByteSpan::new(0, 10))
            .with_layers(vec![ByteSpan::new(0, 5), ByteSpan::new(5, 5)])
            .unwrap();
        assert!(ChunkedIndex::build(&[e], 4).is_none());
    }

    #[test]
    fn memory_accounting() {
        let entries = uniform_entries(100, 1, 4);
        let ci = ChunkedIndex::build(&entries, 10).unwrap();
        assert_eq!(ci.memory_bytes(), 10 * 8 + 100 * 8);
        assert!(!ci.is_empty());
    }
}
