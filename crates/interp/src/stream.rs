//! One media object's interpretation: descriptor + element table + indexes.

use crate::{ElementEntry, InterpError, TimeIndex};
use tbm_blob::{BlobStore, ByteSpan};
use tbm_core::{BlobId, MediaDescriptor};
use tbm_time::TimeSystem;

/// Outcome of [`StreamInterp::verify_all`]: how each element's bytes checked
/// out against the recorded checksums.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Elements whose every layer matched its checksum.
    pub verified: usize,
    /// Elements with no recorded checksums (nothing to check).
    pub unchecked: usize,
    /// Elements with at least one checksum mismatch.
    pub corrupt: Vec<usize>,
    /// Elements whose bytes could not be read at all.
    pub unreadable: Vec<usize>,
}

impl VerifyReport {
    /// `true` when no element was corrupt or unreadable.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty() && self.unreadable.is_empty()
    }
}

/// The interpretation of one media object within a BLOB (one of the "set of
/// media objects" of Definition 5).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamInterp {
    descriptor: MediaDescriptor,
    system: TimeSystem,
    entries: Vec<ElementEntry>,
    time_index: TimeIndex,
    key_index: Vec<usize>,
}

impl StreamInterp {
    /// Builds a stream interpretation, validating entry ordering
    /// (Definition 3 constraints carry over: starts ordered, durations ≥ 0).
    pub fn new(
        descriptor: MediaDescriptor,
        system: TimeSystem,
        entries: Vec<ElementEntry>,
    ) -> Result<StreamInterp, InterpError> {
        for (i, e) in entries.iter().enumerate() {
            if e.duration < 0 {
                return Err(InterpError::InvalidEntries {
                    detail: format!("entry {i} has negative duration {}", e.duration),
                });
            }
            if i > 0 && e.start < entries[i - 1].start {
                return Err(InterpError::InvalidEntries {
                    detail: format!(
                        "entry {i} starts at {} before previous start {}",
                        e.start,
                        entries[i - 1].start
                    ),
                });
            }
            if e.size != e.placement.total_len() {
                return Err(InterpError::InvalidEntries {
                    detail: format!("entry {i} size disagrees with placement"),
                });
            }
            if e.has_checksums() && e.checksums.len() != e.placement.layer_count() {
                return Err(InterpError::InvalidEntries {
                    detail: format!(
                        "entry {i} has {} checksums for {} layers",
                        e.checksums.len(),
                        e.placement.layer_count()
                    ),
                });
            }
        }
        let time_index = TimeIndex::build(&entries);
        let key_index = entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.is_key.then_some(i))
            .collect();
        Ok(StreamInterp {
            descriptor,
            system,
            entries,
            time_index,
            key_index,
        })
    }

    /// The media descriptor of the interpreted object.
    pub fn descriptor(&self) -> &MediaDescriptor {
        &self.descriptor
    }

    /// The stream's discrete time system.
    pub fn system(&self) -> TimeSystem {
        self.system
    }

    /// The element table (start-ordered).
    pub fn entries(&self) -> &[ElementEntry] {
        &self.entries
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the stream has no elements.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for element `i`.
    pub fn entry(&self, i: usize) -> Result<&ElementEntry, InterpError> {
        self.entries.get(i).ok_or(InterpError::NoSuchElement {
            index: i,
            len: self.entries.len(),
        })
    }

    /// The element number active at discrete time `tick` — the "rapid
    /// lookup of the element occurring at a specific time".
    pub fn element_at(&self, tick: i64) -> Result<usize, InterpError> {
        self.time_index
            .lookup(&self.entries, tick)
            .ok_or(InterpError::NoElementAtTime { tick })
    }

    /// The most recent *key* element at or before element `i` — the seek
    /// entry point for interframe-coded streams (decode must start at a
    /// key).
    pub fn key_before(&self, i: usize) -> Result<usize, InterpError> {
        if i >= self.entries.len() {
            return Err(InterpError::NoSuchElement {
                index: i,
                len: self.entries.len(),
            });
        }
        let pos = self.key_index.partition_point(|&k| k <= i);
        if pos == 0 {
            // No key at or before i; treat element 0 as the decode origin.
            Ok(0)
        } else {
            Ok(self.key_index[pos - 1])
        }
    }

    /// Indices of all key elements.
    pub fn key_elements(&self) -> &[usize] {
        &self.key_index
    }

    /// Discrete span `[first start, max end)`, if non-empty.
    pub fn tick_span(&self) -> Option<(i64, i64)> {
        let first = self.entries.first()?;
        let end = self.entries.iter().map(ElementEntry::end).max()?;
        Some((first.start, end))
    }

    /// Total encoded bytes across all elements.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.size).sum()
    }

    /// Reads element `i`'s bytes (all layers) from the BLOB.
    pub fn read_element<S: BlobStore + ?Sized>(
        &self,
        store: &S,
        blob: BlobId,
        i: usize,
    ) -> Result<Vec<u8>, InterpError> {
        let e = self.entry(i)?;
        let mut out = Vec::with_capacity(e.size as usize);
        for &span in e.placement.layers() {
            let mut part = store.read(blob, span)?;
            out.append(&mut part);
        }
        Ok(out)
    }

    /// Reads only the first `layers` layers of element `i` — scalable access
    /// ("ignoring parts of the storage unit").
    pub fn read_element_layers<S: BlobStore + ?Sized>(
        &self,
        store: &S,
        blob: BlobId,
        i: usize,
        layers: usize,
    ) -> Result<Vec<u8>, InterpError> {
        let e = self.entry(i)?;
        if layers == 0 || layers > e.placement.layer_count() {
            return Err(InterpError::NoSuchLayer {
                layer: layers,
                available: e.placement.layer_count(),
            });
        }
        let mut out = Vec::with_capacity(e.placement.prefix_len(layers) as usize);
        for &span in &e.placement.layers()[..layers] {
            let mut part = store.read(blob, span)?;
            out.append(&mut part);
        }
        Ok(out)
    }

    /// Verifies the first `layers` layers of element `i` against the
    /// recorded checksums. Returns `Ok(true)` if all requested layers
    /// verified, `Ok(false)` if the entry carries no checksums (nothing to
    /// check), and [`InterpError::CorruptElement`] on the first mismatch.
    pub fn verify_element_layers<S: BlobStore + ?Sized>(
        &self,
        store: &S,
        blob: BlobId,
        i: usize,
        layers: usize,
    ) -> Result<bool, InterpError> {
        let e = self.entry(i)?;
        if layers == 0 || layers > e.placement.layer_count() {
            return Err(InterpError::NoSuchLayer {
                layer: layers,
                available: e.placement.layer_count(),
            });
        }
        if !e.has_checksums() {
            return Ok(false);
        }
        for (layer, (&span, &expected)) in e.placement.layers()[..layers]
            .iter()
            .zip(&e.checksums)
            .enumerate()
        {
            let actual = tbm_core::crc32(&store.read(blob, span)?);
            if actual != expected {
                return Err(InterpError::CorruptElement {
                    index: i,
                    layer,
                    expected,
                    actual,
                });
            }
        }
        Ok(true)
    }

    /// Verifies all layers of element `i`; see
    /// [`StreamInterp::verify_element_layers`].
    pub fn verify_element<S: BlobStore + ?Sized>(
        &self,
        store: &S,
        blob: BlobId,
        i: usize,
    ) -> Result<bool, InterpError> {
        self.verify_element_layers(store, blob, i, self.entry(i)?.placement.layer_count())
    }

    /// Verifies every element, collecting outcomes instead of stopping at
    /// the first problem — the audit entry point for salvage and fsck-style
    /// tooling.
    pub fn verify_all<S: BlobStore + ?Sized>(&self, store: &S, blob: BlobId) -> VerifyReport {
        let mut report = VerifyReport::default();
        for i in 0..self.entries.len() {
            match self.verify_element(store, blob, i) {
                Ok(true) => report.verified += 1,
                Ok(false) => report.unchecked += 1,
                Err(InterpError::CorruptElement { .. }) => report.corrupt.push(i),
                Err(_) => report.unreadable.push(i),
            }
        }
        report
    }

    /// A derived *view* of the table: keeps only entries selected by
    /// `keep`, renumbering elements — the paper's observation that "a
    /// second interpretation can be formed simply by removing table entries
    /// or changing their element number. The effect resembles video
    /// editing."
    pub fn filtered_view(
        &self,
        mut keep: impl FnMut(usize, &ElementEntry) -> bool,
    ) -> StreamInterp {
        let entries: Vec<ElementEntry> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(i, e)| keep(*i, e))
            .map(|(_, e)| e.clone())
            .collect();
        StreamInterp::new(self.descriptor.clone(), self.system, entries)
            .expect("filtering preserves ordering")
    }

    /// A derived view that renumbers elements per `order` (indices into the
    /// original table): the paper's other alternative-interpretation move,
    /// "changing their element number. The effect resembles video editing
    /// which involves cutting and reordering video sequences."
    ///
    /// Selected elements are re-timed onto a continuous grid preserving
    /// each element's duration (a reordering is only presentable with fresh
    /// start times). Fails if any index is out of range.
    pub fn reordered_view(&self, order: &[usize]) -> Result<StreamInterp, InterpError> {
        let mut entries = Vec::with_capacity(order.len());
        let mut at = self.entries.first().map(|e| e.start).unwrap_or(0);
        for &i in order {
            let src = self.entry(i)?;
            let mut e = src.clone();
            e.start = at;
            at += e.duration;
            entries.push(e);
        }
        StreamInterp::new(self.descriptor.clone(), self.system, entries)
    }

    /// All placement spans, in element order (for layout analysis/tests).
    pub fn all_spans(&self) -> Vec<ByteSpan> {
        self.entries
            .iter()
            .flat_map(|e| e.placement.layers().iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbm_blob::MemBlobStore;
    use tbm_core::MediaKind;

    fn desc() -> MediaDescriptor {
        MediaDescriptor::new(MediaKind::Video)
    }

    fn entries_contiguous(sizes: &[u64]) -> Vec<ElementEntry> {
        let mut at = 0u64;
        sizes
            .iter()
            .enumerate()
            .map(|(i, &z)| {
                let e = ElementEntry::simple(i as i64, 1, ByteSpan::new(at, z));
                at += z;
                e
            })
            .collect()
    }

    #[test]
    fn validation_rejects_bad_tables() {
        let bad_order = vec![
            ElementEntry::simple(5, 1, ByteSpan::new(0, 1)),
            ElementEntry::simple(3, 1, ByteSpan::new(1, 1)),
        ];
        assert!(StreamInterp::new(desc(), TimeSystem::PAL, bad_order).is_err());

        let bad_dur = vec![ElementEntry::simple(0, -1, ByteSpan::new(0, 1))];
        assert!(StreamInterp::new(desc(), TimeSystem::PAL, bad_dur).is_err());

        let mut bad_size = ElementEntry::simple(0, 1, ByteSpan::new(0, 5));
        bad_size.size = 99;
        assert!(StreamInterp::new(desc(), TimeSystem::PAL, vec![bad_size]).is_err());
    }

    #[test]
    fn lookup_and_reads() {
        let mut store = MemBlobStore::new();
        let blob = store.create().unwrap();
        store.append(blob, b"aaabbbbbcc").unwrap();
        let entries = entries_contiguous(&[3, 5, 2]);
        let si = StreamInterp::new(desc(), TimeSystem::PAL, entries).unwrap();
        assert_eq!(si.len(), 3);
        assert_eq!(si.element_at(1).unwrap(), 1);
        assert_eq!(si.read_element(&store, blob, 0).unwrap(), b"aaa");
        assert_eq!(si.read_element(&store, blob, 1).unwrap(), b"bbbbb");
        assert_eq!(si.read_element(&store, blob, 2).unwrap(), b"cc");
        assert!(si.read_element(&store, blob, 3).is_err());
        assert_eq!(si.total_bytes(), 10);
        assert_eq!(si.tick_span(), Some((0, 3)));
    }

    #[test]
    fn key_index_seeks() {
        let mut entries = entries_contiguous(&[4, 4, 4, 4, 4, 4]);
        // Keys at 0 and 3 (an I-frame every 3).
        for (i, e) in entries.iter_mut().enumerate() {
            e.is_key = i % 3 == 0;
        }
        let si = StreamInterp::new(desc(), TimeSystem::PAL, entries).unwrap();
        assert_eq!(si.key_elements(), &[0, 3]);
        assert_eq!(si.key_before(0).unwrap(), 0);
        assert_eq!(si.key_before(2).unwrap(), 0);
        assert_eq!(si.key_before(3).unwrap(), 3);
        assert_eq!(si.key_before(5).unwrap(), 3);
        assert!(si.key_before(6).is_err());
    }

    #[test]
    fn layered_reads() {
        let mut store = MemBlobStore::new();
        let blob = store.create().unwrap();
        store.append(blob, b"BASEENHANCE").unwrap();
        let e = ElementEntry::simple(0, 1, ByteSpan::new(0, 11))
            .with_layers(vec![ByteSpan::new(0, 4), ByteSpan::new(4, 7)])
            .unwrap();
        let si = StreamInterp::new(desc(), TimeSystem::PAL, vec![e]).unwrap();
        assert_eq!(si.read_element_layers(&store, blob, 0, 1).unwrap(), b"BASE");
        assert_eq!(si.read_element(&store, blob, 0).unwrap(), b"BASEENHANCE");
        assert!(matches!(
            si.read_element_layers(&store, blob, 0, 3),
            Err(InterpError::NoSuchLayer { .. })
        ));
        assert!(si.read_element_layers(&store, blob, 0, 0).is_err());
    }

    #[test]
    fn filtered_view_renumbers() {
        let entries = entries_contiguous(&[1, 1, 1, 1]);
        let si = StreamInterp::new(desc(), TimeSystem::PAL, entries).unwrap();
        // Keep even elements only — "removing table entries".
        let view = si.filtered_view(|i, _| i % 2 == 0);
        assert_eq!(view.len(), 2);
        assert_eq!(view.entry(0).unwrap().start, 0);
        assert_eq!(view.entry(1).unwrap().start, 2);
        // Original untouched (non-destructive).
        assert_eq!(si.len(), 4);
    }

    #[test]
    fn reordered_view_renumbers_and_retimes() {
        let entries = entries_contiguous(&[10, 20, 30, 40]);
        let si = StreamInterp::new(desc(), TimeSystem::PAL, entries).unwrap();
        // Reverse order with a repeat — "cutting and reordering".
        let view = si.reordered_view(&[3, 1, 1, 0]).unwrap();
        assert_eq!(view.len(), 4);
        // Continuous re-timing.
        let starts: Vec<i64> = view.entries().iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![0, 1, 2, 3]);
        // Placements reference the original BLOB bytes.
        assert_eq!(
            view.entry(0).unwrap().placement.as_single(),
            si.entry(3).unwrap().placement.as_single()
        );
        assert_eq!(
            view.entry(1).unwrap().placement.as_single(),
            view.entry(2).unwrap().placement.as_single()
        );
        // Original untouched; bad indices rejected.
        assert_eq!(si.len(), 4);
        assert!(si.reordered_view(&[9]).is_err());
    }

    #[test]
    fn verify_detects_corruption() {
        let mut store = MemBlobStore::new();
        let blob = store.create().unwrap();
        store.append(blob, b"BASEENHANCE").unwrap();
        let e = ElementEntry::simple(0, 1, ByteSpan::new(0, 11))
            .with_layers(vec![ByteSpan::new(0, 4), ByteSpan::new(4, 7)])
            .unwrap()
            .with_checksums_from(&store, blob)
            .unwrap();
        let plain = ElementEntry::simple(1, 1, ByteSpan::new(0, 4)); // no checksums
        let si = StreamInterp::new(desc(), TimeSystem::PAL, vec![e, plain]).unwrap();

        assert!(si.verify_element(&store, blob, 0).unwrap());
        assert!(!si.verify_element(&store, blob, 1).unwrap());
        let report = si.verify_all(&store, blob);
        assert!(report.is_clean());
        assert_eq!((report.verified, report.unchecked), (1, 1));

        // Corrupt the enhancement layer only: base-layer verification still
        // passes, full verification names layer 1.
        use tbm_blob::{FaultPlan, FaultyBlobStore};
        let faulty = FaultyBlobStore::new(store, FaultPlan::new(11).with_corruption(1.0));
        assert!(matches!(
            si.verify_element(&faulty, blob, 0),
            Err(InterpError::CorruptElement { index: 0, .. })
        ));
        let report = si.verify_all(&faulty, blob);
        assert!(!report.is_clean());
        assert_eq!(report.corrupt, vec![0]);
    }

    #[test]
    fn verify_mismatched_checksum_count_rejected() {
        let mut e = ElementEntry::simple(0, 1, ByteSpan::new(0, 4));
        e.checksums = vec![1, 2]; // two checksums, one layer
        assert!(StreamInterp::new(desc(), TimeSystem::PAL, vec![e]).is_err());
    }

    #[test]
    fn empty_stream() {
        let si = StreamInterp::new(desc(), TimeSystem::PAL, vec![]).unwrap();
        assert!(si.is_empty());
        assert_eq!(si.tick_span(), None);
        assert!(si.element_at(0).is_err());
    }
}
