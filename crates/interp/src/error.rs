//! Error type for the interpretation layer.

use std::fmt;
use tbm_blob::BlobError;
use tbm_codec::CodecError;

/// Errors raised while building or using interpretations.
#[derive(Debug)]
pub enum InterpError {
    /// Element index out of range for the stream.
    NoSuchElement {
        /// The requested element number.
        index: usize,
        /// Number of elements in the stream.
        len: usize,
    },
    /// No element is active at the requested time.
    NoElementAtTime {
        /// The requested discrete time.
        tick: i64,
    },
    /// The named stream does not exist in the interpretation.
    NoSuchStream {
        /// The requested stream name.
        name: String,
    },
    /// A stream with this name already exists.
    DuplicateStream {
        /// The conflicting name.
        name: String,
    },
    /// Entries violate ordering/validity constraints.
    InvalidEntries {
        /// What was wrong.
        detail: String,
    },
    /// A layered read requested a layer the element does not have.
    NoSuchLayer {
        /// The requested layer.
        layer: usize,
        /// Layers present.
        available: usize,
    },
    /// An element's bytes do not match its recorded checksum.
    CorruptElement {
        /// The element number.
        index: usize,
        /// The corrupt placement layer (0 = base).
        layer: usize,
        /// Checksum recorded in the interpretation table.
        expected: u32,
        /// Checksum of the bytes actually read.
        actual: u32,
    },
    /// Underlying BLOB store failure.
    Blob(BlobError),
    /// Underlying codec failure while materializing elements.
    Codec(CodecError),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::NoSuchElement { index, len } => {
                write!(f, "element {index} out of range (stream has {len})")
            }
            InterpError::NoElementAtTime { tick } => {
                write!(f, "no element active at discrete time {tick}")
            }
            InterpError::NoSuchStream { name } => write!(f, "no stream named `{name}`"),
            InterpError::DuplicateStream { name } => {
                write!(f, "stream `{name}` already present")
            }
            InterpError::InvalidEntries { detail } => {
                write!(f, "invalid interpretation entries: {detail}")
            }
            InterpError::NoSuchLayer { layer, available } => {
                write!(f, "layer {layer} requested but element has {available}")
            }
            InterpError::CorruptElement {
                index,
                layer,
                expected,
                actual,
            } => write!(
                f,
                "element {index} layer {layer} corrupt: checksum {actual:#010x} != recorded {expected:#010x}"
            ),
            InterpError::Blob(e) => write!(f, "blob error: {e}"),
            InterpError::Codec(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for InterpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InterpError::Blob(e) => Some(e),
            InterpError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BlobError> for InterpError {
    fn from(e: BlobError) -> InterpError {
        InterpError::Blob(e)
    }
}

impl From<CodecError> for InterpError {
    fn from(e: CodecError) -> InterpError {
        InterpError::Codec(e)
    }
}
