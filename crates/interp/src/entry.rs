//! Element-table rows.
//!
//! The paper's §4.1 shows interpretation as logical tables with one entry
//! per element: `video1(elementNumber, elementSize, blobPlacement)` for the
//! homogeneous variable-size case, extended with `startTime, duration,
//! elementDescriptor` for heterogeneous/non-continuous streams. An
//! [`ElementEntry`] is one such row; the element number is its position in
//! the stream's entry vector.

use tbm_blob::{BlobError, BlobStore, ByteSpan};
use tbm_core::{crc32, BlobId, ElementDescriptor};

/// Where an element's encoded bytes live in the BLOB.
///
/// Most layouts use a single span. Scalable layouts (paper §2.2) place an
/// element as several layers — reading fewer layers is "ignoring parts of
/// the storage unit" — so placement is a small span list, layer 0 first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    spans: Vec<ByteSpan>,
}

impl Placement {
    /// A single-span placement.
    pub fn single(span: ByteSpan) -> Placement {
        Placement { spans: vec![span] }
    }

    /// A layered placement; layer 0 (base) first. Must be non-empty.
    pub fn layered(spans: Vec<ByteSpan>) -> Option<Placement> {
        if spans.is_empty() {
            None
        } else {
            Some(Placement { spans })
        }
    }

    /// All layers, base first.
    pub fn layers(&self) -> &[ByteSpan] {
        &self.spans
    }

    /// Number of layers (≥ 1).
    pub fn layer_count(&self) -> usize {
        self.spans.len()
    }

    /// Total bytes across all layers.
    pub fn total_len(&self) -> u64 {
        self.spans.iter().map(|s| s.len).sum()
    }

    /// Bytes in the first `layers` layers.
    pub fn prefix_len(&self, layers: usize) -> u64 {
        self.spans.iter().take(layers).map(|s| s.len).sum()
    }

    /// The single span, when the placement is unlayered.
    pub fn as_single(&self) -> Option<ByteSpan> {
        if self.spans.len() == 1 {
            Some(self.spans[0])
        } else {
            None
        }
    }
}

/// One row of an interpretation table.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementEntry {
    /// The element's start time `sᵢ` (discrete, in the stream's system).
    pub start: i64,
    /// The element's duration `dᵢ ≥ 0`.
    pub duration: i64,
    /// Size of the encoded element in bytes (sum of placement layers).
    pub size: u64,
    /// Placement of the element's bytes in the BLOB.
    pub placement: Placement,
    /// Per-element descriptor; `None` for homogeneous streams whose element
    /// attributes are "subsumed by the media descriptors" (paper §4.1).
    pub descriptor: Option<ElementDescriptor>,
    /// Whether this element is a *key* ("sync sample"): decodable without
    /// reference to other elements. Drives the key-element index.
    pub is_key: bool,
    /// CRC32 of each placement layer's bytes, base layer first. Empty means
    /// no checksums were recorded (legacy tables); non-empty must have one
    /// checksum per layer. Per-layer (rather than per-element) checksums let
    /// a degraded base-only read still be verified.
    pub checksums: Vec<u32>,
}

impl ElementEntry {
    /// A key element with a single placement span.
    pub fn simple(start: i64, duration: i64, span: ByteSpan) -> ElementEntry {
        ElementEntry {
            start,
            duration,
            size: span.len,
            placement: Placement::single(span),
            descriptor: None,
            is_key: true,
            checksums: Vec::new(),
        }
    }

    /// Marks the entry as a non-key (delta) element.
    pub fn non_key(mut self) -> ElementEntry {
        self.is_key = false;
        self
    }

    /// Attaches an element descriptor.
    pub fn with_descriptor(mut self, d: ElementDescriptor) -> ElementEntry {
        self.descriptor = Some(d);
        self
    }

    /// Replaces the placement with a layered one, updating the size and
    /// discarding any recorded checksums (they no longer match the layers).
    pub fn with_layers(mut self, spans: Vec<ByteSpan>) -> Option<ElementEntry> {
        let placement = Placement::layered(spans)?;
        self.size = placement.total_len();
        self.placement = placement;
        self.checksums.clear();
        Some(self)
    }

    /// Records per-layer checksums; `None` unless there is exactly one
    /// checksum per placement layer.
    pub fn with_checksums(mut self, checksums: Vec<u32>) -> Option<ElementEntry> {
        if checksums.len() != self.placement.layer_count() {
            return None;
        }
        self.checksums = checksums;
        Some(self)
    }

    /// Computes and records per-layer checksums from the element's current
    /// bytes in `store` — for retrofitting tables captured without them.
    pub fn with_checksums_from<S: BlobStore + ?Sized>(
        mut self,
        store: &S,
        blob: BlobId,
    ) -> Result<ElementEntry, BlobError> {
        let mut sums = Vec::with_capacity(self.placement.layer_count());
        for &span in self.placement.layers() {
            sums.push(crc32(&store.read(blob, span)?));
        }
        self.checksums = sums;
        Ok(self)
    }

    /// `true` when per-layer checksums are recorded.
    pub fn has_checksums(&self) -> bool {
        !self.checksums.is_empty()
    }

    /// Discrete end time.
    pub fn end(&self) -> i64 {
        self.start + self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_placement() {
        let e = ElementEntry::simple(10, 1, ByteSpan::new(100, 50));
        assert_eq!(e.size, 50);
        assert_eq!(e.end(), 11);
        assert!(e.is_key);
        assert_eq!(e.placement.as_single(), Some(ByteSpan::new(100, 50)));
        assert_eq!(e.placement.layer_count(), 1);
    }

    #[test]
    fn layered_placement() {
        let e = ElementEntry::simple(0, 1, ByteSpan::new(0, 10))
            .with_layers(vec![ByteSpan::new(0, 10), ByteSpan::new(10, 30)])
            .unwrap();
        assert_eq!(e.size, 40);
        assert_eq!(e.placement.layer_count(), 2);
        assert_eq!(e.placement.prefix_len(1), 10);
        assert_eq!(e.placement.total_len(), 40);
        assert_eq!(e.placement.as_single(), None);
        assert!(Placement::layered(vec![]).is_none());
    }

    #[test]
    fn checksums_match_layer_count() {
        let e = ElementEntry::simple(0, 1, ByteSpan::new(0, 10));
        assert!(!e.has_checksums());
        assert!(e.clone().with_checksums(vec![1, 2]).is_none());
        let e = e.with_checksums(vec![0xDEAD_BEEF]).unwrap();
        assert!(e.has_checksums());
        // Re-layering drops the now-stale checksums.
        let e = e
            .with_layers(vec![ByteSpan::new(0, 4), ByteSpan::new(4, 6)])
            .unwrap();
        assert!(!e.has_checksums());
        assert!(e.with_checksums(vec![1, 2]).is_some());
    }

    #[test]
    fn checksums_from_store() {
        use tbm_blob::{BlobStore, MemBlobStore};
        let mut store = MemBlobStore::new();
        let blob = store.create().unwrap();
        store.append(blob, b"BASEENH").unwrap();
        let e = ElementEntry::simple(0, 1, ByteSpan::new(0, 7))
            .with_layers(vec![ByteSpan::new(0, 4), ByteSpan::new(4, 3)])
            .unwrap()
            .with_checksums_from(&store, blob)
            .unwrap();
        assert_eq!(e.checksums, vec![crc32(b"BASE"), crc32(b"ENH")]);
    }

    #[test]
    fn modifiers() {
        let d = ElementDescriptor::from_pairs([("frame kind", "P")]);
        let e = ElementEntry::simple(0, 1, ByteSpan::new(0, 10))
            .non_key()
            .with_descriptor(d.clone());
        assert!(!e.is_key);
        assert_eq!(e.descriptor, Some(d));
    }
}
