//! A BLOB's interpretation: the named set of media objects within it.

use crate::{InterpError, StreamInterp};
use tbm_core::BlobId;

/// Definition 5's mapping from a BLOB to a set of media objects.
///
/// Streams are named the way the paper's Fig. 2/Fig. 4 examples name them
/// (`video1`, `audio1`, …). Alternative interpretations — "only the audio
/// sequence is visible" — are produced as cheap *views* rather than by
/// modifying the original: the paper warns that "modification of an
/// interpretation is questionable … it is probably a better practice if a
/// BLOB has a single, complete, interpretation."
#[derive(Debug, Clone, PartialEq)]
pub struct Interpretation {
    blob: BlobId,
    streams: Vec<(String, StreamInterp)>,
}

impl Interpretation {
    /// Creates an empty interpretation of `blob`.
    pub fn new(blob: BlobId) -> Interpretation {
        Interpretation {
            blob,
            streams: Vec::new(),
        }
    }

    /// The interpreted BLOB.
    pub fn blob(&self) -> BlobId {
        self.blob
    }

    /// Adds a named stream. Names must be unique.
    pub fn add_stream(&mut self, name: &str, stream: StreamInterp) -> Result<(), InterpError> {
        if self.streams.iter().any(|(n, _)| n == name) {
            return Err(InterpError::DuplicateStream {
                name: name.to_owned(),
            });
        }
        self.streams.push((name.to_owned(), stream));
        Ok(())
    }

    /// Looks up a stream by name.
    pub fn stream(&self, name: &str) -> Result<&StreamInterp, InterpError> {
        self.streams
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
            .ok_or_else(|| InterpError::NoSuchStream {
                name: name.to_owned(),
            })
    }

    /// All stream names, in insertion order.
    pub fn stream_names(&self) -> Vec<&str> {
        self.streams.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Iterates `(name, stream)` pairs.
    pub fn streams(&self) -> impl Iterator<Item = (&str, &StreamInterp)> {
        self.streams.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// Number of media objects in the interpretation.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// `true` when no media objects are mapped.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// An alternative interpretation keeping only the named streams — the
    /// paper's "alternative view of the BLOB (e.g., only the audio sequence
    /// is visible)". The original is untouched.
    pub fn view(&self, names: &[&str]) -> Result<Interpretation, InterpError> {
        let mut out = Interpretation::new(self.blob);
        for &name in names {
            let s = self.stream(name)?;
            out.add_stream(name, s.clone())?;
        }
        Ok(out)
    }

    /// Total encoded bytes across all streams (excludes padding and any
    /// unreferenced regions of the BLOB).
    pub fn mapped_bytes(&self) -> u64 {
        self.streams.iter().map(|(_, s)| s.total_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ElementEntry;
    use tbm_blob::ByteSpan;
    use tbm_core::{MediaDescriptor, MediaKind};
    use tbm_time::TimeSystem;

    fn stream(n: usize) -> StreamInterp {
        let entries = (0..n)
            .map(|i| ElementEntry::simple(i as i64, 1, ByteSpan::new(i as u64 * 10, 10)))
            .collect();
        StreamInterp::new(
            MediaDescriptor::new(MediaKind::Video),
            TimeSystem::PAL,
            entries,
        )
        .unwrap()
    }

    #[test]
    fn add_and_lookup() {
        let mut interp = Interpretation::new(BlobId::new(0));
        interp.add_stream("video1", stream(3)).unwrap();
        interp.add_stream("audio1", stream(5)).unwrap();
        assert_eq!(interp.len(), 2);
        assert_eq!(interp.stream_names(), vec!["video1", "audio1"]);
        assert_eq!(interp.stream("video1").unwrap().len(), 3);
        assert!(interp.stream("nope").is_err());
        assert_eq!(interp.mapped_bytes(), 80);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut interp = Interpretation::new(BlobId::new(0));
        interp.add_stream("a", stream(1)).unwrap();
        assert!(matches!(
            interp.add_stream("a", stream(1)),
            Err(InterpError::DuplicateStream { .. })
        ));
    }

    #[test]
    fn audio_only_view() {
        let mut interp = Interpretation::new(BlobId::new(7));
        interp.add_stream("video1", stream(3)).unwrap();
        interp.add_stream("audio1", stream(5)).unwrap();
        let v = interp.view(&["audio1"]).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v.blob(), BlobId::new(7));
        assert!(v.stream("video1").is_err());
        // Original still complete.
        assert_eq!(interp.len(), 2);
        assert!(interp.view(&["ghost"]).is_err());
    }
}
