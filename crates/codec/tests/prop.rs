//! Property tests over the codec stack.

use proptest::prelude::*;
use tbm_codec::adpcm;
use tbm_codec::dct::{self, DctParams};
use tbm_codec::interframe::{decode_order_indices, GopParams};
use tbm_codec::pcm;
use tbm_codec::{BitReader, BitWriter};
use tbm_media::{AudioBuffer, Frame, PixelFormat};

proptest! {
    /// Exp-Golomb codes round-trip for arbitrary signed values.
    #[test]
    fn golomb_roundtrip(values in prop::collection::vec(any::<i32>(), 0..200)) {
        let mut w = BitWriter::new();
        for &v in &values {
            w.put_se(v as i64);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(r.get_se().unwrap(), v as i64);
        }
    }

    /// Raw bit runs round-trip at arbitrary widths.
    #[test]
    fn bits_roundtrip(fields in prop::collection::vec((any::<u64>(), 1u8..=64), 0..60)) {
        let mut w = BitWriter::new();
        for &(v, n) in &fields {
            let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            w.put_bits(masked, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            prop_assert_eq!(r.get_bits(n).unwrap(), masked);
        }
    }

    /// PCM round-trip is exact for arbitrary sample data.
    #[test]
    fn pcm_roundtrip(samples in prop::collection::vec(any::<i16>(), 0..500),
                     channels in 1u16..4) {
        let truncated = samples.len() - samples.len() % channels as usize;
        let buf = AudioBuffer::from_samples(channels, samples[..truncated].to_vec()).unwrap();
        let decoded = pcm::decode(channels, &pcm::encode(&buf)).unwrap();
        prop_assert_eq!(buf, decoded);
    }

    /// ADPCM decode never diverges wildly on arbitrary (even adversarial)
    /// inputs: output length is exact and bounded.
    #[test]
    fn adpcm_decode_is_total(samples in prop::collection::vec(any::<i16>(), 1..2000),
                             block in 16usize..512) {
        let buf = AudioBuffer::from_samples(1, samples).unwrap();
        let blocks = adpcm::encode_blocks(&buf, block);
        let dec = adpcm::decode_blocks(&blocks).unwrap();
        prop_assert_eq!(dec.frames(), buf.frames());
    }

    /// ADPCM block parsing rejects or accepts, never panics, on mutated bytes.
    #[test]
    fn adpcm_parse_is_total(mut bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = adpcm::AdpcmBlock::from_bytes(&bytes);
        // Also mutate a valid block.
        let buf = AudioBuffer::silence(1, 64);
        let mut valid = adpcm::encode_blocks(&buf, 64)[0].to_bytes();
        if !bytes.is_empty() && !valid.is_empty() {
            let i = bytes[0] as usize % valid.len();
            valid[i] ^= 0xFF;
            let _ = adpcm::AdpcmBlock::from_bytes(&valid);
        }
        bytes.clear();
    }

    /// DCT decode on arbitrary bytes never panics.
    #[test]
    fn dct_decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = dct::decode_frame(&bytes);
    }

    /// DCT roundtrip stays within a quality-dependent error bound for
    /// arbitrary small frames.
    #[test]
    fn dct_roundtrip_bounded(seed in any::<u64>(), w in 8u32..40, h in 8u32..40) {
        let src = tbm_media::gen::VideoPattern::Noise(seed).render(0, w, h);
        let enc = dct::encode_frame(&src, DctParams::with_quant(100));
        let dec = dct::decode_frame(&enc).unwrap();
        prop_assert_eq!((dec.width(), dec.height()), (w, h));
        let reference = src.to_format(PixelFormat::Yuv420);
        // Noise at q=100 is harshly quantized; bound is loose but finite.
        let mad = reference.mean_abs_diff(&dec).unwrap();
        prop_assert!(mad < 40.0, "mad {} out of bounds", mad);
    }

    /// Decode order is always a permutation of display order, for any GOP
    /// shape.
    #[test]
    fn decode_order_is_permutation(n in 0usize..200, b in 0usize..5, gop in 1usize..20) {
        let params = GopParams {
            gop_size: gop,
            b_frames: b,
            dct: DctParams::default(),
        };
        let mut order = decode_order_indices(n, params);
        order.sort_unstable();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// Every non-initial display position in decode order appears after an
    /// earlier anchor (keys precede the intermediates they reconstruct).
    #[test]
    fn keys_precede_intermediates(n in 2usize..100, b in 1usize..4) {
        let params = GopParams {
            gop_size: 6,
            b_frames: b,
            dct: DctParams::default(),
        };
        let order = decode_order_indices(n, params);
        let step = b + 1;
        for (pos, &display) in order.iter().enumerate() {
            if display % step != 0 && display / step * step + step < n {
                // A B frame: both bracketing anchors appear earlier in decode order.
                let lo = display / step * step;
                let hi = lo + step;
                let lo_pos = order.iter().position(|&d| d == lo).unwrap();
                let hi_pos = order.iter().position(|&d| d == hi).unwrap();
                prop_assert!(lo_pos < pos && hi_pos < pos,
                    "B frame {} at decode pos {} before anchors", display, pos);
            }
        }
    }

    /// Frame blend used by transitions is monotone in alpha for each byte.
    #[test]
    fn layered_total_exceeds_parts(seed in any::<u64>()) {
        let src = tbm_media::gen::VideoPattern::Noise(seed).render(0, 24, 24);
        let lf = tbm_codec::scalable::encode_layered(&src, DctParams::default());
        prop_assert!(!lf.base.is_empty());
        prop_assert_eq!(lf.total_len(), lf.base.len() + lf.enhancement.len());
        let base = tbm_codec::scalable::decode_base(&lf).unwrap();
        let full = tbm_codec::scalable::decode_full(&lf).unwrap();
        prop_assert_eq!((base.width(), base.height()), (24, 24));
        prop_assert_eq!((full.width(), full.height()), (24, 24));
    }
}

/// A deterministic end-to-end interframe roundtrip on random-seeded content.
#[test]
fn interframe_roundtrip_random_content() {
    let frames: Vec<Frame> = (0..7)
        .map(|i| tbm_media::gen::VideoPattern::Checkerboard(3).render(i, 32, 24))
        .collect();
    let params = GopParams {
        gop_size: 4,
        b_frames: 1,
        dct: DctParams::default(),
    };
    let seq = tbm_codec::interframe::encode_sequence(&frames, params).unwrap();
    let dec = tbm_codec::interframe::decode_sequence(&seq).unwrap();
    assert_eq!(dec.len(), frames.len());
    for (src, d) in frames.iter().zip(&dec) {
        let reference = src.to_format(PixelFormat::Yuv420);
        assert!(reference.mean_abs_diff(d).unwrap() < 12.0);
    }
}
