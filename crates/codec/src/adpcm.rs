//! IMA-style ADPCM with per-block varying parameters.
//!
//! The paper introduces element descriptors with precisely this example:
//!
//! > *"Now consider ADPCM-encoded audio. Some versions of this compression
//! > technique involve a set of encoding parameters that vary over an audio
//! > sequence. These parameters would be part of element descriptors."*
//!
//! Each [`AdpcmBlock`] carries its own predictor and step index — the
//! varying parameters — and exposes them as a
//! [`tbm_core::ElementDescriptor`], making ADPCM streams *heterogeneous* in
//! the Figure 1 taxonomy. The coder itself is the standard IMA algorithm:
//! 4 bits per sample against a 16-bit predictor with an 89-entry step table
//! (4:1 compression).

use crate::CodecError;
use tbm_core::{ElementDescriptor, StreamElement};
use tbm_media::AudioBuffer;

/// The IMA step-size table.
const STEP_TABLE: [i32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// Index adjustment per 4-bit code.
const INDEX_TABLE: [i32; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

/// Per-channel coder state: the "encoding parameters that vary over an audio
/// sequence".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdpcmState {
    /// Current predictor value.
    pub predictor: i16,
    /// Index into the step table.
    pub step_index: u8,
}

impl AdpcmState {
    fn encode_sample(&mut self, sample: i16) -> u8 {
        let step = STEP_TABLE[self.step_index as usize];
        let diff = sample as i32 - self.predictor as i32;
        let mut code = 0u8;
        let mut d = diff;
        if d < 0 {
            code |= 8;
            d = -d;
        }
        // Quantize magnitude against step, 3 magnitude bits.
        let mut temp = step;
        if d >= temp {
            code |= 4;
            d -= temp;
        }
        temp >>= 1;
        if d >= temp {
            code |= 2;
            d -= temp;
        }
        temp >>= 1;
        if d >= temp {
            code |= 1;
        }
        self.decode_sample(code); // update state exactly as the decoder will
        code
    }

    fn decode_sample(&mut self, code: u8) -> i16 {
        let step = STEP_TABLE[self.step_index as usize];
        // Reconstruct difference: (code+0.5)*step/4, integerized.
        let mut diff = step >> 3;
        if code & 4 != 0 {
            diff += step;
        }
        if code & 2 != 0 {
            diff += step >> 1;
        }
        if code & 1 != 0 {
            diff += step >> 2;
        }
        if code & 8 != 0 {
            diff = -diff;
        }
        let v = (self.predictor as i32 + diff).clamp(i16::MIN as i32, i16::MAX as i32);
        self.predictor = v as i16;
        let idx = (self.step_index as i32 + INDEX_TABLE[code as usize]).clamp(0, 88);
        self.step_index = idx as u8;
        v as i16
    }
}

/// One encoded ADPCM block: the timed-stream element.
///
/// The header (per-channel predictor + step index) is the block's *element
/// descriptor*; the body packs two 4-bit codes per byte per channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdpcmBlock {
    channels: u16,
    frames: usize,
    /// Initial state per channel (the varying encoding parameters).
    states: Vec<AdpcmState>,
    /// Packed 4-bit codes, channel-major within each frame pair.
    data: Vec<u8>,
}

impl AdpcmBlock {
    /// The number of sample-frames this block decodes to.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Channel count.
    pub fn channels(&self) -> u16 {
        self.channels
    }

    /// The per-channel entry states — the paper's varying parameters.
    pub fn states(&self) -> &[AdpcmState] {
        &self.states
    }

    /// Serialized size: header (4 bytes per channel + 8) plus packed codes.
    pub fn encoded_len(&self) -> usize {
        8 + self.channels as usize * 4 + self.data.len()
    }

    /// Serializes the block to bytes (header + packed codes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&(self.channels as u32).to_le_bytes());
        out.extend_from_slice(&(self.frames as u32).to_le_bytes());
        for s in &self.states {
            out.extend_from_slice(&s.predictor.to_le_bytes());
            out.push(s.step_index);
            out.push(0); // reserved
        }
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses a block from bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<AdpcmBlock, CodecError> {
        if bytes.len() < 8 {
            return Err(CodecError::malformed("adpcm", "truncated header"));
        }
        let channels = u32::from_le_bytes(bytes[0..4].try_into().expect("len checked")) as u16;
        let frames = u32::from_le_bytes(bytes[4..8].try_into().expect("len checked")) as usize;
        if channels == 0 {
            return Err(CodecError::malformed("adpcm", "zero channels"));
        }
        let header_len = 8 + channels as usize * 4;
        if bytes.len() < header_len {
            return Err(CodecError::malformed("adpcm", "truncated channel states"));
        }
        let mut states = Vec::with_capacity(channels as usize);
        for c in 0..channels as usize {
            let off = 8 + c * 4;
            let predictor = i16::from_le_bytes(bytes[off..off + 2].try_into().expect("len"));
            let step_index = bytes[off + 2];
            if step_index > 88 {
                return Err(CodecError::malformed("adpcm", "step index out of range"));
            }
            states.push(AdpcmState {
                predictor,
                step_index,
            });
        }
        let data = bytes[header_len..].to_vec();
        let expected = packed_len(channels, frames);
        if data.len() != expected {
            return Err(CodecError::malformed(
                "adpcm",
                format!("body is {} bytes, expected {expected}", data.len()),
            ));
        }
        Ok(AdpcmBlock {
            channels,
            frames,
            states,
            data,
        })
    }
}

impl StreamElement for AdpcmBlock {
    fn byte_size(&self) -> u64 {
        self.encoded_len() as u64
    }

    fn descriptor_token(&self) -> u64 {
        // Hash of the varying parameters.
        let mut t: u64 = 0xcbf29ce484222325;
        for s in &self.states {
            t = (t ^ s.predictor as u16 as u64).wrapping_mul(0x100000001b3);
            t = (t ^ s.step_index as u64).wrapping_mul(0x100000001b3);
        }
        t | 1 // never 0: heterogeneity must be observable
    }

    fn element_descriptor(&self) -> ElementDescriptor {
        let mut pairs: Vec<(String, i64)> = Vec::with_capacity(self.states.len() * 2);
        for (c, s) in self.states.iter().enumerate() {
            pairs.push((format!("predictor[{c}]"), s.predictor as i64));
            pairs.push((format!("step index[{c}]"), s.step_index as i64));
        }
        ElementDescriptor::from_pairs(pairs)
    }
}

/// Packed body length for `frames` sample-frames of `channels` channels:
/// 4 bits per sample, rounded up per channel.
fn packed_len(channels: u16, frames: usize) -> usize {
    channels as usize * frames.div_ceil(2)
}

/// Encodes an audio buffer into blocks of `block_frames` sample-frames,
/// carrying coder state across blocks (so the parameters genuinely *vary
/// over the sequence*).
#[allow(clippy::needless_range_loop)] // `c` indexes states, samples and the plane offset together
pub fn encode_blocks(buffer: &AudioBuffer, block_frames: usize) -> Vec<AdpcmBlock> {
    assert!(block_frames > 0, "block size must be positive");
    let channels = buffer.channels();
    let mut states = vec![AdpcmState::default(); channels as usize];
    let mut blocks = Vec::new();
    let total = buffer.frames();
    let mut at = 0usize;
    while at < total {
        let n = block_frames.min(total - at);
        let entry_states = states.clone();
        // Channel-planar packing: all codes of channel 0, then channel 1, …
        let mut data = vec![0u8; packed_len(channels, n)];
        for c in 0..channels as usize {
            let plane_off = c * n.div_ceil(2);
            for i in 0..n {
                let code = states[c].encode_sample(buffer.sample(at + i, c as u16));
                let byte = &mut data[plane_off + i / 2];
                if i % 2 == 0 {
                    *byte = code << 4;
                } else {
                    *byte |= code;
                }
            }
        }
        blocks.push(AdpcmBlock {
            channels,
            frames: n,
            states: entry_states,
            data,
        });
        at += n;
    }
    blocks
}

/// Decodes a sequence of blocks back to PCM.
#[allow(clippy::needless_range_loop)] // parallel indexing into states and data
pub fn decode_blocks(blocks: &[AdpcmBlock]) -> Result<AudioBuffer, CodecError> {
    let channels = match blocks.first() {
        Some(b) => b.channels,
        None => return Ok(AudioBuffer::silence(1, 0)),
    };
    let total: usize = blocks.iter().map(|b| b.frames).sum();
    let mut out = AudioBuffer::silence(channels, total);
    let mut at = 0usize;
    for b in blocks {
        if b.channels != channels {
            return Err(CodecError::malformed(
                "adpcm",
                "channel count changed mid-stream",
            ));
        }
        for c in 0..channels as usize {
            // Each block is self-contained: decode from its own entry state.
            let mut state = b.states[c];
            let plane_off = c * b.frames.div_ceil(2);
            for i in 0..b.frames {
                let byte = b.data[plane_off + i / 2];
                let code = if i % 2 == 0 { byte >> 4 } else { byte & 0x0f };
                out.set_sample(at + i, c as u16, state.decode_sample(code));
            }
        }
        at += b.frames;
    }
    Ok(out)
}

/// Compression ratio of ADPCM against 16-bit PCM for the same content.
pub fn compression_ratio(blocks: &[AdpcmBlock]) -> f64 {
    let pcm: usize = blocks
        .iter()
        .map(|b| b.frames * b.channels as usize * 2)
        .sum();
    let enc: usize = blocks.iter().map(|b| b.encoded_len()).sum();
    if enc == 0 {
        return 0.0;
    }
    pcm as f64 / enc as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbm_media::gen::AudioSignal;

    fn sine(frames: usize, channels: u16) -> AudioBuffer {
        AudioSignal::Sine {
            hz: 440.0,
            amplitude: 12000,
        }
        .generate(0, frames, 44100, channels)
    }

    #[test]
    fn roundtrip_is_close_for_smooth_signals() {
        let src = sine(4410, 1);
        let blocks = encode_blocks(&src, 512);
        let dec = decode_blocks(&blocks).unwrap();
        assert_eq!(dec.frames(), src.frames());
        // SNR check: reconstruction error well below signal power.
        let err_rms: f64 = {
            let sum: f64 = src
                .samples()
                .iter()
                .zip(dec.samples())
                .map(|(&a, &b)| ((a as f64) - (b as f64)).powi(2))
                .sum();
            (sum / src.samples().len() as f64).sqrt()
        };
        let sig_rms = src.rms();
        assert!(
            err_rms < sig_rms / 10.0,
            "ADPCM error too high: err {err_rms:.1} vs signal {sig_rms:.1}"
        );
    }

    #[test]
    fn stereo_channels_independent() {
        let mut src = AudioBuffer::silence(2, 1000);
        for i in 0..1000 {
            src.set_sample(i, 0, ((i as f64 * 0.2).sin() * 8000.0) as i16);
            src.set_sample(i, 1, ((i as f64 * 0.05).cos() * 3000.0) as i16);
        }
        let dec = decode_blocks(&encode_blocks(&src, 256)).unwrap();
        // Each channel approximates its own signal.
        for c in 0..2u16 {
            let mut err = 0f64;
            for i in 0..1000 {
                err += ((src.sample(i, c) as f64) - (dec.sample(i, c) as f64)).powi(2);
            }
            assert!((err / 1000.0).sqrt() < 600.0, "channel {c}");
        }
    }

    #[test]
    fn parameters_vary_over_sequence() {
        // The defining property of the paper's ADPCM example: later blocks
        // enter with different predictor/step parameters.
        let src = sine(4096, 1);
        let blocks = encode_blocks(&src, 512);
        assert!(blocks.len() >= 2);
        assert_ne!(blocks[0].states(), blocks[3].states());
        // So their element descriptors differ -> heterogeneous stream.
        assert_ne!(blocks[0].descriptor_token(), blocks[3].descriptor_token());
        assert_ne!(
            blocks[0].element_descriptor(),
            blocks[3].element_descriptor()
        );
    }

    #[test]
    fn compression_is_near_4_to_1() {
        let src = sine(44100, 2);
        let blocks = encode_blocks(&src, 1024);
        let ratio = compression_ratio(&blocks);
        assert!(ratio > 3.5 && ratio < 4.1, "ratio = {ratio:.2}");
    }

    #[test]
    fn blocks_serialize_roundtrip() {
        let src = sine(1000, 2);
        for b in encode_blocks(&src, 300) {
            let bytes = b.to_bytes();
            assert_eq!(bytes.len(), b.encoded_len());
            let back = AdpcmBlock::from_bytes(&bytes).unwrap();
            assert_eq!(back, b);
        }
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert!(AdpcmBlock::from_bytes(&[]).is_err());
        assert!(AdpcmBlock::from_bytes(&[0; 7]).is_err());
        // Zero channels.
        let mut junk = vec![0u8; 8];
        junk[4] = 1;
        assert!(AdpcmBlock::from_bytes(&junk).is_err());
        // Valid header, wrong body length.
        let src = sine(100, 1);
        let mut bytes = encode_blocks(&src, 100)[0].to_bytes();
        bytes.pop();
        assert!(AdpcmBlock::from_bytes(&bytes).is_err());
        // Step index out of range.
        let mut bytes2 = encode_blocks(&src, 100)[0].to_bytes();
        bytes2[10] = 99;
        assert!(AdpcmBlock::from_bytes(&bytes2).is_err());
    }

    #[test]
    fn odd_frame_counts_pack_correctly() {
        let src = sine(333, 1);
        let dec = decode_blocks(&encode_blocks(&src, 128)).unwrap();
        assert_eq!(dec.frames(), 333);
    }

    #[test]
    fn empty_input() {
        let src = AudioBuffer::silence(2, 0);
        let blocks = encode_blocks(&src, 128);
        assert!(blocks.is_empty());
        assert_eq!(decode_blocks(&blocks).unwrap().frames(), 0);
    }

    #[test]
    fn decoder_is_deterministic_from_block_state() {
        // Decoding a single later block in isolation works because blocks
        // carry their entry state — this is what lets interpretation seek.
        let src = sine(2048, 1);
        let blocks = encode_blocks(&src, 512);
        let all = decode_blocks(&blocks).unwrap();
        let third = decode_blocks(&blocks[2..3]).unwrap();
        assert_eq!(
            &all.samples()[1024..1536],
            third.samples(),
            "block 2 decoded in isolation must match in-sequence decode"
        );
    }
}
