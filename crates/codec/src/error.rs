//! Codec error type.

use std::fmt;

/// Errors raised while encoding or decoding media.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The compressed bitstream ended prematurely or is malformed.
    Malformed {
        /// Which codec rejected the data.
        codec: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// Frame or buffer geometry is unsupported by the codec.
    BadGeometry {
        /// Which codec rejected the data.
        codec: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// A decode referenced a frame that is not available (interframe coding).
    MissingReference {
        /// Decode index of the missing reference.
        wanted: usize,
    },
}

impl CodecError {
    /// Convenience constructor for malformed-bitstream errors.
    pub fn malformed(codec: &'static str, detail: impl Into<String>) -> CodecError {
        CodecError::Malformed {
            codec,
            detail: detail.into(),
        }
    }

    /// Convenience constructor for geometry errors.
    pub fn bad_geometry(codec: &'static str, detail: impl Into<String>) -> CodecError {
        CodecError::BadGeometry {
            codec,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Malformed { codec, detail } => {
                write!(f, "{codec}: malformed bitstream: {detail}")
            }
            CodecError::BadGeometry { codec, detail } => {
                write!(f, "{codec}: unsupported geometry: {detail}")
            }
            CodecError::MissingReference { wanted } => {
                write!(f, "interframe decode missing reference frame {wanted}")
            }
        }
    }
}

impl std::error::Error for CodecError {}
