//! Interframe GOP coder ("MPEG-like") with out-of-order element placement.
//!
//! The paper's §2.2 lists *out-of-order elements* among the interpretation
//! issues:
//!
//! > *"Some compression techniques, such as MPEG, exploit similarities
//! > between consecutive elements. 'Key' elements are identified from which
//! > intermediate elements can be constructed by interpolation. Because key
//! > elements are needed at an early stage during decoding, they may be
//! > placed in storage units prior to the intermediate elements. For
//! > example, with a sequence of four elements where the first and last are
//! > 'keys,' the placement order could be 1,4,2,3."*
//!
//! This coder reproduces that structure with real prediction:
//!
//! * **I frames** — intraframe (DCT) coded, no references.
//! * **P frames** — residual against the most recent reconstructed anchor.
//! * **B frames** — residual against the *average* of the two bracketing
//!   anchors ("constructed by interpolation"); they decode *after* the later
//!   anchor, so decode order ≠ display order.
//!
//! With two B frames per anchor gap, a 4-frame sequence whose first and
//! last frames are anchors encodes in exactly the paper's `1,4,2,3` order
//! (see [`decode_order_indices`] and its test).

use crate::dct::{decode_plane_i16, encode_plane_i16, quant_matrices, DctParams};
use crate::{BitReader, BitWriter, CodecError};
use tbm_core::{ElementDescriptor, StreamElement};
use tbm_media::{Frame, PixelFormat};

/// Frame kinds in the GOP structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Intraframe-coded key ("key elements" in the paper's wording).
    I,
    /// Predicted from the previous anchor.
    P,
    /// Interpolated between two anchors.
    B,
}

impl FrameKind {
    /// Single-letter name.
    pub fn letter(self) -> char {
        match self {
            FrameKind::I => 'I',
            FrameKind::P => 'P',
            FrameKind::B => 'B',
        }
    }
}

/// GOP structure parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GopParams {
    /// Display distance between I frames (≥ 1). Anchors at multiples of
    /// `b_frames + 1` that are also multiples of `gop_size` are I; other
    /// anchors are P.
    pub gop_size: usize,
    /// Number of B frames between consecutive anchors (0 disables
    /// reordering).
    pub b_frames: usize,
    /// Transform/quantizer parameters shared by all frames.
    pub dct: DctParams,
}

impl Default for GopParams {
    fn default() -> GopParams {
        GopParams {
            gop_size: 12,
            b_frames: 2,
            dct: DctParams::default(),
        }
    }
}

/// One encoded frame of a sequence, tagged with its display position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedVideoFrame {
    /// I/P/B.
    pub kind: FrameKind,
    /// Position in *presentation* order.
    pub display_index: usize,
    /// Entropy-coded plane data.
    pub data: Vec<u8>,
}

impl StreamElement for EncodedVideoFrame {
    fn byte_size(&self) -> u64 {
        self.data.len() as u64 + 1
    }

    fn descriptor_token(&self) -> u64 {
        match self.kind {
            FrameKind::I => 1,
            FrameKind::P => 2,
            FrameKind::B => 3,
        }
    }

    fn element_descriptor(&self) -> ElementDescriptor {
        ElementDescriptor::from_pairs([("frame kind", self.kind.letter().to_string())])
    }
}

/// An encoded sequence: geometry plus frames in **decode order**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedSequence {
    /// Frame width.
    pub width: u32,
    /// Frame height.
    pub height: u32,
    /// GOP parameters used.
    pub params: GopParams,
    /// Frames in decode (storage) order.
    pub frames: Vec<EncodedVideoFrame>,
}

/// The centered YUV planes of one frame.
#[derive(Clone)]
struct Planes {
    y: Vec<i16>,
    u: Vec<i16>,
    v: Vec<i16>,
}

fn frame_to_planes(frame: &Frame) -> Planes {
    let f = frame.to_format(PixelFormat::Yuv420);
    let w = f.width() as usize;
    let h = f.height() as usize;
    let (cw, ch) = (w.div_ceil(2), h.div_ceil(2));
    let d = f.data();
    let n = w * h;
    let center = |b: &[u8]| -> Vec<i16> { b.iter().map(|&x| x as i16 - 128).collect() };
    Planes {
        y: center(&d[..n]),
        u: center(&d[n..n + cw * ch]),
        v: center(&d[n + cw * ch..]),
    }
}

fn planes_to_frame(p: &Planes, w: u32, h: u32) -> Frame {
    let mut data = Vec::with_capacity(PixelFormat::Yuv420.byte_len(w, h));
    for plane in [&p.y, &p.u, &p.v] {
        data.extend(plane.iter().map(|&v| (v + 128).clamp(0, 255) as u8));
    }
    Frame::from_raw(w, h, PixelFormat::Yuv420, data).expect("plane sizes consistent")
}

fn diff(a: &[i16], b: &[i16]) -> Vec<i16> {
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

fn add_clamped(base: &[i16], delta: &[i16]) -> Vec<i16> {
    base.iter()
        .zip(delta)
        .map(|(&x, &y)| (x + y).clamp(-128, 127))
        .collect()
}

fn average(a: &Planes, b: &Planes) -> Planes {
    let avg = |x: &[i16], y: &[i16]| -> Vec<i16> {
        x.iter()
            .zip(y)
            .map(|(&a, &b)| ((a as i32 + b as i32) / 2) as i16)
            .collect()
    };
    Planes {
        y: avg(&a.y, &b.y),
        u: avg(&a.u, &b.u),
        v: avg(&a.v, &b.v),
    }
}

struct PlaneCoder {
    w: usize,
    h: usize,
    cw: usize,
    ch: usize,
    lq: [i32; 64],
    cq: [i32; 64],
}

impl PlaneCoder {
    fn new(w: usize, h: usize, dct: DctParams) -> PlaneCoder {
        let (lq, cq) = quant_matrices(dct);
        PlaneCoder {
            w,
            h,
            cw: w.div_ceil(2),
            ch: h.div_ceil(2),
            lq,
            cq,
        }
    }

    fn encode(&self, p: &Planes) -> Vec<u8> {
        let mut w = BitWriter::new();
        encode_plane_i16(&p.y, self.w, self.h, &self.lq, &mut w);
        encode_plane_i16(&p.u, self.cw, self.ch, &self.cq, &mut w);
        encode_plane_i16(&p.v, self.cw, self.ch, &self.cq, &mut w);
        w.into_bytes()
    }

    fn decode(&self, data: &[u8]) -> Result<Planes, CodecError> {
        let mut r = BitReader::new(data);
        Ok(Planes {
            y: decode_plane_i16(&mut r, self.w, self.h, &self.lq)?,
            u: decode_plane_i16(&mut r, self.cw, self.ch, &self.cq)?,
            v: decode_plane_i16(&mut r, self.cw, self.ch, &self.cq)?,
        })
    }

    /// Encode, then reconstruct as the decoder will see it (quantization in
    /// the loop — references must be the *reconstructed* planes, or encoder
    /// and decoder drift).
    fn encode_recon(&self, p: &Planes) -> (Vec<u8>, Planes) {
        let data = self.encode(p);
        let recon = self.decode(&data).expect("own bitstream decodes");
        (data, recon)
    }
}

/// The display indices of a `count`-frame sequence in decode order.
pub fn decode_order_indices(count: usize, params: GopParams) -> Vec<usize> {
    let step = params.b_frames + 1;
    let mut order = Vec::with_capacity(count);
    let mut a = 0usize;
    let mut prev_anchor: Option<usize> = None;
    while a < count {
        order.push(a);
        if let Some(p) = prev_anchor {
            for b in p + 1..a {
                order.push(b);
            }
        }
        prev_anchor = Some(a);
        a += step;
    }
    // Tail frames after the final anchor form a P chain in display order.
    if let Some(p) = prev_anchor {
        for t in p + 1..count {
            order.push(t);
        }
    }
    order
}

/// Encodes frames (display order) into an [`EncodedSequence`] (decode
/// order). All frames must share one geometry.
#[allow(clippy::needless_range_loop)] // display indices address the planes table
pub fn encode_sequence(frames: &[Frame], params: GopParams) -> Result<EncodedSequence, CodecError> {
    let first = match frames.first() {
        Some(f) => f,
        None => {
            return Ok(EncodedSequence {
                width: 0,
                height: 0,
                params,
                frames: Vec::new(),
            })
        }
    };
    let (w, h) = (first.width(), first.height());
    if frames.iter().any(|f| f.width() != w || f.height() != h) {
        return Err(CodecError::bad_geometry(
            "interframe",
            "all frames in a sequence must share geometry",
        ));
    }
    let coder = PlaneCoder::new(w as usize, h as usize, params.dct);
    let step = params.b_frames + 1;
    let gop = params.gop_size.max(1);

    let planes: Vec<Planes> = frames.iter().map(frame_to_planes).collect();
    let mut out = Vec::with_capacity(frames.len());

    let mut prev_anchor_recon: Option<Planes> = None;
    let mut prev_anchor_idx: Option<usize> = None;
    let mut a = 0usize;
    while a < frames.len() {
        // Anchor: I at GOP boundaries, else P.
        let (kind, residual_base) = if a.is_multiple_of(gop) || prev_anchor_recon.is_none() {
            (FrameKind::I, None)
        } else {
            (FrameKind::P, prev_anchor_recon.as_ref())
        };
        let target = match residual_base {
            None => planes[a].clone(),
            Some(base) => Planes {
                y: diff(&planes[a].y, &base.y),
                u: diff(&planes[a].u, &base.u),
                v: diff(&planes[a].v, &base.v),
            },
        };
        let (data, recon_residual) = coder.encode_recon(&target);
        let recon = match residual_base {
            None => recon_residual,
            Some(base) => Planes {
                y: add_clamped(&base.y, &recon_residual.y),
                u: add_clamped(&base.u, &recon_residual.u),
                v: add_clamped(&base.v, &recon_residual.v),
            },
        };
        out.push(EncodedVideoFrame {
            kind,
            display_index: a,
            data,
        });
        // B frames between the previous anchor and this one.
        if let (Some(pa), Some(pi)) = (prev_anchor_recon.as_ref(), prev_anchor_idx) {
            let interp = average(pa, &recon);
            for b in pi + 1..a {
                let resid = Planes {
                    y: diff(&planes[b].y, &interp.y),
                    u: diff(&planes[b].u, &interp.u),
                    v: diff(&planes[b].v, &interp.v),
                };
                let (bdata, _) = coder.encode_recon(&resid);
                out.push(EncodedVideoFrame {
                    kind: FrameKind::B,
                    display_index: b,
                    data: bdata,
                });
            }
        }
        prev_anchor_recon = Some(recon);
        prev_anchor_idx = Some(a);
        a += step;
    }
    // Tail: P chain after the final anchor.
    if let (Some(mut last), Some(pi)) = (prev_anchor_recon, prev_anchor_idx) {
        for t in pi + 1..frames.len() {
            let resid = Planes {
                y: diff(&planes[t].y, &last.y),
                u: diff(&planes[t].u, &last.u),
                v: diff(&planes[t].v, &last.v),
            };
            let (data, recon_residual) = coder.encode_recon(&resid);
            last = Planes {
                y: add_clamped(&last.y, &recon_residual.y),
                u: add_clamped(&last.u, &recon_residual.u),
                v: add_clamped(&last.v, &recon_residual.v),
            };
            out.push(EncodedVideoFrame {
                kind: FrameKind::P,
                display_index: t,
                data,
            });
        }
    }
    Ok(EncodedSequence {
        width: w,
        height: h,
        params,
        frames: out,
    })
}

/// Decodes a sequence back to frames in **display order**.
pub fn decode_sequence(seq: &EncodedSequence) -> Result<Vec<Frame>, CodecError> {
    if seq.frames.is_empty() {
        return Ok(Vec::new());
    }
    let coder = PlaneCoder::new(seq.width as usize, seq.height as usize, seq.params.dct);
    let count = seq.frames.len();
    let mut display: Vec<Option<Frame>> = vec![None; count];
    let mut prev_anchor: Option<Planes> = None;
    let mut cur_anchor: Option<Planes> = None;
    let mut last_ref: Option<Planes> = None; // most recent I/P reconstruction
    for ef in &seq.frames {
        let residual = coder.decode(&ef.data)?;
        let recon = match ef.kind {
            FrameKind::I => residual,
            FrameKind::P => {
                let base = last_ref.as_ref().ok_or(CodecError::MissingReference {
                    wanted: ef.display_index,
                })?;
                Planes {
                    y: add_clamped(&base.y, &residual.y),
                    u: add_clamped(&base.u, &residual.u),
                    v: add_clamped(&base.v, &residual.v),
                }
            }
            FrameKind::B => {
                let (pa, ca) = match (prev_anchor.as_ref(), cur_anchor.as_ref()) {
                    (Some(p), Some(c)) => (p, c),
                    _ => {
                        return Err(CodecError::MissingReference {
                            wanted: ef.display_index,
                        })
                    }
                };
                let interp = average(pa, ca);
                Planes {
                    y: add_clamped(&interp.y, &residual.y),
                    u: add_clamped(&interp.u, &residual.u),
                    v: add_clamped(&interp.v, &residual.v),
                }
            }
        };
        if ef.kind != FrameKind::B {
            prev_anchor = cur_anchor.take();
            cur_anchor = Some(recon.clone());
            last_ref = Some(recon.clone());
        }
        if ef.display_index >= count {
            return Err(CodecError::malformed(
                "interframe",
                "display index out of range",
            ));
        }
        display[ef.display_index] = Some(planes_to_frame(&recon, seq.width, seq.height));
    }
    display
        .into_iter()
        .enumerate()
        .map(|(i, f)| {
            f.ok_or_else(|| CodecError::malformed("interframe", format!("frame {i} missing")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbm_media::gen::VideoPattern;

    fn clip(n: usize) -> Vec<Frame> {
        (0..n as u64)
            .map(|i| VideoPattern::MovingBar.render(i, 48, 32))
            .collect()
    }

    fn default_params() -> GopParams {
        GopParams {
            gop_size: 6,
            b_frames: 2,
            dct: DctParams::default(),
        }
    }

    #[test]
    fn paper_placement_order_1_4_2_3() {
        // "with a sequence of four elements where the first and last are
        // 'keys', the placement order could be 1,4,2,3" (1-indexed).
        let order = decode_order_indices(4, default_params());
        assert_eq!(order, vec![0, 3, 1, 2]);
        let one_indexed: Vec<_> = order.iter().map(|i| i + 1).collect();
        assert_eq!(one_indexed, vec![1, 4, 2, 3]);
    }

    #[test]
    fn decode_order_covers_all_frames_once() {
        for n in [1, 2, 3, 4, 7, 12, 13] {
            let mut order = decode_order_indices(n, default_params());
            order.sort_unstable();
            assert_eq!(order, (0..n).collect::<Vec<_>>(), "n = {n}");
        }
    }

    #[test]
    fn no_b_frames_means_display_order() {
        let p = GopParams {
            b_frames: 0,
            ..default_params()
        };
        assert_eq!(decode_order_indices(5, p), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn roundtrip_reconstructs_all_frames() {
        let frames = clip(8);
        let seq = encode_sequence(&frames, default_params()).unwrap();
        assert_eq!(seq.frames.len(), 8);
        let decoded = decode_sequence(&seq).unwrap();
        assert_eq!(decoded.len(), 8);
        for (i, (src, dec)) in frames.iter().zip(&decoded).enumerate() {
            let reference = src.to_format(PixelFormat::Yuv420);
            let mad = reference.mean_abs_diff(dec).unwrap();
            assert!(mad < 8.0, "frame {i}: mad {mad:.2}");
        }
    }

    #[test]
    fn storage_order_matches_decode_order_indices() {
        let frames = clip(10);
        let params = default_params();
        let seq = encode_sequence(&frames, params).unwrap();
        let stored: Vec<_> = seq.frames.iter().map(|f| f.display_index).collect();
        assert_eq!(stored, decode_order_indices(10, params));
    }

    #[test]
    fn frame_kinds_follow_gop_pattern() {
        let frames = clip(13);
        let seq = encode_sequence(&frames, default_params()).unwrap();
        let kind_of = |display: usize| {
            seq.frames
                .iter()
                .find(|f| f.display_index == display)
                .unwrap()
                .kind
        };
        assert_eq!(kind_of(0), FrameKind::I);
        assert_eq!(kind_of(3), FrameKind::P);
        assert_eq!(kind_of(6), FrameKind::I); // gop_size = 6
        assert_eq!(kind_of(1), FrameKind::B);
        assert_eq!(kind_of(2), FrameKind::B);
    }

    #[test]
    fn interframe_beats_intraframe_on_slow_content() {
        // The paper: MPEG-style coding "exploit[s] similarities between
        // consecutive elements" and so outperforms JPEG-per-frame for a
        // given quality. MovingBar changes slowly frame-to-frame.
        let frames = clip(12);
        let inter = encode_sequence(&frames, default_params()).unwrap();
        let inter_bytes: usize = inter.frames.iter().map(|f| f.data.len()).sum();
        let intra_bytes: usize = frames
            .iter()
            .map(|f| crate::dct::encode_frame(f, DctParams::default()).len())
            .sum();
        assert!(
            inter_bytes < intra_bytes,
            "interframe {inter_bytes} should beat intraframe {intra_bytes}"
        );
    }

    #[test]
    fn element_descriptors_expose_frame_kind() {
        let frames = clip(4);
        let seq = encode_sequence(&frames, default_params()).unwrap();
        let i = &seq.frames[0];
        let b = seq.frames.iter().find(|f| f.kind == FrameKind::B).unwrap();
        assert_ne!(i.descriptor_token(), b.descriptor_token());
        assert_eq!(
            i.element_descriptor(),
            ElementDescriptor::from_pairs([("frame kind", "I")])
        );
    }

    #[test]
    fn mismatched_geometry_rejected() {
        let mut frames = clip(2);
        frames.push(VideoPattern::MovingBar.render(2, 24, 16));
        assert!(matches!(
            encode_sequence(&frames, default_params()),
            Err(CodecError::BadGeometry { .. })
        ));
    }

    #[test]
    fn empty_sequence() {
        let seq = encode_sequence(&[], default_params()).unwrap();
        assert!(seq.frames.is_empty());
        assert!(decode_sequence(&seq).unwrap().is_empty());
    }

    #[test]
    fn b_frame_without_anchors_rejected() {
        let frames = clip(4);
        let mut seq = encode_sequence(&frames, default_params()).unwrap();
        // Corrupt: make the stream start with a B frame.
        seq.frames.swap(0, 2);
        assert!(decode_sequence(&seq).is_err());
    }

    #[test]
    fn single_frame_is_an_i_frame() {
        let frames = clip(1);
        let seq = encode_sequence(&frames, default_params()).unwrap();
        assert_eq!(seq.frames.len(), 1);
        assert_eq!(seq.frames[0].kind, FrameKind::I);
        assert_eq!(decode_sequence(&seq).unwrap().len(), 1);
    }
}
