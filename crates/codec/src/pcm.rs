//! Uncompressed 16-bit PCM.
//!
//! PCM is the paper's example of a *uniform* stream: "all elements have the
//! same form (16 bit PCM samples)". The codec is a trivial byte layout, but
//! routing it through the same interface as ADPCM keeps the interpretation
//! layer codec-agnostic.

use crate::CodecError;
use tbm_media::AudioBuffer;

/// Encodes an audio buffer as interleaved little-endian 16-bit PCM bytes.
pub fn encode(buffer: &AudioBuffer) -> Vec<u8> {
    buffer.to_bytes()
}

/// Decodes interleaved little-endian 16-bit PCM bytes.
pub fn decode(channels: u16, bytes: &[u8]) -> Result<AudioBuffer, CodecError> {
    AudioBuffer::from_bytes(channels, bytes).ok_or_else(|| {
        CodecError::malformed(
            "pcm",
            format!(
                "{} bytes is not a whole number of {channels}-channel 16-bit frames",
                bytes.len()
            ),
        )
    })
}

/// Bytes per sample-frame for 16-bit PCM with `channels` channels.
pub fn bytes_per_frame(channels: u16) -> u64 {
    channels as u64 * 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_identity() {
        let buf = AudioBuffer::from_samples(2, vec![0, 1, -1, i16::MAX, i16::MIN, 42]).unwrap();
        let bytes = encode(&buf);
        assert_eq!(bytes.len(), 12);
        assert_eq!(decode(2, &bytes).unwrap(), buf);
    }

    #[test]
    fn stereo_cd_rates() {
        // CD audio: 2 ch × 2 B = 4 B per frame; 44100 frames/s = 176400 B/s.
        assert_eq!(bytes_per_frame(2), 4);
        assert_eq!(bytes_per_frame(1), 2);
    }

    #[test]
    fn misaligned_input_rejected() {
        assert!(decode(2, &[0, 1, 2]).is_err());
        assert!(decode(2, &[0, 1]).is_err()); // one sample, but two channels
        assert!(decode(1, &[0, 1]).is_ok());
    }
}
