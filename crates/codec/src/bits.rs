//! Bit-level I/O and exponential-Golomb entropy codes.
//!
//! The DCT and interframe coders serialize quantized coefficients with
//! unsigned/signed exp-Golomb codes — a simple, real variable-length
//! entropy code (the one H.264 uses for side data). Variable-length output
//! is what makes encoded frame sizes content-dependent, which in turn is
//! why interpretation needs explicit placement tables.

use crate::CodecError;

/// Most-significant-bit-first bit writer.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final byte (0–7).
    used: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Appends a single bit.
    pub fn put_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= 1 << (7 - self.used);
        }
        self.used = (self.used + 1) % 8;
    }

    /// Appends the low `count` bits of `value`, MSB first. `count ≤ 64`.
    pub fn put_bits(&mut self, value: u64, count: u8) {
        debug_assert!(count <= 64);
        for i in (0..count).rev() {
            self.put_bit((value >> i) & 1 == 1);
        }
    }

    /// Appends an unsigned exp-Golomb code for `value`.
    pub fn put_ue(&mut self, value: u64) {
        let x = value + 1;
        let bits = 64 - x.leading_zeros() as u8; // position of MSB, ≥ 1
                                                 // (bits-1) zeros, then the `bits` bits of x.
        for _ in 0..bits - 1 {
            self.put_bit(false);
        }
        self.put_bits(x, bits);
    }

    /// Appends a signed exp-Golomb code (zig-zag mapped).
    pub fn put_se(&mut self, value: i64) {
        let mapped = if value <= 0 {
            (-value as u64) * 2
        } else {
            (value as u64) * 2 - 1
        };
        self.put_ue(mapped);
    }

    /// Number of complete bytes the writer would produce.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Finishes, zero-padding the final partial byte.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Most-significant-bit-first bit reader.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }

    /// Reads one bit.
    pub fn get_bit(&mut self) -> Result<bool, CodecError> {
        if self.pos >= self.bytes.len() * 8 {
            return Err(CodecError::malformed("bitreader", "read past end"));
        }
        let byte = self.bytes[self.pos / 8];
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `count` bits, MSB first. `count ≤ 64`.
    pub fn get_bits(&mut self, count: u8) -> Result<u64, CodecError> {
        debug_assert!(count <= 64);
        let mut v = 0u64;
        for _ in 0..count {
            v = (v << 1) | self.get_bit()? as u64;
        }
        Ok(v)
    }

    /// Reads an unsigned exp-Golomb code.
    pub fn get_ue(&mut self) -> Result<u64, CodecError> {
        let mut zeros = 0u8;
        while !self.get_bit()? {
            zeros += 1;
            if zeros > 63 {
                return Err(CodecError::malformed(
                    "bitreader",
                    "exp-golomb run too long",
                ));
            }
        }
        let rest = self.get_bits(zeros)?;
        Ok(((1u64 << zeros) | rest) - 1)
    }

    /// Reads a signed exp-Golomb code.
    pub fn get_se(&mut self) -> Result<i64, CodecError> {
        let mapped = self.get_ue()?;
        Ok(if mapped % 2 == 0 {
            -((mapped / 2) as i64)
        } else {
            mapped.div_ceil(2) as i64
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bit(true);
        w.put_bits(0b1011, 4);
        w.put_bits(0x3FF, 10);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(r.get_bit().unwrap());
        assert_eq!(r.get_bits(4).unwrap(), 0b1011);
        assert_eq!(r.get_bits(10).unwrap(), 0x3FF);
    }

    #[test]
    fn ue_small_values() {
        // Canonical exp-Golomb: 0→"1", 1→"010", 2→"011", 3→"00100"…
        let mut w = BitWriter::new();
        for v in 0..10u64 {
            w.put_ue(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for v in 0..10u64 {
            assert_eq!(r.get_ue().unwrap(), v);
        }
    }

    #[test]
    fn ue_zero_is_one_bit() {
        let mut w = BitWriter::new();
        w.put_ue(0);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000]);
    }

    #[test]
    fn se_roundtrip_and_ordering() {
        let values = [0i64, 1, -1, 2, -2, 100, -100, 32767, -32768];
        let mut w = BitWriter::new();
        for &v in &values {
            w.put_se(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.get_se().unwrap(), v);
        }
    }

    #[test]
    fn large_ue_values() {
        let values = [u32::MAX as u64, 1 << 40, (1 << 62) - 2];
        let mut w = BitWriter::new();
        for &v in &values {
            w.put_ue(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.get_ue().unwrap(), v);
        }
    }

    #[test]
    fn reading_past_end_is_an_error() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.get_bits(8).unwrap(), 0xFF);
        assert!(r.get_bit().is_err());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_ue_is_an_error_not_a_panic() {
        // A long run of zeros with no terminator.
        let mut r = BitReader::new(&[0x00]);
        assert!(r.get_ue().is_err());
    }

    #[test]
    fn padding_bits_are_zero() {
        let mut w = BitWriter::new();
        w.put_bit(true);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000]);
    }
}
