//! # tbm-codec — real codecs for the reproduction
//!
//! The paper's modeling issues — variable element sizes, heterogeneous
//! element descriptors, out-of-order placement, scalability, descriptive
//! quality factors — all originate in *compression*. This crate implements
//! working software codecs so those properties arise genuinely rather than
//! being faked (see DESIGN.md's substitution record):
//!
//! * [`pcm`] — uncompressed 16-bit PCM (the CD-audio media type; uniform
//!   streams).
//! * [`adpcm`] — an IMA-style ADPCM coder whose per-block predictor/step
//!   parameters are exactly the paper's example of *element descriptors*
//!   on heterogeneous streams.
//! * [`dct`] — a block-DCT intraframe coder ("JPEG-like"): 8×8 DCT,
//!   quality-scaled quantization, zig-zag, RLE + exp-Golomb entropy coding.
//!   Produces genuinely variable-sized frames, driving Fig. 2's
//!   interpretation tables.
//! * [`interframe`] — a GOP coder ("MPEG-like") with I/P/B frames whose
//!   decode order differs from presentation order — the paper's
//!   "out-of-order elements" placement `1,4,2,3`.
//! * [`scalable`] — a two-layer (base + enhancement) coder; dropping the
//!   enhancement layer is the paper's scalability: "bandwidth can be saved
//!   … if the video sequence is 'scaled' to a lower resolution by ignoring
//!   parts of the storage unit."
//! * [`quality`] — the mapping from descriptive [`tbm_core::QualityFactor`]s
//!   to low-level encoder parameters, which the paper insists must not be
//!   visible at the data-modeling level.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod adpcm;
mod bits;
pub mod dct;
mod error;
pub mod interframe;
pub mod pcm;
pub mod quality;
pub mod scalable;

pub use bits::{BitReader, BitWriter};
pub use error::CodecError;
