//! Two-layer scalable ("layered") coding.
//!
//! The paper's §2.2 lists *scalability* among the interpretation issues:
//!
//! > *"Certain representations for time-based media … allow presentation at
//! > different levels of detail. … bandwidth can be saved and processing
//! > reduced if the video sequence is 'scaled' to a lower resolution by
//! > ignoring parts of the storage unit."*
//!
//! [`encode_layered`] produces exactly that structure: a **base layer**
//! (the frame downsampled 2× and intraframe-coded) followed by an
//! **enhancement layer** (the residual between the source and the upsampled
//! base, intraframe-coded). A reader that stops after the base layer gets a
//! legitimate low-resolution picture; reading both layers restores full
//! fidelity. Interpretation records the two layers as separate spans of the
//! element's placement, so scaling is literally "ignoring parts of the
//! storage unit".

use crate::dct::{decode_plane_i16, encode_plane_i16, quant_matrices, DctParams};
use crate::{BitReader, BitWriter, CodecError};
use tbm_media::{Frame, PixelFormat};

/// A frame encoded in two layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayeredFrame {
    /// Frame width (full resolution).
    pub width: u32,
    /// Frame height (full resolution).
    pub height: u32,
    /// Quantizer percentage used for both layers.
    pub quant_percent: u16,
    /// Base layer: half-resolution intraframe code.
    pub base: Vec<u8>,
    /// Enhancement layer: full-resolution residual code.
    pub enhancement: Vec<u8>,
}

impl LayeredFrame {
    /// Total encoded size (both layers).
    pub fn total_len(&self) -> usize {
        self.base.len() + self.enhancement.len()
    }

    /// Fraction of the bytes needed for base-only decoding.
    pub fn base_fraction(&self) -> f64 {
        if self.total_len() == 0 {
            return 0.0;
        }
        self.base.len() as f64 / self.total_len() as f64
    }
}

struct LayerGeom {
    w: usize,
    h: usize,
    cw: usize,
    ch: usize,
}

impl LayerGeom {
    fn full(width: u32, height: u32) -> LayerGeom {
        let w = width as usize;
        let h = height as usize;
        LayerGeom {
            w,
            h,
            cw: w.div_ceil(2),
            ch: h.div_ceil(2),
        }
    }

    fn half(width: u32, height: u32) -> LayerGeom {
        LayerGeom::full(width.div_ceil(2).max(1), height.div_ceil(2).max(1))
    }
}

/// Planar, centered (±128) YUV representation.
struct Planes {
    y: Vec<i16>,
    u: Vec<i16>,
    v: Vec<i16>,
}

fn split(frame: &Frame) -> Planes {
    let f = frame.to_format(PixelFormat::Yuv420);
    let g = LayerGeom::full(f.width(), f.height());
    let d = f.data();
    let n = g.w * g.h;
    let c = g.cw * g.ch;
    let center = |b: &[u8]| -> Vec<i16> { b.iter().map(|&x| x as i16 - 128).collect() };
    Planes {
        y: center(&d[..n]),
        u: center(&d[n..n + c]),
        v: center(&d[n + c..]),
    }
}

fn join(p: &Planes, width: u32, height: u32) -> Frame {
    let mut data = Vec::new();
    for plane in [&p.y, &p.u, &p.v] {
        data.extend(plane.iter().map(|&v| (v + 128).clamp(0, 255) as u8));
    }
    Frame::from_raw(width, height, PixelFormat::Yuv420, data).expect("consistent planes")
}

/// 2× box downsample of one plane.
fn downsample(plane: &[i16], w: usize, h: usize) -> Vec<i16> {
    let ow = w.div_ceil(2).max(1);
    let oh = h.div_ceil(2).max(1);
    let mut out = vec![0i16; ow * oh];
    for oy in 0..oh {
        for ox in 0..ow {
            let mut sum = 0i32;
            let mut count = 0i32;
            for dy in 0..2 {
                for dx in 0..2 {
                    let x = ox * 2 + dx;
                    let y = oy * 2 + dy;
                    if x < w && y < h {
                        sum += plane[y * w + x] as i32;
                        count += 1;
                    }
                }
            }
            out[oy * ow + ox] = (sum / count) as i16;
        }
    }
    out
}

/// 2× nearest-neighbour upsample of one plane to `w × h`.
fn upsample(plane: &[i16], sw: usize, sh: usize, w: usize, h: usize) -> Vec<i16> {
    let mut out = vec![0i16; w * h];
    for y in 0..h {
        for x in 0..w {
            let sx = (x / 2).min(sw - 1);
            let sy = (y / 2).min(sh - 1);
            out[y * w + x] = plane[sy * sw + sx];
        }
    }
    out
}

fn down_planes(p: &Planes, g: &LayerGeom) -> Planes {
    Planes {
        y: downsample(&p.y, g.w, g.h),
        u: downsample(&p.u, g.cw, g.ch),
        v: downsample(&p.v, g.cw, g.ch),
    }
}

fn up_planes(p: &Planes, from: &LayerGeom, to: &LayerGeom) -> Planes {
    Planes {
        y: upsample(&p.y, from.w, from.h, to.w, to.h),
        u: upsample(&p.u, from.cw, from.ch, to.cw, to.ch),
        v: upsample(&p.v, from.cw, from.ch, to.cw, to.ch),
    }
}

fn encode_planes(p: &Planes, g: &LayerGeom, dct: DctParams) -> Vec<u8> {
    let (lq, cq) = quant_matrices(dct);
    let mut w = BitWriter::new();
    encode_plane_i16(&p.y, g.w, g.h, &lq, &mut w);
    encode_plane_i16(&p.u, g.cw, g.ch, &cq, &mut w);
    encode_plane_i16(&p.v, g.cw, g.ch, &cq, &mut w);
    w.into_bytes()
}

fn decode_planes(data: &[u8], g: &LayerGeom, dct: DctParams) -> Result<Planes, CodecError> {
    let (lq, cq) = quant_matrices(dct);
    let mut r = BitReader::new(data);
    Ok(Planes {
        y: decode_plane_i16(&mut r, g.w, g.h, &lq)?,
        u: decode_plane_i16(&mut r, g.cw, g.ch, &cq)?,
        v: decode_plane_i16(&mut r, g.cw, g.ch, &cq)?,
    })
}

/// Encodes a frame into base + enhancement layers.
pub fn encode_layered(frame: &Frame, dct: DctParams) -> LayeredFrame {
    let width = frame.width();
    let height = frame.height();
    let full = LayerGeom::full(width, height);
    let half = LayerGeom::half(width, height);
    let src = split(frame);

    let base_planes = down_planes(&src, &full);
    let base = encode_planes(&base_planes, &half, dct);
    // Enhancement predicts from the *reconstructed* base (quantization in
    // the loop), like any closed-loop layered coder.
    let base_recon = decode_planes(&base, &half, dct).expect("own bitstream decodes");
    let predicted = up_planes(&base_recon, &half, &full);
    let residual = Planes {
        y: src
            .y
            .iter()
            .zip(&predicted.y)
            .map(|(&a, &b)| a - b)
            .collect(),
        u: src
            .u
            .iter()
            .zip(&predicted.u)
            .map(|(&a, &b)| a - b)
            .collect(),
        v: src
            .v
            .iter()
            .zip(&predicted.v)
            .map(|(&a, &b)| a - b)
            .collect(),
    };
    let enhancement = encode_planes(&residual, &full, dct);
    LayeredFrame {
        width,
        height,
        quant_percent: dct.quant_percent,
        base,
        enhancement,
    }
}

/// Decodes the base layer only: a full-geometry frame at reduced detail
/// ("scaled to a lower resolution by ignoring parts of the storage unit").
pub fn decode_base(lf: &LayeredFrame) -> Result<Frame, CodecError> {
    let dct = DctParams::with_quant(lf.quant_percent);
    let full = LayerGeom::full(lf.width, lf.height);
    let half = LayerGeom::half(lf.width, lf.height);
    let base = decode_planes(&lf.base, &half, dct)?;
    let up = up_planes(&base, &half, &full);
    Ok(join(&up, lf.width, lf.height))
}

/// Decodes both layers: full fidelity.
pub fn decode_full(lf: &LayeredFrame) -> Result<Frame, CodecError> {
    let dct = DctParams::with_quant(lf.quant_percent);
    let full = LayerGeom::full(lf.width, lf.height);
    let half = LayerGeom::half(lf.width, lf.height);
    let base = decode_planes(&lf.base, &half, dct)?;
    let predicted = up_planes(&base, &half, &full);
    let residual = decode_planes(&lf.enhancement, &full, dct)?;
    let recon = Planes {
        y: predicted
            .y
            .iter()
            .zip(&residual.y)
            .map(|(&a, &b)| (a + b).clamp(-128, 127))
            .collect(),
        u: predicted
            .u
            .iter()
            .zip(&residual.u)
            .map(|(&a, &b)| (a + b).clamp(-128, 127))
            .collect(),
        v: predicted
            .v
            .iter()
            .zip(&residual.v)
            .map(|(&a, &b)| (a + b).clamp(-128, 127))
            .collect(),
    };
    Ok(join(&recon, lf.width, lf.height))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbm_media::gen::VideoPattern;

    fn src() -> Frame {
        VideoPattern::ShiftingGradient.render(4, 64, 48)
    }

    #[test]
    fn full_decode_beats_base_decode() {
        let f = src();
        let lf = encode_layered(&f, DctParams::default());
        let reference = f.to_format(PixelFormat::Yuv420);
        let base_err = reference.mean_abs_diff(&decode_base(&lf).unwrap()).unwrap();
        let full_err = reference.mean_abs_diff(&decode_full(&lf).unwrap()).unwrap();
        assert!(
            full_err < base_err,
            "full {full_err:.2} should beat base {base_err:.2}"
        );
        assert!(full_err < 6.0, "full fidelity too low: {full_err:.2}");
    }

    #[test]
    fn base_layer_is_a_fraction_of_the_bytes() {
        let lf = encode_layered(&src(), DctParams::default());
        let frac = lf.base_fraction();
        assert!(
            frac > 0.02 && frac < 0.8,
            "base fraction {frac:.2} out of expected range"
        );
        assert_eq!(lf.total_len(), lf.base.len() + lf.enhancement.len());
    }

    #[test]
    fn base_decode_ignores_enhancement_bytes() {
        // Corrupting the enhancement layer must not affect base decoding —
        // the definition of "ignoring parts of the storage unit".
        let mut lf = encode_layered(&src(), DctParams::default());
        let base_frame = decode_base(&lf).unwrap();
        for b in &mut lf.enhancement {
            *b ^= 0xA5;
        }
        assert_eq!(decode_base(&lf).unwrap(), base_frame);
    }

    #[test]
    fn geometry_preserved_including_odd() {
        let f = VideoPattern::MovingBar.render(0, 33, 21);
        let lf = encode_layered(&f, DctParams::default());
        let b = decode_base(&lf).unwrap();
        let full = decode_full(&lf).unwrap();
        assert_eq!((b.width(), b.height()), (33, 21));
        assert_eq!((full.width(), full.height()), (33, 21));
    }

    #[test]
    fn truncated_layers_error() {
        let mut lf = encode_layered(&src(), DctParams::default());
        lf.base.truncate(2);
        assert!(decode_base(&lf).is_err());
        assert!(decode_full(&lf).is_err());
    }
}
