//! Descriptive quality factors → low-level encoder parameters.
//!
//! The paper (§2.2) requires that compression parameters "should not be
//! visible at the data modeling level … video quality should be specified
//! via descriptive quality factors." The schema layer stores a
//! [`QualityFactor`]; this module is the *only* place that knows what a
//! "VHS quality" quantizer looks like, keeping the separation the paper
//! demands.

use crate::dct::DctParams;
use tbm_core::{AudioQuality, QualityFactor, VideoQuality};

/// DCT parameters realizing a descriptive video quality.
///
/// The VHS mapping is tuned so that typical synthetic scenes land near the
/// Fig. 2 example's "about 0.5 bits per pixel"; the E2 experiment
/// (`exp_fig2`) measures and reports the achieved rate.
pub fn video_params(q: VideoQuality) -> DctParams {
    match q {
        VideoQuality::Preview => DctParams::with_quant(900),
        VideoQuality::Vhs => DctParams::with_quant(260),
        VideoQuality::Broadcast => DctParams::with_quant(100),
        VideoQuality::Studio => DctParams::with_quant(30),
    }
}

/// Audio capture parameters realizing a descriptive audio quality:
/// `(sample_rate, channels)`.
pub fn audio_params(q: AudioQuality) -> (u32, u16) {
    match q {
        AudioQuality::Phone => (8_000, 1),
        AudioQuality::AmRadio => (22_050, 1),
        AudioQuality::Cd => (44_100, 2),
        AudioQuality::Studio => (48_000, 2),
    }
}

/// Generic entry point from a [`QualityFactor`]: returns the video
/// parameters when the factor is a video quality.
pub fn dct_params_for(q: QualityFactor) -> Option<DctParams> {
    match q {
        QualityFactor::Video(v) => Some(video_params(v)),
        QualityFactor::Audio(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct;
    use tbm_media::gen::VideoPattern;

    #[test]
    fn better_quality_is_finer_quantization() {
        assert!(
            video_params(VideoQuality::Preview).quant_percent
                > video_params(VideoQuality::Vhs).quant_percent
        );
        assert!(
            video_params(VideoQuality::Vhs).quant_percent
                > video_params(VideoQuality::Broadcast).quant_percent
        );
        assert!(
            video_params(VideoQuality::Broadcast).quant_percent
                > video_params(VideoQuality::Studio).quant_percent
        );
    }

    #[test]
    fn quality_ladder_orders_file_sizes_and_errors() {
        let src = VideoPattern::MovingBar.render(5, 96, 64);
        let reference = src.to_format(tbm_media::PixelFormat::Yuv420);
        let mut last_len = usize::MAX;
        let mut last_err = f64::INFINITY;
        for q in [
            VideoQuality::Preview,
            VideoQuality::Vhs,
            VideoQuality::Broadcast,
            VideoQuality::Studio,
        ] {
            let enc = dct::encode_frame(&src, video_params(q));
            let err = reference
                .mean_abs_diff(&dct::decode_frame(&enc).unwrap())
                .unwrap();
            assert!(
                enc.len() <= last_len || err <= last_err,
                "{q:?} regressed on both size and error"
            );
            last_len = enc.len();
            last_err = err;
        }
    }

    #[test]
    fn audio_params_match_media_types() {
        assert_eq!(audio_params(AudioQuality::Cd), (44_100, 2));
        assert_eq!(audio_params(AudioQuality::Phone), (8_000, 1));
    }

    #[test]
    fn factor_dispatch() {
        assert!(dct_params_for(QualityFactor::Video(VideoQuality::Vhs)).is_some());
        assert!(dct_params_for(QualityFactor::Audio(AudioQuality::Cd)).is_none());
    }
}
