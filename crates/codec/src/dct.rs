//! Block-DCT intraframe coder ("JPEG-like").
//!
//! Implements the compression step of the paper's Fig. 2 walk-through: "The
//! YUV frames are then JPEG compressed using a quality factor resulting in
//! about 0.5 bits per pixel (this will give VHS quality)." The pipeline is
//! the standard intraframe design:
//!
//! 1. convert to the chroma-subsampled YUV layout ([`tbm_media::PixelFormat::Yuv420`]),
//! 2. split each plane into 8×8 blocks (edge-replicated padding),
//! 3. forward DCT per block,
//! 4. quantize with JPEG's example luminance/chrominance matrices scaled by
//!    a quality percentage,
//! 5. zig-zag scan, then entropy-code: DC as a signed-Golomb delta from the
//!    previous block, ACs as `(zero-run, level)` pairs with an end-of-block
//!    sentinel.
//!
//! Because step 5 is variable-length, encoded frame sizes depend on content
//! and quality — *the* property that forces interpretation to keep explicit
//! `(elementSize, blobPlacement)` tables (paper §4.1). Frames are also
//! independently decodable, which is the paper's observation about JPEG
//! video: "since frames are compressed independently, it is easier to
//! rearrange the order of the frames and to playback in reverse or at
//! variable rates."
//!
//! The coder also exposes [`encode_plane_i16`]/[`decode_plane_i16`] on raw
//! centered planes, reused by the interframe coder for residuals.

use crate::{BitReader, BitWriter, CodecError};
use tbm_media::{Frame, PixelFormat};

/// JPEG Annex K luminance quantization matrix.
const LUMA_QUANT: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// JPEG Annex K chrominance quantization matrix.
const CHROMA_QUANT: [u16; 64] = [
    17, 18, 24, 47, 99, 99, 99, 99, //
    18, 21, 26, 66, 99, 99, 99, 99, //
    24, 26, 56, 99, 99, 99, 99, 99, //
    47, 66, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99,
];

/// Zig-zag scan order for an 8×8 block.
const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// End-of-block sentinel for the AC run-length code (runs are ≤ 62).
const EOB_RUN: u64 = 63;

/// Encoder parameters. `quant_percent` scales the base quantization
/// matrices: 100 = JPEG's example tables, larger = coarser (smaller files,
/// lower fidelity). See [`crate::quality`] for the descriptive-quality
/// mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DctParams {
    /// Quantizer scale in percent (1..=3000).
    pub quant_percent: u16,
}

impl DctParams {
    /// Parameters at a given quantizer percentage.
    pub fn with_quant(quant_percent: u16) -> DctParams {
        DctParams {
            quant_percent: quant_percent.clamp(1, 3000),
        }
    }
}

impl Default for DctParams {
    fn default() -> DctParams {
        DctParams { quant_percent: 100 }
    }
}

fn scaled_quant(base: &[u16; 64], percent: u16) -> [i32; 64] {
    let mut q = [1i32; 64];
    for i in 0..64 {
        q[i] = ((base[i] as u32 * percent as u32 + 50) / 100).max(1) as i32;
    }
    q
}

/// Cosine basis: `COS[u][x] = cos((2x+1)uπ/16)`, computed once.
fn cos_table() -> &'static [[f64; 8]; 8] {
    static TABLE: std::sync::OnceLock<[[f64; 8]; 8]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [[0.0f64; 8]; 8];
        for (u, row) in t.iter_mut().enumerate() {
            for (x, v) in row.iter_mut().enumerate() {
                *v = ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos();
            }
        }
        t
    })
}

fn fdct(block: &[f64; 64], out: &mut [f64; 64], cos: &[[f64; 8]; 8]) {
    // Separable: rows then columns.
    let mut tmp = [0.0f64; 64];
    for y in 0..8 {
        for u in 0..8 {
            let mut s = 0.0;
            for x in 0..8 {
                s += block[y * 8 + x] * cos[u][x];
            }
            tmp[y * 8 + u] = s;
        }
    }
    let norm = |k: usize| if k == 0 { (0.5f64).sqrt() } else { 1.0 };
    for u in 0..8 {
        for v in 0..8 {
            let mut s = 0.0;
            for y in 0..8 {
                s += tmp[y * 8 + u] * cos[v][y];
            }
            out[v * 8 + u] = 0.25 * norm(u) * norm(v) * s;
        }
    }
}

fn idct(block: &[f64; 64], out: &mut [f64; 64], cos: &[[f64; 8]; 8]) {
    let norm = |k: usize| if k == 0 { (0.5f64).sqrt() } else { 1.0 };
    let mut tmp = [0.0f64; 64];
    for v in 0..8 {
        for x in 0..8 {
            let mut s = 0.0;
            for u in 0..8 {
                s += norm(u) * block[v * 8 + u] * cos[u][x];
            }
            tmp[v * 8 + x] = s;
        }
    }
    for x in 0..8 {
        for y in 0..8 {
            let mut s = 0.0;
            for v in 0..8 {
                s += norm(v) * tmp[v * 8 + x] * cos[v][y];
            }
            out[y * 8 + x] = 0.25 * s;
        }
    }
}

/// Encodes one centered plane (values conceptually in ±1023) of geometry
/// `w × h` into `writer`. Used directly by the interframe coder for
/// residual planes.
pub fn encode_plane_i16(
    plane: &[i16],
    w: usize,
    h: usize,
    quant: &[i32; 64],
    writer: &mut BitWriter,
) {
    let cos = cos_table();
    let bw = w.div_ceil(8);
    let bh = h.div_ceil(8);
    let mut prev_dc = 0i64;
    let mut block = [0.0f64; 64];
    let mut coeffs = [0.0f64; 64];
    for by in 0..bh {
        for bx in 0..bw {
            // Gather with edge replication.
            for y in 0..8 {
                for x in 0..8 {
                    let sx = (bx * 8 + x).min(w - 1);
                    let sy = (by * 8 + y).min(h - 1);
                    block[y * 8 + x] = plane[sy * w + sx] as f64;
                }
            }
            fdct(&block, &mut coeffs, cos);
            // Quantize into zig-zag order.
            let mut q = [0i64; 64];
            for (zz, &pos) in ZIGZAG.iter().enumerate() {
                let v = coeffs[pos] / quant[pos] as f64;
                q[zz] = v.round() as i64;
            }
            // DC delta.
            writer.put_se(q[0] - prev_dc);
            prev_dc = q[0];
            // AC run-length pairs.
            let mut run = 0u64;
            for &level in q.iter().skip(1) {
                if level == 0 {
                    run += 1;
                } else {
                    writer.put_ue(run);
                    writer.put_se(level);
                    run = 0;
                }
            }
            writer.put_ue(EOB_RUN);
        }
    }
}

/// Decodes one centered plane of geometry `w × h` from `reader`.
pub fn decode_plane_i16(
    reader: &mut BitReader<'_>,
    w: usize,
    h: usize,
    quant: &[i32; 64],
) -> Result<Vec<i16>, CodecError> {
    let cos = cos_table();
    let bw = w.div_ceil(8);
    let bh = h.div_ceil(8);
    let mut plane = vec![0i16; w * h];
    let mut prev_dc = 0i64;
    let mut pixels = [0.0f64; 64];
    for by in 0..bh {
        for bx in 0..bw {
            let mut q = [0i64; 64];
            prev_dc += reader.get_se()?;
            q[0] = prev_dc;
            let mut zz = 1usize;
            loop {
                let run = reader.get_ue()?;
                if run == EOB_RUN {
                    break;
                }
                zz += run as usize;
                if zz >= 64 {
                    return Err(CodecError::malformed("dct", "AC index overflow"));
                }
                q[zz] = reader.get_se()?;
                zz += 1;
                if zz > 64 {
                    return Err(CodecError::malformed("dct", "AC index overflow"));
                }
            }
            // Dequantize out of zig-zag order.
            let mut coeffs = [0.0f64; 64];
            for (zz, &pos) in ZIGZAG.iter().enumerate() {
                coeffs[pos] = (q[zz] * quant[pos] as i64) as f64;
            }
            idct(&coeffs, &mut pixels, cos);
            // Scatter (skip padding).
            for y in 0..8 {
                for x in 0..8 {
                    let dx = bx * 8 + x;
                    let dy = by * 8 + y;
                    if dx < w && dy < h {
                        plane[dy * w + dx] =
                            pixels[y * 8 + x].round().clamp(-2048.0, 2047.0) as i16;
                    }
                }
            }
        }
    }
    Ok(plane)
}

/// The scaled quantization matrices for a parameter set: `(luma, chroma)`.
pub fn quant_matrices(params: DctParams) -> ([i32; 64], [i32; 64]) {
    (
        scaled_quant(&LUMA_QUANT, params.quant_percent),
        scaled_quant(&CHROMA_QUANT, params.quant_percent),
    )
}

/// Encodes a frame intraframe. Any input format is converted to the
/// chroma-subsampled YUV layout first (the Fig. 2 pipeline).
///
/// Output layout: `magic(2) | w(2) | h(2) | quant_percent(2) | bitstream`.
pub fn encode_frame(frame: &Frame, params: DctParams) -> Vec<u8> {
    let f = frame.to_format(PixelFormat::Yuv420);
    let w = f.width() as usize;
    let h = f.height() as usize;
    let (cw, ch) = (w.div_ceil(2), h.div_ceil(2));
    let data = f.data();
    let n = w * h;

    let (lq, cq) = quant_matrices(params);
    let mut writer = BitWriter::new();
    let center = |bytes: &[u8]| -> Vec<i16> { bytes.iter().map(|&b| b as i16 - 128).collect() };
    encode_plane_i16(&center(&data[..n]), w, h, &lq, &mut writer);
    encode_plane_i16(&center(&data[n..n + cw * ch]), cw, ch, &cq, &mut writer);
    encode_plane_i16(&center(&data[n + cw * ch..]), cw, ch, &cq, &mut writer);

    let mut out = Vec::with_capacity(8 + writer.byte_len());
    out.extend_from_slice(b"DJ");
    out.extend_from_slice(&(f.width() as u16).to_le_bytes());
    out.extend_from_slice(&(f.height() as u16).to_le_bytes());
    out.extend_from_slice(&params.quant_percent.to_le_bytes());
    out.extend_from_slice(&writer.into_bytes());
    out
}

/// Decodes an intraframe-encoded frame to the chroma-subsampled YUV layout.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, CodecError> {
    if bytes.len() < 8 || &bytes[0..2] != b"DJ" {
        return Err(CodecError::malformed("dct", "bad magic/short header"));
    }
    let w = u16::from_le_bytes(bytes[2..4].try_into().expect("len")) as usize;
    let h = u16::from_le_bytes(bytes[4..6].try_into().expect("len")) as usize;
    let quant_percent = u16::from_le_bytes(bytes[6..8].try_into().expect("len"));
    if w == 0 || h == 0 {
        return Err(CodecError::bad_geometry("dct", "zero dimension"));
    }
    let params = DctParams::with_quant(quant_percent);
    let (lq, cq) = quant_matrices(params);
    let (cw, ch) = (w.div_ceil(2), h.div_ceil(2));
    let mut reader = BitReader::new(&bytes[8..]);
    let y = decode_plane_i16(&mut reader, w, h, &lq)?;
    let u = decode_plane_i16(&mut reader, cw, ch, &cq)?;
    let v = decode_plane_i16(&mut reader, cw, ch, &cq)?;
    let mut data = Vec::with_capacity(PixelFormat::Yuv420.byte_len(w as u32, h as u32));
    let uncenter = |p: &[i16], out: &mut Vec<u8>| {
        out.extend(p.iter().map(|&v| (v + 128).clamp(0, 255) as u8));
    };
    uncenter(&y, &mut data);
    uncenter(&u, &mut data);
    uncenter(&v, &mut data);
    Frame::from_raw(w as u32, h as u32, PixelFormat::Yuv420, data)
        .ok_or_else(|| CodecError::malformed("dct", "plane size mismatch"))
}

/// Convenience: encoded bits per source pixel (the paper's 0.5 bpp target).
pub fn bits_per_pixel(encoded_len: usize, width: u32, height: u32) -> f64 {
    encoded_len as f64 * 8.0 / (width as f64 * height as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbm_media::gen::VideoPattern;

    fn test_frame(idx: u64) -> Frame {
        VideoPattern::MovingBar.render(idx, 64, 48)
    }

    #[test]
    fn roundtrip_geometry_and_fidelity() {
        let src = test_frame(0);
        let enc = encode_frame(&src, DctParams::default());
        let dec = decode_frame(&enc).unwrap();
        assert_eq!(dec.width(), 64);
        assert_eq!(dec.height(), 48);
        assert_eq!(dec.format(), PixelFormat::Yuv420);
        let reference = src.to_format(PixelFormat::Yuv420);
        let mad = reference.mean_abs_diff(&dec).unwrap();
        assert!(mad < 6.0, "mean abs diff {mad:.2} too high at q=100");
    }

    #[test]
    fn lossy_not_identity() {
        // The paper: "encoding followed by decoding is not an identity
        // transformation."
        let src = VideoPattern::Noise(1).render(0, 32, 32);
        let dec = decode_frame(&encode_frame(&src, DctParams::default())).unwrap();
        let reference = src.to_format(PixelFormat::Yuv420);
        assert!(reference.mean_abs_diff(&dec).unwrap() > 0.0);
    }

    #[test]
    fn coarser_quantization_shrinks_output_and_degrades() {
        let src = test_frame(3);
        let fine = encode_frame(&src, DctParams::with_quant(50));
        let coarse = encode_frame(&src, DctParams::with_quant(800));
        assert!(
            coarse.len() < fine.len(),
            "coarse {} !< fine {}",
            coarse.len(),
            fine.len()
        );
        let reference = src.to_format(PixelFormat::Yuv420);
        let fine_err = reference
            .mean_abs_diff(&decode_frame(&fine).unwrap())
            .unwrap();
        let coarse_err = reference
            .mean_abs_diff(&decode_frame(&coarse).unwrap())
            .unwrap();
        assert!(coarse_err > fine_err);
    }

    #[test]
    fn sizes_vary_with_content() {
        // Flat frames compress far better than noise — variable element
        // sizes are the point of the interpretation tables.
        let flat = VideoPattern::Solid(40, 80, 120).render(0, 64, 64);
        let noisy = VideoPattern::Noise(7).render(0, 64, 64);
        let p = DctParams::default();
        let flat_len = encode_frame(&flat, p).len();
        let noisy_len = encode_frame(&noisy, p).len();
        assert!(
            noisy_len > flat_len * 3,
            "noise {noisy_len} should dwarf flat {flat_len}"
        );
    }

    #[test]
    fn frames_decode_independently() {
        // JPEG-style independence (paper §2.1): any frame decodes without
        // context, so reverse/variable-rate playback is possible.
        let frames: Vec<_> = (0..5).map(test_frame).collect();
        let encoded: Vec<_> = frames
            .iter()
            .map(|f| encode_frame(f, DctParams::default()))
            .collect();
        // Decode in reverse order.
        for (f, e) in frames.iter().zip(&encoded).rev() {
            let dec = decode_frame(e).unwrap();
            let reference = f.to_format(PixelFormat::Yuv420);
            assert!(reference.mean_abs_diff(&dec).unwrap() < 6.0);
        }
    }

    #[test]
    fn odd_dimensions_supported() {
        let src = VideoPattern::ShiftingGradient.render(2, 37, 23);
        let dec = decode_frame(&encode_frame(&src, DctParams::default())).unwrap();
        assert_eq!((dec.width(), dec.height()), (37, 23));
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(decode_frame(&[]).is_err());
        assert!(decode_frame(b"XX123456").is_err());
        let mut enc = encode_frame(&test_frame(0), DctParams::default());
        enc.truncate(enc.len() / 2);
        assert!(decode_frame(&enc).is_err());
        // Zero dimensions.
        let bad = [b'D', b'J', 0, 0, 0, 0, 100, 0];
        assert!(decode_frame(&bad).is_err());
    }

    #[test]
    fn plane_roundtrip_exact_for_dc_only() {
        // A constant plane has only DC energy; quantized roundtrip should be
        // near-exact.
        let plane = vec![37i16; 16 * 16];
        let quant = scaled_quant(&LUMA_QUANT, 100);
        let mut w = BitWriter::new();
        encode_plane_i16(&plane, 16, 16, &quant, &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let back = decode_plane_i16(&mut r, 16, 16, &quant).unwrap();
        for &v in &back {
            assert!((v - 37).abs() <= 8, "{v}");
        }
    }

    #[test]
    fn bpp_helper() {
        assert!((bits_per_pixel(100, 10, 10) - 8.0).abs() < 1e-12);
    }
}
