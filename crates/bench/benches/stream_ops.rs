//! E1 support — timed-stream operations: classification and time lookup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tbm_core::{classify, MediaType, SizedElement, TimedStream};
use tbm_time::TimeSystem;

fn uniform_stream(n: usize) -> TimedStream<SizedElement> {
    TimedStream::constant_frequency(
        MediaType::pcm_audio(),
        TimeSystem::CD_AUDIO,
        0,
        (0..n).map(|_| SizedElement::new(4)),
    )
}

fn variable_stream(n: usize) -> TimedStream<SizedElement> {
    TimedStream::continuous_from(
        MediaType::video("var"),
        TimeSystem::PAL,
        0,
        (0..n).map(|i| {
            (
                SizedElement::new(1000 + (i % 37) as u64 * 13),
                1 + (i % 3) as i64,
            )
        }),
    )
    .unwrap()
}

fn bench_classification(c: &mut Criterion) {
    let mut g = c.benchmark_group("classify");
    g.sample_size(20);
    for n in [1_000usize, 44_100, 441_000] {
        let s = uniform_stream(n);
        g.bench_with_input(BenchmarkId::new("uniform", n), &s, |b, s| {
            b.iter(|| black_box(classify(s)))
        });
    }
    let s = variable_stream(44_100);
    g.bench_function("variable_44100", |b| b.iter(|| black_box(classify(&s))));
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("element_at_tick");
    g.sample_size(20);
    let s = uniform_stream(100_000);
    g.bench_function("uniform_100k", |b| {
        let mut t = 0i64;
        b.iter(|| {
            t = (t + 7919) % 100_000;
            black_box(s.element_at_tick(t))
        })
    });
    let v = variable_stream(100_000);
    let span = v.tick_span().unwrap();
    g.bench_function("variable_100k", |b| {
        let mut t = 0i64;
        b.iter(|| {
            t = (t + 7919) % span.1;
            black_box(v.element_at_tick(t))
        })
    });
    g.finish();
}

fn bench_window(c: &mut Criterion) {
    let s = uniform_stream(100_000);
    let mut g = c.benchmark_group("window");
    g.sample_size(20);
    g.bench_function("window_1s_of_100k", |b| {
        let mut at = 0i64;
        b.iter(|| {
            at = (at + 12345) % 50_000;
            black_box(s.window(at, at + 44_100).len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_classification, bench_lookup, bench_window);
criterion_main!(benches);
