//! Serving-layer microbenchmarks: the segment cache's hit path vs miss
//! path, the end-to-end cost of a multi-session broadcast through the
//! event loop with the cache on and off, and the sharded storm's
//! staged-then-drained throughput at 1/2/4 workers (the
//! `exp_throughput` binary runs the same shape at scale and publishes
//! `BENCH_serve.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tbm_blob::{ByteSpan, MemBlobStore};
use tbm_codec::dct::DctParams;
use tbm_core::BlobId;
use tbm_db::MediaDb;
use tbm_interp::capture::capture_video_scalable;
use tbm_interp::Interpretation;
use tbm_media::gen::{render_frames, VideoPattern};
use tbm_serve::{
    shard_of, Capacity, Request, Response, SegmentCache, Server, ShardedDb, ShardedServer,
};
use tbm_time::{TimeDelta, TimePoint, TimeSystem};

const SEGMENT: u64 = 4096;

fn seeded_cache(spans: u64) -> (SegmentCache, BlobId) {
    let mut cache = SegmentCache::new(spans * SEGMENT * 2);
    let blob = BlobId::new(1);
    for i in 0..spans {
        cache.insert(
            blob,
            ByteSpan::new(i * SEGMENT, SEGMENT),
            vec![i as u8; SEGMENT as usize],
        );
    }
    (cache, blob)
}

fn bench_cache_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("segment_cache");
    let spans = 256u64;

    // Hit path: lookup + LRU refresh of a resident span.
    let (mut cache, blob) = seeded_cache(spans);
    g.bench_function("hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let span = ByteSpan::new((i % spans) * SEGMENT, SEGMENT);
            i += 1;
            black_box(cache.get(blob, span).is_some())
        })
    });

    // Miss path: lookup of an absent span (counter bump only).
    let (mut cache, blob) = seeded_cache(spans);
    g.bench_function("miss", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let span = ByteSpan::new((spans + (i % spans)) * SEGMENT, SEGMENT);
            i += 1;
            black_box(cache.get(blob, span).is_none())
        })
    });

    // Miss + fill: the full storage fallback including insert and eviction
    // once the budget saturates.
    g.bench_function("miss_then_insert_evicting", |b| {
        let (mut cache, blob) = seeded_cache(spans);
        let mut i = 0u64;
        b.iter(|| {
            let span = ByteSpan::new((spans + i) * SEGMENT, SEGMENT);
            i += 1;
            if cache.get(blob, span).is_none() {
                cache.insert(blob, span, vec![0u8; SEGMENT as usize]);
            }
            black_box(cache.bytes_cached())
        })
    });
    g.finish();
}

fn hot_object() -> (MemBlobStore, Interpretation) {
    let frames: Vec<_> = (0..24u64)
        .map(|i| VideoPattern::MovingBar.render(i, 96, 64))
        .collect();
    let mut store = MemBlobStore::new();
    let (_blob, interp) =
        capture_video_scalable(&mut store, &frames, TimeSystem::PAL, DctParams::default()).unwrap();
    (store, interp)
}

fn broadcast(store: MemBlobStore, interp: Interpretation, sessions: usize, budget: u64) -> usize {
    let mut db = MediaDb::with_store(store);
    db.register_interpretation(interp).unwrap();
    let mut server = Server::new(db, Capacity::new(100_000_000)).with_cache(if budget > 0 {
        SegmentCache::new(budget)
    } else {
        SegmentCache::disabled()
    });
    for n in 0..sessions {
        let at = TimePoint::ZERO + TimeDelta::from_millis(n as i64 * 40);
        if let Response::Opened {
            session: Some(id), ..
        } = server
            .request(
                at,
                Request::Open {
                    object: "video1".into(),
                },
            )
            .unwrap()
        {
            server.request(at, Request::Play { session: id }).unwrap();
        }
    }
    server.finish().elements_served
}

fn bench_broadcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("broadcast");
    g.sample_size(10);
    for &sessions in &[4usize, 8] {
        g.bench_with_input(
            BenchmarkId::new("cache_on", sessions),
            &sessions,
            |b, &sessions| {
                b.iter(|| {
                    let (store, interp) = hot_object();
                    black_box(broadcast(store, interp, sessions, 32 << 20))
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("cache_off", sessions),
            &sessions,
            |b, &sessions| {
                b.iter(|| {
                    let (store, interp) = hot_object();
                    black_box(broadcast(store, interp, sessions, 0))
                })
            },
        );
    }
    g.finish();
}

/// A small sharded catalog: one scalable movie per name, captured into the
/// shard its name hashes to.
fn sharded_catalog(names: &[String], shards: usize, seed: u64) -> ShardedDb<MemBlobStore> {
    let mut stores: Vec<MemBlobStore> = (0..shards).map(|_| MemBlobStore::new()).collect();
    let frames = render_frames(VideoPattern::MovingBar, 0, 12, 48, 32);
    let mut interps = Vec::new();
    for name in names {
        let owner = shard_of(name, seed, shards);
        let (blob, interp) = capture_video_scalable(
            &mut stores[owner],
            &frames,
            TimeSystem::PAL,
            DctParams::default(),
        )
        .unwrap();
        let stream = interp.stream("video1").unwrap().clone();
        let mut renamed = Interpretation::new(blob);
        renamed.add_stream(name, stream).unwrap();
        interps.push(renamed);
    }
    let mut db = ShardedDb::with_stores(stores, seed);
    for interp in interps {
        db.register_interpretation(interp).unwrap();
    }
    db
}

/// The throughput shape of `exp_throughput`: stage every session at one
/// worker, then drain the whole backlog at `workers` — the wall-clock of
/// the drain is what the worker knob moves; the served elements are
/// byte-identical at any count.
fn staged_storm(names: &[String], shards: usize, sessions: usize, workers: usize) -> usize {
    let db = sharded_catalog(names, shards, 0x7EE0);
    let mut server = ShardedServer::new(db, Capacity::new(1 << 40));
    for i in 0..sessions {
        let object = names[i % names.len()].clone();
        if let Response::Opened {
            session: Some(id), ..
        } = server
            .request(TimePoint::ZERO, Request::Open { object })
            .unwrap()
        {
            server
                .request(TimePoint::ZERO, Request::Play { session: id })
                .unwrap();
        }
    }
    server.set_workers(workers);
    server.finish().global.elements_served
}

fn bench_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("throughput");
    g.sample_size(10);
    let shards = 4usize;
    let sessions = 96usize;
    let names: Vec<String> = (0..shards * 2).map(|i| format!("movie{i}")).collect();
    for &workers in &[1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("staged_storm", workers),
            &workers,
            |b, &workers| b.iter(|| black_box(staged_storm(&names, shards, sessions, workers))),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_cache_paths,
    bench_broadcast,
    bench_throughput
);
criterion_main!(benches);
