//! E10 support — playback simulation throughput and the interleaving
//! ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tbm_bench::{captured_av, SPF};
use tbm_player::{schedule_from_interp, schedule_uniform, sync_skew, CostModel, PlaybackSim};
use tbm_time::TimeSystem;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("playback_sim");
    g.sample_size(20);
    for n in [1_000usize, 10_000, 100_000] {
        let jobs = schedule_uniform(n, 20_000, TimeSystem::PAL);
        let sim = PlaybackSim::new(CostModel::bandwidth_only(600_000)).with_startup(3);
        g.bench_with_input(BenchmarkId::new("elements", n), &jobs, |b, jobs| {
            b.iter(|| black_box(sim.run(jobs)))
        });
    }
    g.finish();
}

fn bench_sync(c: &mut Criterion) {
    let (_, cap) = captured_av(250, 160, 120);
    let v = schedule_from_interp(cap.interpretation.stream("video1").unwrap(), None);
    let a = schedule_from_interp(cap.interpretation.stream("audio1").unwrap(), None);
    let mut g = c.benchmark_group("sync_skew");
    g.sample_size(20);
    g.bench_function("av_250_frames", |b| {
        let model = CostModel::bandwidth_only(400_000);
        b.iter(|| black_box(sync_skew(model, &v, &a)))
    });
    g.finish();
    let _ = SPF;
}

/// DESIGN.md's interleaving ablation: sequential access over an interleaved
/// layout reads contiguously; a separated layout alternates between two
/// distant regions of the BLOB. We measure the read pattern cost through
/// the MemBlobStore (which fragments into extents, so long seeks touch more
/// extent boundaries).
fn bench_interleaving(c: &mut Criterion) {
    use tbm_blob::{BlobStore, BlobWriter, ByteSpan, MemBlobStore};
    const UNITS: usize = 2_000;
    const VSIZE: usize = 4_096;
    const ASIZE: usize = 1_024;

    // Interleaved: V A V A …
    let mut inter = MemBlobStore::with_extent_size(16 * 1024);
    let iblob = inter.create().unwrap();
    let mut ispans = Vec::new();
    {
        let mut w = BlobWriter::new(&mut inter, iblob).unwrap();
        for _ in 0..UNITS {
            let v = w.write(&vec![1u8; VSIZE]).unwrap();
            let a = w.write(&vec![2u8; ASIZE]).unwrap();
            ispans.push((v, a));
        }
    }
    // Separated: all V, then all A.
    let mut sep = MemBlobStore::with_extent_size(16 * 1024);
    let sblob = sep.create().unwrap();
    let mut vspans = Vec::new();
    let mut aspans = Vec::new();
    {
        let mut w = BlobWriter::new(&mut sep, sblob).unwrap();
        for _ in 0..UNITS {
            vspans.push(w.write(&vec![1u8; VSIZE]).unwrap());
        }
        for _ in 0..UNITS {
            aspans.push(w.write(&vec![2u8; ASIZE]).unwrap());
        }
    }

    let mut g = c.benchmark_group("layout_sequential_av_read");
    g.sample_size(20);
    let mut vbuf = vec![0u8; VSIZE];
    let mut abuf = vec![0u8; ASIZE];
    g.bench_function("interleaved", |b| {
        b.iter(|| {
            for (v, a) in &ispans {
                inter.read_into(iblob, *v, &mut vbuf).unwrap();
                inter.read_into(iblob, *a, &mut abuf).unwrap();
            }
            black_box(vbuf[0] + abuf[0])
        })
    });
    g.bench_function("separated", |b| {
        b.iter(|| {
            for (v, a) in vspans.iter().zip(&aspans) {
                sep.read_into(sblob, *v, &mut vbuf).unwrap();
                sep.read_into(sblob, *a, &mut abuf).unwrap();
            }
            black_box(vbuf[0] + abuf[0])
        })
    });
    g.finish();
    let _ = ByteSpan::new(0, 0);
}

criterion_group!(benches, bench_sim, bench_sync, bench_interleaving);
criterion_main!(benches);
