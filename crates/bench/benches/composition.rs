//! E4 support — composition: frame compositing and audio mixing rates.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tbm_compose::{Component, ComponentKind, Composer, MultimediaObject, Region};
use tbm_derive::{AudioClip, Expander, MediaValue, Node, VideoClip};
use tbm_media::gen::{AudioSignal, VideoPattern};
use tbm_time::{Rational, TimeDelta, TimePoint, TimeSystem};

fn setup() -> (Expander, MultimediaObject) {
    let mut e = Expander::new();
    e.add_source(
        "bg",
        MediaValue::Video(VideoClip::new(
            tbm_media::gen::render_frames(VideoPattern::ShiftingGradient, 0, 50, 320, 240),
            TimeSystem::PAL,
        )),
    );
    e.add_source(
        "pip",
        MediaValue::Video(VideoClip::new(
            tbm_media::gen::render_frames(VideoPattern::MovingBar, 0, 50, 160, 120),
            TimeSystem::PAL,
        )),
    );
    for (name, hz) in [("music", 330.0), ("voice", 200.0)] {
        e.add_source(
            name,
            MediaValue::Audio(AudioClip::new(
                AudioSignal::Sine {
                    hz,
                    amplitude: 8000,
                }
                .generate(0, 2 * 44_100, 44_100, 2),
                44_100,
            )),
        );
    }
    let mut m = MultimediaObject::new("bench");
    let dur = TimeDelta::from_secs(2);
    m.add_component(
        Component::new(
            "bg",
            ComponentKind::Video,
            Node::source("bg"),
            TimePoint::ZERO,
            dur,
        )
        .unwrap(),
    )
    .unwrap();
    m.add_component(
        Component::new(
            "pip",
            ComponentKind::Video,
            Node::source("pip"),
            TimePoint::ZERO,
            dur,
        )
        .unwrap()
        .in_region(Region::new(8, 8, 106, 80).at_layer(1)),
    )
    .unwrap();
    m.add_component(
        Component::new(
            "music",
            ComponentKind::Audio,
            Node::source("music"),
            TimePoint::ZERO,
            dur,
        )
        .unwrap(),
    )
    .unwrap();
    m.add_component(
        Component::new(
            "voice",
            ComponentKind::Audio,
            Node::source("voice"),
            TimePoint::ZERO,
            dur,
        )
        .unwrap(),
    )
    .unwrap();
    (e, m)
}

fn bench_compose(c: &mut Criterion) {
    let (e, m) = setup();
    let composer = Composer::new(&e, 320, 240);
    let mut g = c.benchmark_group("composer");
    g.sample_size(20);
    g.bench_function("render_frame_320x240_pip", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 1) % 40;
            let t = TimePoint::from_seconds(Rational::new(k, 25));
            black_box(composer.render_video_frame(&m, t).unwrap())
        })
    });
    g.bench_function("mix_100ms_2_tracks", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 1) % 15;
            let t = TimePoint::from_seconds(Rational::new(k, 10));
            black_box(
                composer
                    .mix_audio_window(&m, t, TimeDelta::from_millis(100))
                    .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_timeline(c: &mut Criterion) {
    let (_, m) = setup();
    let mut g = c.benchmark_group("timeline");
    g.sample_size(30);
    g.bench_function("diagram", |b| b.iter(|| black_box(m.timeline_diagram(64))));
    g.bench_function("validate", |b| b.iter(|| black_box(m.validate().is_ok())));
    g.finish();
}

criterion_group!(benches, bench_compose, bench_timeline);
criterion_main!(benches);
