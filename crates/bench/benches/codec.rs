//! Codec throughput and the quality-parameter ablation.
//!
//! The descriptive-quality mapping (§2.2) is a design choice: each quality
//! factor selects a quantizer scale. This bench sweeps the ladder to show
//! the size/speed trade and measures every codec's encode/decode rates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tbm_codec::dct::{self, DctParams};
use tbm_codec::interframe::{self, GopParams};
use tbm_codec::quality::video_params;
use tbm_codec::{adpcm, pcm, scalable};
use tbm_core::VideoQuality;
use tbm_media::gen::{AudioSignal, VideoPattern};

fn bench_dct(c: &mut Criterion) {
    let frame = VideoPattern::MovingBar.render(7, 320, 240);
    let pixels = 320 * 240;
    let mut g = c.benchmark_group("dct");
    g.sample_size(20);
    g.throughput(Throughput::Elements(pixels));
    for q in [
        VideoQuality::Preview,
        VideoQuality::Vhs,
        VideoQuality::Broadcast,
        VideoQuality::Studio,
    ] {
        g.bench_with_input(BenchmarkId::new("encode", format!("{q:?}")), &q, |b, &q| {
            b.iter(|| black_box(dct::encode_frame(&frame, video_params(q))))
        });
    }
    let enc = dct::encode_frame(&frame, video_params(VideoQuality::Vhs));
    g.bench_function("decode/Vhs", |b| {
        b.iter(|| black_box(dct::decode_frame(&enc).unwrap()))
    });
    g.finish();
}

fn bench_interframe(c: &mut Criterion) {
    let frames: Vec<_> = (0..12u64)
        .map(|i| VideoPattern::MovingBar.render(i, 160, 120))
        .collect();
    let mut g = c.benchmark_group("interframe");
    g.sample_size(10);
    for b_frames in [0usize, 2] {
        let params = GopParams {
            gop_size: 12,
            b_frames,
            dct: DctParams::default(),
        };
        g.bench_with_input(
            BenchmarkId::new("encode_12f", b_frames),
            &params,
            |b, &params| {
                b.iter(|| black_box(interframe::encode_sequence(&frames, params).unwrap()))
            },
        );
    }
    let params = GopParams::default();
    let seq = interframe::encode_sequence(&frames, params).unwrap();
    g.bench_function("decode_12f", |b| {
        b.iter(|| black_box(interframe::decode_sequence(&seq).unwrap()))
    });
    g.finish();
}

fn bench_audio_codecs(c: &mut Criterion) {
    let tone = AudioSignal::Sine {
        hz: 440.0,
        amplitude: 12_000,
    }
    .generate(0, 44_100, 44_100, 2);
    let mut g = c.benchmark_group("audio");
    g.sample_size(20);
    g.throughput(Throughput::Elements(44_100));
    g.bench_function("pcm_encode_1s", |b| {
        b.iter(|| black_box(pcm::encode(&tone)))
    });
    g.bench_function("adpcm_encode_1s", |b| {
        b.iter(|| black_box(adpcm::encode_blocks(&tone, 1024)))
    });
    let blocks = adpcm::encode_blocks(&tone, 1024);
    g.bench_function("adpcm_decode_1s", |b| {
        b.iter(|| black_box(adpcm::decode_blocks(&blocks).unwrap()))
    });
    g.finish();
}

fn bench_scalable(c: &mut Criterion) {
    let frame = VideoPattern::ShiftingGradient.render(4, 320, 240);
    let mut g = c.benchmark_group("scalable");
    g.sample_size(10);
    g.bench_function("encode_layered", |b| {
        b.iter(|| black_box(scalable::encode_layered(&frame, DctParams::default())))
    });
    let lf = scalable::encode_layered(&frame, DctParams::default());
    g.bench_function("decode_base", |b| {
        b.iter(|| black_box(scalable::decode_base(&lf).unwrap()))
    });
    g.bench_function("decode_full", |b| {
        b.iter(|| black_box(scalable::decode_full(&lf).unwrap()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dct,
    bench_interframe,
    bench_audio_codecs,
    bench_scalable
);
criterion_main!(benches);
