//! E2/E9 support — interpretation: index ablations and capture throughput.
//!
//! Ablations from DESIGN.md: time-index strategy (uniform stride vs binary
//! search vs linear scan) and placement-index layout (full per-element
//! table vs chunked two-level index).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tbm_bench::{cd_tone, video_frames, SPF};
use tbm_blob::{ByteSpan, MemBlobStore};
use tbm_codec::dct::DctParams;
use tbm_core::{MediaDescriptor, MediaKind};
use tbm_interp::{capture, ChunkedIndex, ElementEntry, StreamInterp, TimeIndex};
use tbm_time::TimeSystem;

fn uniform_entries(n: usize) -> Vec<ElementEntry> {
    let mut at = 0u64;
    (0..n)
        .map(|i| {
            let size = 1000 + (i % 53) as u64;
            let e = ElementEntry::simple(i as i64, 1, ByteSpan::new(at, size));
            at += size;
            e
        })
        .collect()
}

fn gappy_entries(n: usize) -> Vec<ElementEntry> {
    let mut at = 0u64;
    let mut t = 0i64;
    (0..n)
        .map(|i| {
            let e = ElementEntry::simple(t, 2, ByteSpan::new(at, 100));
            at += 100;
            t += if i % 5 == 0 { 7 } else { 2 }; // occasional gaps
            e
        })
        .collect()
}

fn bench_time_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("time_index");
    g.sample_size(20);
    let n = 100_000;
    let uniform = uniform_entries(n);
    let gappy = gappy_entries(n);
    let u_idx = TimeIndex::build(&uniform);
    let s_idx = TimeIndex::build(&gappy);
    assert!(matches!(u_idx, TimeIndex::Uniform { .. }));
    assert!(matches!(s_idx, TimeIndex::Search));
    let span = gappy.last().unwrap().end();

    g.bench_function("uniform_stride", |b| {
        let mut t = 0i64;
        b.iter(|| {
            t = (t + 7919) % n as i64;
            black_box(u_idx.lookup(&uniform, t))
        })
    });
    g.bench_function("binary_search", |b| {
        let mut t = 0i64;
        b.iter(|| {
            t = (t + 7919) % span;
            black_box(s_idx.lookup(&gappy, t))
        })
    });
    g.bench_function("linear_scan_baseline", |b| {
        let mut t = 0i64;
        b.iter(|| {
            t = (t + 7919) % n as i64;
            black_box(TimeIndex::lookup_scan(&uniform, t))
        })
    });
    g.finish();
}

fn bench_placement_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement_index");
    g.sample_size(20);
    let entries = uniform_entries(100_000);
    let stream = StreamInterp::new(
        MediaDescriptor::new(MediaKind::Video),
        TimeSystem::PAL,
        entries.clone(),
    )
    .unwrap();
    g.bench_function("full_table", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            black_box(stream.entry(i).unwrap().placement.as_single())
        })
    });
    for chunk in [16usize, 64, 256] {
        let ci = ChunkedIndex::build(&entries, chunk).unwrap();
        g.bench_with_input(BenchmarkId::new("chunked", chunk), &ci, |b, ci| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7919) % 100_000;
                black_box(ci.placement(i))
            })
        });
    }
    g.finish();
}

fn bench_capture(c: &mut Criterion) {
    let mut g = c.benchmark_group("capture");
    g.sample_size(10);
    let frames = video_frames(25, 160, 120);
    let audio = cd_tone(25 * SPF);
    g.bench_function("interleaved_1s_160x120", |b| {
        b.iter(|| {
            let mut store = MemBlobStore::new();
            black_box(
                capture::capture_av_interleaved(
                    &mut store,
                    &frames,
                    &audio,
                    SPF,
                    TimeSystem::PAL,
                    DctParams::default(),
                    None,
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_element_read(c: &mut Criterion) {
    let mut store = MemBlobStore::new();
    let cap = capture::capture_av_interleaved(
        &mut store,
        &video_frames(100, 160, 120),
        &cd_tone(100 * SPF),
        SPF,
        TimeSystem::PAL,
        DctParams::default(),
        None,
    )
    .unwrap();
    let v = cap.interpretation.stream("video1").unwrap();
    let mut g = c.benchmark_group("element_read");
    g.sample_size(20);
    g.bench_function("video_element", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 37) % 100;
            black_box(v.read_element(&store, cap.blob, i).unwrap())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_time_index,
    bench_placement_index,
    bench_capture,
    bench_element_read
);
criterion_main!(benches);
