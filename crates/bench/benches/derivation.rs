//! E3/E7 support — derivation: per-operator throughput and the
//! lazy-vs-materialized ablation from DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tbm_derive::{AudioClip, EditCut, Expander, MediaValue, MusicClip, Node, Op, VideoClip};
use tbm_media::gen::{major_scale, AudioSignal, VideoPattern};
use tbm_time::TimeSystem;

fn expander() -> Expander {
    let mut e = Expander::new();
    e.add_source(
        "v1",
        MediaValue::Video(VideoClip::new(
            tbm_media::gen::render_frames(VideoPattern::MovingBar, 0, 100, 160, 120),
            TimeSystem::PAL,
        )),
    );
    e.add_source(
        "v2",
        MediaValue::Video(VideoClip::new(
            tbm_media::gen::render_frames(VideoPattern::ShiftingGradient, 0, 100, 160, 120),
            TimeSystem::PAL,
        )),
    );
    e.add_source(
        "a1",
        MediaValue::Audio(AudioClip::new(
            AudioSignal::Sine {
                hz: 440.0,
                amplitude: 8000,
            }
            .generate(0, 44_100, 44_100, 2),
            44_100,
        )),
    );
    e.add_source(
        "m1",
        MediaValue::Music(MusicClip::new(major_scale(0, 60, 2, 480, 400), 480, 120)),
    );
    e
}

fn bench_operators(c: &mut Criterion) {
    let e = expander();
    let ops: Vec<(&str, Node)> = vec![
        (
            "video_edit_50f",
            Node::derive(
                Op::VideoEdit {
                    cuts: vec![EditCut {
                        input: 0,
                        from: 25,
                        to: 75,
                    }],
                },
                vec![Node::source("v1")],
            ),
        ),
        (
            "fade_25f",
            Node::derive(
                Op::Fade { frames: 25 },
                vec![Node::source("v1"), Node::source("v2")],
            ),
        ),
        (
            "chroma_key_100f",
            Node::derive(
                Op::ChromaKey {
                    key_rgb: 0x141828,
                    tolerance: 25,
                },
                vec![Node::source("v1"), Node::source("v2")],
            ),
        ),
        (
            "normalize_1s",
            Node::derive(
                Op::AudioNormalize {
                    target_peak: 28_000,
                    range: None,
                },
                vec![Node::source("a1")],
            ),
        ),
        (
            "synthesize_scale",
            Node::derive(
                Op::MidiSynthesize {
                    sample_rate: 44_100,
                    tempo_bpm: 0,
                    gain_num: 200,
                },
                vec![Node::source("m1")],
            ),
        ),
    ];
    let mut g = c.benchmark_group("expand");
    g.sample_size(10);
    for (name, node) in &ops {
        g.bench_with_input(BenchmarkId::from_parameter(name), node, |b, node| {
            b.iter(|| black_box(e.expand(node).unwrap()))
        });
    }
    g.finish();
}

/// The DESIGN.md ablation: presenting one frame out of a derived object via
/// lazy pull vs full materialization first.
fn bench_lazy_vs_materialized(c: &mut Criterion) {
    let e = expander();
    let node = Node::derive(
        Op::VideoEdit {
            cuts: vec![
                EditCut {
                    input: 0,
                    from: 0,
                    to: 50,
                },
                EditCut {
                    input: 1,
                    from: 50,
                    to: 100,
                },
            ],
        },
        vec![Node::source("v1"), Node::source("v2")],
    );
    let mut g = c.benchmark_group("one_frame_of_derived_edit");
    g.sample_size(10);
    g.bench_function("lazy_pull", |b| {
        b.iter(|| black_box(e.pull_frame(&node, 73).unwrap()))
    });
    g.bench_function("materialize_then_index", |b| {
        b.iter(|| {
            let MediaValue::Video(v) = e.expand(&node).unwrap() else {
                unreachable!()
            };
            black_box(v.frames[73].clone())
        })
    });
    g.finish();
}

fn bench_spec_roundtrip(c: &mut Criterion) {
    let node = Node::derive(
        Op::VideoEdit {
            cuts: (0..64)
                .map(|i| EditCut {
                    input: 0,
                    from: i * 10,
                    to: i * 10 + 10,
                })
                .collect(),
        },
        vec![Node::source("v1")],
    );
    let mut g = c.benchmark_group("derivation_object");
    g.sample_size(30);
    g.bench_function("serialize_64cut_editlist", |b| {
        b.iter(|| black_box(node.to_bytes()))
    });
    let bytes = node.to_bytes();
    g.bench_function("parse_64cut_editlist", |b| {
        b.iter(|| black_box(Node::from_bytes(&bytes).unwrap()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_operators,
    bench_lazy_vs_materialized,
    bench_spec_roundtrip
);
criterion_main!(benches);
