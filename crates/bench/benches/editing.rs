//! E6 support — non-destructive editing vs copy-based editing.
//!
//! The paper (§4.2): "to delete a video subsequence one could copy and
//! reassemble the frame data, but it would be much more efficient to simply
//! create a derivation representing the edit."

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tbm_bench::{captured_av, SPF};
use tbm_blob::{BlobStore, MemBlobStore};
use tbm_codec::dct::DctParams;
use tbm_db::MediaDb;
use tbm_derive::{EditCut, MediaValue, Node, Op, VideoClip};

fn bench_edit_styles(c: &mut Criterion) {
    let mut g = c.benchmark_group("delete_middle_third");
    g.sample_size(10);
    for n in [25usize, 50, 100] {
        // Derivation-based edit: register an edit list.
        g.bench_with_input(BenchmarkId::new("derivation", n), &n, |b, &n| {
            let (store, cap) = captured_av(n, 160, 120);
            let mut db = MediaDb::with_store(store);
            db.register_interpretation(cap.interpretation).unwrap();
            let mut k = 0u32;
            b.iter(|| {
                k += 1;
                let node = Node::derive(
                    Op::VideoEdit {
                        cuts: vec![
                            EditCut {
                                input: 0,
                                from: 0,
                                to: (n / 3) as u32,
                            },
                            EditCut {
                                input: 0,
                                from: (2 * n / 3) as u32,
                                to: n as u32,
                            },
                        ],
                    },
                    vec![Node::source("video1")],
                );
                black_box(db.create_derived(&format!("edit{k}"), node).unwrap())
            })
        });
        // Copy-based edit: decode, reassemble, re-encode, re-store.
        g.bench_with_input(BenchmarkId::new("copy", n), &n, |b, &n| {
            let (store, cap) = captured_av(n, 160, 120);
            let mut db = MediaDb::with_store(store);
            db.register_interpretation(cap.interpretation).unwrap();
            b.iter(|| {
                let MediaValue::Video(src) = db.materialize("video1").unwrap() else {
                    unreachable!()
                };
                let mut kept = src.frames[..n / 3].to_vec();
                kept.extend_from_slice(&src.frames[2 * n / 3..]);
                let clip = VideoClip::new(kept, src.system);
                let mut out = MemBlobStore::new();
                let blob = out.create().unwrap();
                for f in &clip.frames {
                    out.append(blob, &tbm_codec::dct::encode_frame(f, DctParams::default()))
                        .unwrap();
                }
                black_box(out.total_bytes())
            })
        });
    }
    g.finish();
    let _ = SPF;
}

criterion_group!(benches, bench_edit_styles);
criterion_main!(benches);
