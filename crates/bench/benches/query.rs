//! E8 support — the database query surface: catalog queries and time-based
//! element retrieval vs raw-BLOB scanning.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tbm_bench::{captured_av, SPF};
use tbm_blob::{BlobStore, ByteSpan};
use tbm_core::VideoQuality;
use tbm_db::MediaDb;
use tbm_time::{Rational, TimePoint};

fn db_with_movie(n: usize) -> (MediaDb, u64) {
    let (store, cap) = captured_av(n, 160, 120);
    let blob_len = store.len(cap.blob).unwrap();
    let mut db = MediaDb::with_store(store);
    db.register_interpretation(cap.interpretation).unwrap();
    (db, blob_len)
}

fn bench_catalog_queries(c: &mut Criterion) {
    let (db, _) = db_with_movie(100);
    let mut g = c.benchmark_group("catalog");
    g.sample_size(30);
    g.bench_function("tracks_by_language", |b| {
        b.iter(|| black_box(db.audio_tracks_by_language("en")))
    });
    g.bench_function("videos_by_quality", |b| {
        b.iter(|| black_box(db.videos_with_quality_at_least(VideoQuality::Vhs)))
    });
    g.finish();
}

fn bench_time_retrieval(c: &mut Criterion) {
    let (db, blob_len) = db_with_movie(250);
    let mut g = c.benchmark_group("time_retrieval");
    g.sample_size(20);
    g.bench_function("indexed_element_at", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 1) % 9;
            let t = TimePoint::from_seconds(Rational::new(k, 1));
            black_box(db.element_bytes_at("video1", t).unwrap())
        })
    });
    // Baseline: find the same frame by scanning the raw BLOB for codec
    // magic markers (all a BLOB interface can offer).
    g.bench_function("raw_blob_scan", |b| {
        let blob = db.interpretations()[0].blob();
        let raw = db.store().read(blob, ByteSpan::new(0, blob_len)).unwrap();
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 1) % 9;
            let wanted = k * 25 + 1;
            let mut count = 0usize;
            let mut pos = 0usize;
            while pos + 2 <= raw.len() {
                if &raw[pos..pos + 2] == b"DJ" {
                    count += 1;
                    if count == wanted {
                        break;
                    }
                }
                pos += 1;
            }
            black_box(pos)
        })
    });
    g.finish();
    let _ = SPF;
}

criterion_group!(benches, bench_catalog_queries, bench_time_retrieval);
criterion_main!(benches);
