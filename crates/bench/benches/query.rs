//! E8 support — the database query surface: catalog queries and time-based
//! element retrieval vs raw-BLOB scanning — plus the telemetry plane:
//! model compression of per-tick series and model-native aggregation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tbm_bench::{captured_av, SPF};
use tbm_blob::{BlobStore, ByteSpan};
use tbm_core::VideoQuality;
use tbm_db::MediaDb;
use tbm_query::{
    Aggregate, ErrorBound, HealthMonitor, Metric, Selector, SeriesKey, SeriesSink, SloRule,
    TelemetryStore,
};
use tbm_time::{Rational, TimeDelta, TimePoint};

fn db_with_movie(n: usize) -> (MediaDb, u64) {
    let (store, cap) = captured_av(n, 160, 120);
    let blob_len = store.len(cap.blob).unwrap();
    let mut db = MediaDb::with_store(store);
    db.register_interpretation(cap.interpretation).unwrap();
    (db, blob_len)
}

fn bench_catalog_queries(c: &mut Criterion) {
    let (db, _) = db_with_movie(100);
    let mut g = c.benchmark_group("catalog");
    g.sample_size(30);
    g.bench_function("tracks_by_language", |b| {
        b.iter(|| black_box(db.audio_tracks_by_language("en")))
    });
    g.bench_function("videos_by_quality", |b| {
        b.iter(|| black_box(db.videos_with_quality_at_least(VideoQuality::Vhs)))
    });
    g.finish();
}

fn bench_time_retrieval(c: &mut Criterion) {
    let (db, blob_len) = db_with_movie(250);
    let mut g = c.benchmark_group("time_retrieval");
    g.sample_size(20);
    g.bench_function("indexed_element_at", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 1) % 9;
            let t = TimePoint::from_seconds(Rational::new(k, 1));
            black_box(db.element_bytes_at("video1", t).unwrap())
        })
    });
    // Baseline: find the same frame by scanning the raw BLOB for codec
    // magic markers (all a BLOB interface can offer).
    g.bench_function("raw_blob_scan", |b| {
        let blob = db.interpretations()[0].blob();
        let raw = db.store().read(blob, ByteSpan::new(0, blob_len)).unwrap();
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 1) % 9;
            let wanted = k * 25 + 1;
            let mut count = 0usize;
            let mut pos = 0usize;
            while pos + 2 <= raw.len() {
                if &raw[pos..pos + 2] == b"DJ" {
                    count += 1;
                    if count == wanted {
                        break;
                    }
                }
                pos += 1;
            }
            black_box(pos)
        })
    });
    g.finish();
    let _ = SPF;
}

/// A telemetry-shaped series: plateaus, a ramp, a noise burst, a long
/// near-idle tail — deterministic, no RNG needed.
fn telemetry_series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| match i % 1_000 {
            0..=199 => 250.0,
            200..=399 => 250.0 + 3.0 * (i % 1_000 - 200) as f64,
            400..=449 => 100.0 + ((i * 7_919) % 900) as f64,
            _ => 40.0,
        })
        .collect()
}

fn bench_telemetry_plane(c: &mut Criterion) {
    let series = telemetry_series(10_000);
    let mut g = c.benchmark_group("telemetry");
    g.sample_size(20);
    g.bench_function("compress_10k_ticks_1pct", |b| {
        b.iter(|| {
            let mut sink = SeriesSink::new(ErrorBound::percent(1.0));
            for &v in &series {
                sink.append(v);
            }
            sink.flush();
            black_box(sink.drain())
        })
    });

    let store = {
        let mut sink = SeriesSink::new(ErrorBound::percent(1.0));
        for &v in &series {
            sink.append(v);
        }
        sink.flush();
        let mut store = TelemetryStore::new(TimePoint::ZERO, TimeDelta::from_millis(50));
        let key = SeriesKey {
            node: 0,
            shard: None,
            metric: Metric::LatenessUs,
            degraded: false,
        };
        for seg in sink.drain() {
            store.ingest(key, seg);
        }
        store
    };
    // Aggregation on segment models vs re-materialising every sample.
    g.bench_function("model_native_p99", |b| {
        b.iter(|| black_box(store.aggregate(&Selector::all(), Aggregate::Quantile(99))))
    });
    g.bench_function("rematerialize_p99", |b| {
        let key = SeriesKey {
            node: 0,
            shard: None,
            metric: Metric::LatenessUs,
            degraded: false,
        };
        b.iter(|| {
            let mut values: Vec<f64> = store
                .segments(&key)
                .iter()
                .flat_map(|s| s.values())
                .collect();
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            black_box(values[(values.len() * 99).div_ceil(100) - 1])
        })
    });
    g.finish();
}

/// The health plane's per-tick cost: a zero-rule monitor must be near-free
/// (the fast path neither windows nor retains history), while the full
/// four-rule built-in set pays only small per-tick window aggregation over
/// a fleet-shaped sample batch (3 nodes × 6 shards × 4 metrics + node
/// gauges).
fn bench_health_plane(c: &mut Criterion) {
    let samples: Vec<(SeriesKey, f64)> = {
        let mut v = Vec::new();
        for node in 0..3u16 {
            for shard in 0..6u16 {
                for metric in [
                    Metric::LatenessUs,
                    Metric::CacheHitPct,
                    Metric::DropRatePct,
                    Metric::UnverifiedServes,
                ] {
                    v.push((
                        SeriesKey {
                            node,
                            shard: Some(shard),
                            metric,
                            degraded: false,
                        },
                        ((node * 7 + shard) % 11) as f64 * 13.0,
                    ));
                }
            }
            v.push((
                SeriesKey {
                    node,
                    shard: None,
                    metric: Metric::NodeLoadPct,
                    degraded: false,
                },
                20.0 + node as f64,
            ));
        }
        v
    };
    let tick = |monitor: &mut HealthMonitor, t: i64| {
        let at = TimePoint::ZERO + TimeDelta::from_millis(50 * t);
        black_box(monitor.observe_tick(at, &samples))
    };

    let mut g = c.benchmark_group("health");
    g.sample_size(30);
    g.bench_function("observe_tick_zero_rules", |b| {
        let mut monitor = HealthMonitor::new(TimeDelta::from_millis(50));
        let mut t = 0i64;
        b.iter(|| {
            t += 1;
            tick(&mut monitor, t)
        })
    });
    g.bench_function("observe_tick_four_rules", |b| {
        let armed = || {
            HealthMonitor::new(TimeDelta::from_millis(50))
                .rule(SloRule::p99_full_lateness_below(2_000.0))
                .rule(SloRule::drop_rate_below(1.0))
                .rule(SloRule::no_unverified_serves())
                .rule(SloRule::load_skew_below(60.0))
        };
        let mut monitor = armed();
        let mut t = 0i64;
        b.iter(|| {
            // An armed monitor retains history for its incident reports;
            // restart it every 10k ticks so the bench's memory stays flat
            // while the per-tick windowing cost is what's measured.
            if t == 10_000 {
                monitor = armed();
                t = 0;
            }
            t += 1;
            tick(&mut monitor, t)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_catalog_queries,
    bench_time_retrieval,
    bench_telemetry_plane,
    bench_health_plane
);
criterion_main!(benches);
