//! Shared workload builders for the experiment binaries and benches.

#![deny(missing_docs)]

use tbm_blob::MemBlobStore;
use tbm_codec::dct::DctParams;
use tbm_core::{QualityFactor, VideoQuality};
use tbm_interp::capture::{self, AvCapture};
use tbm_media::gen::{AudioSignal, VideoPattern};
use tbm_media::{AudioBuffer, Frame};
use tbm_time::TimeSystem;

/// CD sample pairs per PAL frame (the Fig. 2 interleave unit).
pub const SPF: usize = 1764;

/// Renders `n` frames of the standard workload pattern.
pub fn video_frames(n: usize, w: u32, h: u32) -> Vec<Frame> {
    tbm_media::gen::render_frames(VideoPattern::MovingBar, 0, n, w, h)
}

/// A 440 Hz stereo CD tone of `frames` sample-frames.
pub fn cd_tone(frames: usize) -> AudioBuffer {
    AudioSignal::Sine {
        hz: 440.0,
        amplitude: 9000,
    }
    .generate(0, frames, 44_100, 2)
}

/// Captures an interleaved AV clip of `n` frames into a fresh store.
pub fn captured_av(n: usize, w: u32, h: u32) -> (MemBlobStore, AvCapture) {
    let mut store = MemBlobStore::new();
    let cap = capture::capture_av_interleaved(
        &mut store,
        &video_frames(n, w, h),
        &cd_tone(n * SPF),
        SPF,
        TimeSystem::PAL,
        tbm_codec::quality::video_params(VideoQuality::Vhs),
        Some(QualityFactor::Video(VideoQuality::Vhs)),
    )
    .expect("capture");
    (store, cap)
}

/// Default DCT parameters for workloads.
pub fn dct_params() -> DctParams {
    DctParams::default()
}

/// Formats a byte count with binary units.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1024 * 1024 {
        format!("{:.2} MiB", b as f64 / (1024.0 * 1024.0))
    } else if b >= 1024 {
        format!("{:.2} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

/// Formats a rate in bytes/second with binary units.
pub fn fmt_rate(bps: f64) -> String {
    if bps >= 1024.0 * 1024.0 {
        format!("{:.2} MiB/s", bps / (1024.0 * 1024.0))
    } else if bps >= 1024.0 {
        format!("{:.2} KiB/s", bps / 1024.0)
    } else {
        format!("{bps:.0} B/s")
    }
}
