//! §throughput — the multi-core serving suite: sessions/sec and events/sec
//! for a broadcast storm through the sharded event loop at 1, 2 and 4
//! workers, with the determinism contract checked on every run (same seed
//! ⇒ byte-identical stats and metrics at any worker count).
//!
//! Shape of the run: every session is opened and played at `t = 0` while
//! the fleet is at one worker (admission is a routing-table walk, not
//! parallel work), then the worker count is raised and the entire backlog
//! is drained in one parallel drive — the broadcast storm proper. The
//! wall-clock of that drain is what the worker knob moves; everything the
//! run *computes* is identical at any count.
//!
//! Knobs (environment):
//!
//! * `TBM_THROUGHPUT_SESSIONS` — concurrent sessions (default 4096; the
//!   event loop holds one heap entry per session, so 100 000+ fits in one
//!   process — see ARCHITECTURE §10 for a worked walkthrough).
//! * `TBM_THROUGHPUT_SHARDS` — catalog shards (default 8).
//! * `TBM_THROUGHPUT_WORKERS` — comma-separated worker counts
//!   (default `1,2,4`).
//! * `TBM_BENCH_OUT` — trajectory file (default `BENCH_serve.json`;
//!   points append across runs).
//!
//! ```text
//! cargo run --release -p tbm-bench --bin exp_throughput
//! ```

use std::time::Instant;
use tbm_blob::MemBlobStore;
use tbm_codec::dct::DctParams;
use tbm_interp::capture::capture_video_scalable;
use tbm_interp::Interpretation;
use tbm_media::gen::{render_frames, VideoPattern};
use tbm_serve::{shard_of, Capacity, Request, Response, ShardedDb, ShardedServer, ShardedStats};
use tbm_time::{TimePoint, TimeSystem};

const SEED: u64 = 0x7EE0;
const FRAMES: usize = 24;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One scalable movie per object name, captured into the store of the
/// shard its name hashes to (the same placement the router uses).
fn sharded_db(names: &[String], shards: usize) -> ShardedDb<MemBlobStore> {
    let mut stores: Vec<MemBlobStore> = (0..shards).map(|_| MemBlobStore::new()).collect();
    let frames = render_frames(VideoPattern::MovingBar, 0, FRAMES, 64, 48);
    let mut interps = Vec::new();
    for name in names {
        let owner = shard_of(name, SEED, shards);
        let (blob, interp) = capture_video_scalable(
            &mut stores[owner],
            &frames,
            TimeSystem::PAL,
            DctParams::default(),
        )
        .unwrap();
        let stream = interp.stream("video1").unwrap().clone();
        let mut renamed = Interpretation::new(blob);
        renamed.add_stream(name, stream).unwrap();
        interps.push(renamed);
    }
    let mut db = ShardedDb::with_stores(stores, SEED);
    for interp in interps {
        db.register_interpretation(interp).unwrap();
    }
    db
}

struct RunResult {
    stats: ShardedStats,
    metrics: String,
    open_secs: f64,
    drain_secs: f64,
    steals: u64,
}

/// Stages `sessions` sessions at one worker, then drains the storm at
/// `workers`. The staged phase is identical across runs; only the drain's
/// wall-clock responds to the worker knob.
fn run(names: &[String], shards: usize, sessions: usize, workers: usize) -> RunResult {
    let db = sharded_db(names, shards);
    let mut server = ShardedServer::new(db, Capacity::new(1 << 40));

    let t0 = Instant::now();
    for i in 0..sessions {
        let object = names[i % names.len()].clone();
        let Response::Opened {
            session: Some(id), ..
        } = server
            .request(TimePoint::ZERO, Request::Open { object })
            .unwrap()
        else {
            panic!("storm session rejected; raise the capacity");
        };
        server
            .request(TimePoint::ZERO, Request::Play { session: id })
            .unwrap();
    }
    let open_secs = t0.elapsed().as_secs_f64();

    server.set_workers(workers);
    let t1 = Instant::now();
    let stats = server.finish();
    let drain_secs = t1.elapsed().as_secs_f64();

    RunResult {
        stats,
        metrics: server.metrics().render(),
        open_secs,
        drain_secs,
        steals: server.worker_stats().iter().map(|w| w.steals).sum(),
    }
}

fn main() {
    let sessions = env_usize("TBM_THROUGHPUT_SESSIONS", 4096);
    let shards = env_usize("TBM_THROUGHPUT_SHARDS", 8);
    let workers: Vec<usize> = std::env::var("TBM_THROUGHPUT_WORKERS")
        .unwrap_or_else(|_| "1,2,4".into())
        .split(',')
        .filter_map(|w| w.trim().parse().ok())
        .collect();
    let out = std::env::var("TBM_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    let names: Vec<String> = (0..shards * 2).map(|i| format!("movie{i}")).collect();

    println!(
        "§throughput — broadcast storm: {sessions} sessions over {shards} shards, \
         {FRAMES} elements each\n"
    );
    println!(
        "{:>8}{:>12}{:>12}{:>16}{:>16}{:>10}",
        "workers", "open ms", "drain ms", "sessions/s", "events/s", "steals"
    );
    println!("{}", "-".repeat(74));

    let mut baseline: Option<RunResult> = None;
    let mut points = Vec::new();
    for &w in &workers {
        let r = run(&names, shards, sessions, w);
        let events = r.stats.global.elements_served as f64;
        let sessions_per_sec = sessions as f64 / (r.open_secs + r.drain_secs);
        let events_per_sec = events / r.drain_secs;
        println!(
            "{:>8}{:>12.1}{:>12.1}{:>16.0}{:>16.0}{:>10}",
            w,
            r.open_secs * 1e3,
            r.drain_secs * 1e3,
            sessions_per_sec,
            events_per_sec,
            r.steals
        );
        // The determinism contract: byte-identical stats and rendered
        // metrics at every worker count.
        if let Some(base) = &baseline {
            assert_eq!(base.stats, r.stats, "stats diverged at {w} workers");
            assert_eq!(base.metrics, r.metrics, "metrics diverged at {w} workers");
        }
        points.push((
            w,
            r.open_secs,
            r.drain_secs,
            sessions_per_sec,
            events_per_sec,
        ));
        if baseline.is_none() {
            baseline = Some(r);
        }
    }

    let base = baseline.expect("at least one worker count");
    assert_eq!(
        base.stats.global.elements_served,
        sessions * FRAMES,
        "every element of every session must be served"
    );

    let best = points
        .iter()
        .filter(|p| p.0 > 1)
        .map(|p| base.drain_secs / p.2)
        .fold(1.0f64, f64::max);
    println!(
        "\ndrain speedup vs 1 worker: {best:.2}x (best multi-worker run); \
         stats byte-identical at every count"
    );

    write_point(&out, sessions, shards, &points);
    println!("trajectory point appended to {out}");
}

/// Appends one trajectory point to the JSON file (creating it on first
/// run). The file keeps the exact suffix written here, so the splice is a
/// plain string operation — no JSON parser needed.
fn write_point(path: &str, sessions: usize, shards: usize, points: &[(usize, f64, f64, f64, f64)]) {
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let runs: Vec<String> = points
        .iter()
        .map(|(w, open, drain, sps, eps)| {
            format!(
                "{{\"workers\": {w}, \"open_ms\": {:.1}, \"drain_ms\": {:.1}, \
                 \"sessions_per_sec\": {:.0}, \"events_per_sec\": {:.0}}}",
                open * 1e3,
                drain * 1e3,
                sps,
                eps
            )
        })
        .collect();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let point = format!(
        "    {{\n      \"unix_time\": {stamp},\n      \"sessions\": {sessions},\n      \
         \"shards\": {shards},\n      \"host_cpus\": {cpus},\n      \
         \"deterministic\": true,\n      \"runs\": [{}]\n    }}",
        runs.join(", ")
    );
    const SUFFIX: &str = "\n  ]\n}\n";
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => match existing.strip_suffix(SUFFIX) {
            Some(head) => format!("{head},\n{point}{SUFFIX}"),
            None => fresh(&point),
        },
        Err(_) => fresh(&point),
    };
    std::fs::write(path, body).expect("write trajectory file");
}

fn fresh(point: &str) -> String {
    format!("{{\n  \"benchmark\": \"serve_throughput\",\n  \"points\": [\n{point}\n  ]\n}}\n")
}
