//! E3 / E7 — Table 1 and Figure 3: the five derivation examples, executed.
//!
//! For each row of the paper's Table 1 (color separation, audio
//! normalization, video edit, video transition, MIDI synthesis) this
//! harness builds the derivation, expands it, and prints the table columns
//! plus what the paper only argues qualitatively: the derivation-object
//! size vs the expanded size, and whether expansion runs in real time
//! (E7's materialization decision).
//!
//! ```text
//! cargo run --release -p tbm-bench --bin exp_tab1
//! ```

#![allow(clippy::format_in_format_args)] // computed cells padded by the outer format
use tbm_bench::fmt_bytes;
use tbm_derive::realtime::{assess_audio, assess_video};
use tbm_derive::{
    AnimClip, AudioClip, EditCut, Expander, MediaValue, MusicClip, Node, Op, VideoClip,
};
use tbm_media::animation::{MoveSpec, Point};
use tbm_media::color::SeparationTable;
use tbm_media::gen::{major_scale, AudioSignal, VideoPattern};
use tbm_time::TimeSystem;

const W: u32 = 320;
const H: u32 = 240;
const FRAMES: usize = 75;

fn sources() -> Expander {
    let mut e = Expander::new();
    e.add_source(
        "image1",
        MediaValue::Image(VideoPattern::ShiftingGradient.render(3, W, H)),
    );
    e.add_source(
        "audio1",
        MediaValue::Audio(AudioClip::new(
            AudioSignal::Sine {
                hz: 440.0,
                amplitude: 5000,
            }
            .generate(0, 3 * 44_100, 44_100, 2),
            44_100,
        )),
    );
    e.add_source(
        "video1",
        MediaValue::Video(VideoClip::new(
            tbm_media::gen::render_frames(VideoPattern::MovingBar, 0, FRAMES, W, H),
            TimeSystem::PAL,
        )),
    );
    e.add_source(
        "video2",
        MediaValue::Video(VideoClip::new(
            tbm_media::gen::render_frames(VideoPattern::ShiftingGradient, 0, FRAMES, W, H),
            TimeSystem::PAL,
        )),
    );
    e.add_source(
        "music1",
        MediaValue::Music(MusicClip::new(major_scale(0, 60, 2, 480, 400), 480, 120)),
    );
    e.add_source(
        "anim1",
        MediaValue::Animation(AnimClip::new(
            vec![(
                MoveSpec::new(1, Point::new(10, 120), Point::new(300, 120), 9, 0xFF4000),
                0,
                30,
            )],
            TimeSystem::from_hz(10),
            W,
            H,
            0x103050,
        )),
    );
    e
}

fn main() {
    println!("E3 / Table 1 — examples of derivation (executed)\n");
    let e = sources();

    let rows: Vec<(Node, &str)> = vec![
        (
            Node::derive(
                Op::ColorSeparate {
                    table: SeparationTable::coated_stock(),
                },
                vec![Node::source("image1")],
            ),
            "color separation",
        ),
        (
            Node::derive(
                Op::AudioNormalize {
                    target_peak: 28_000,
                    range: None,
                },
                vec![Node::source("audio1")],
            ),
            "audio normalization",
        ),
        (
            Node::derive(
                Op::VideoEdit {
                    cuts: vec![
                        EditCut {
                            input: 0,
                            from: 0,
                            to: 30,
                        },
                        EditCut {
                            input: 0,
                            from: 45,
                            to: 75,
                        },
                    ],
                },
                vec![Node::source("video1")],
            ),
            "video edit",
        ),
        (
            Node::derive(
                Op::Fade { frames: 25 },
                vec![Node::source("video1"), Node::source("video2")],
            ),
            "video transition",
        ),
        (
            Node::derive(
                Op::MidiSynthesize {
                    sample_rate: 44_100,
                    tempo_bpm: 0,
                    gain_num: 220,
                },
                vec![Node::source("music1")],
            ),
            "MIDI synthesis",
        ),
        // The prose examples beyond Table 1:
        (
            Node::derive(
                Op::ChromaKey {
                    key_rgb: 0x141828,
                    tolerance: 25,
                },
                vec![Node::source("video1"), Node::source("video2")],
            ),
            "chroma key",
        ),
        (
            Node::derive(Op::RenderAnimation { fps: 25 }, vec![Node::source("anim1")]),
            "animation rendering",
        ),
        (
            Node::derive(
                Op::Transcode { quant_percent: 300 },
                vec![Node::source("video1")],
            ),
            "transcoding",
        ),
        (
            Node::derive(
                Op::AudioResample { to_rate: 22_050 },
                vec![Node::source("audio1")],
            ),
            "audio resampling",
        ),
    ];

    println!(
        "{:<22}{:<20}{:<22}{:<20}{:>12}{:>14}",
        "Derivation", "Argument Type(s)", "Result Type", "Category", "spec bytes", "expanded"
    );
    println!("{}", "-".repeat(110));
    for (node, label) in &rows {
        let Node::Derive { op, .. } = node else {
            unreachable!()
        };
        let t0 = std::time::Instant::now();
        let value = e.expand(node).expect(label);
        let dt = t0.elapsed();
        println!(
            "{:<22}{:<20}{:<22}{:<20}{:>12}{:>14}   ({:.1} ms)",
            label,
            op.argument_types().join(", "),
            op.result_type(),
            op.category().to_string(),
            node.spec_size(),
            fmt_bytes(value.approx_bytes()),
            dt.as_secs_f64() * 1000.0,
        );
    }

    // ------------------------------------------------------------------
    // E7 — real-time feasibility: can the derivation stay implicit?
    // ------------------------------------------------------------------
    println!("\nE7 — real-time expansion feasibility (per-element cost vs element period)");
    println!(
        "{:<22}{:>14}{:>14}{:>10}   decision",
        "derivation", "per-element", "period", "headroom"
    );
    println!("{}", "-".repeat(92));
    for (node, label) in &rows {
        let Node::Derive { op, .. } = node else {
            unreachable!()
        };
        let report = match op.result_type() {
            "video" => assess_video(&e, node, TimeSystem::PAL, 12).ok(),
            "audio" => assess_audio(&e, node, 44_100, 1764, 12).ok(),
            _ => None,
        };
        match report {
            Some(r) => println!(
                "{:<22}{:>11.2} µs{:>11.0} µs{:>9.0}x   {}",
                label,
                r.per_element.as_secs_f64() * 1e6,
                r.period.as_secs_f64() * 1e6,
                r.headroom(),
                r.decision()
            ),
            None => println!("{label:<22}{:>14}", "(not a stream)"),
        }
    }
}
