//! E4 — Figure 4: the composition instance diagram and timeline.
//!
//! Rebuilds the paper's §4.3 example at 1:10 scale and prints (a) the
//! instance diagram as an edge list (the relationships of Fig. 4a:
//! `InterpretationOf`, `By`, `Extracts`, `CutOf`, `Composite`, and the
//! temporal-composition diamonds c1–c3), and (b) the Fig. 4(b) timeline.
//!
//! ```text
//! cargo run --release -p tbm-bench --bin exp_fig4
//! ```

#![allow(clippy::format_in_format_args)] // computed cells padded by the outer format
use tbm_bench::fmt_bytes;
use tbm_compose::{Component, ComponentKind, MultimediaObject};
use tbm_db::{MediaDb, Origin};
use tbm_derive::{AudioClip, EditCut, MediaValue, Node, Op, VideoClip};
use tbm_media::gen::{AudioSignal, VideoPattern};
use tbm_time::{AllenRelation, Rational, TimeDelta, TimePoint, TimeSystem};

const W: u32 = 160;
const H: u32 = 120;
const FPS: u32 = 25;
const SCENE_S: usize = 7; // ≙ paper's 70 s
const FADE_S: usize = 1; // ≙ paper's 10 s

fn main() {
    println!("E4 / Figure 4 — composition instance (1:10 scale of the paper's example)\n");
    let mut db = MediaDb::new();

    // Raw material (the unshaded objects of Fig. 4a).
    let scene = SCENE_S * FPS as usize;
    let v1 = tbm_media::gen::render_frames(VideoPattern::MovingBar, 0, scene, W, H);
    let v2 = tbm_media::gen::render_frames(VideoPattern::ShiftingGradient, 0, scene, W, H);
    db.register_value(
        "video1",
        MediaValue::Video(VideoClip::new(v1, TimeSystem::PAL)),
    )
    .unwrap();
    db.register_value(
        "video2",
        MediaValue::Video(VideoClip::new(v2, TimeSystem::PAL)),
    )
    .unwrap();
    let total_s = 2 * SCENE_S - FADE_S;
    let music = AudioSignal::Chirp {
        from_hz: 200.0,
        to_hz: 600.0,
        sweep_frames: (total_s * 44_100) as u64,
        amplitude: 6000,
    }
    .generate(0, total_s * 44_100, 44_100, 2);
    let narr = AudioSignal::Sine {
        hz: 180.0,
        amplitude: 8000,
    }
    .generate(0, (total_s / 2) * 44_100, 44_100, 2);
    db.register_value("audio1", MediaValue::Audio(AudioClip::new(music, 44_100)))
        .unwrap();
    db.register_value("audio2", MediaValue::Audio(AudioClip::new(narr, 44_100)))
        .unwrap();

    // The four derivation objects: cut1, cut2, fade, concat.
    let fade = (FADE_S * FPS as usize) as u32;
    let scene_f = scene as u32;
    db.create_derived(
        "videoF",
        Node::derive(
            Op::Fade { frames: fade },
            vec![Node::source("video1"), Node::source("video2")],
        ),
    )
    .unwrap();
    db.create_derived(
        "videoC1",
        Node::derive(
            Op::VideoEdit {
                cuts: vec![EditCut {
                    input: 0,
                    from: 0,
                    to: scene_f - fade,
                }],
            },
            vec![Node::source("video1")],
        ),
    )
    .unwrap();
    db.create_derived(
        "videoC2",
        Node::derive(
            Op::VideoEdit {
                cuts: vec![EditCut {
                    input: 0,
                    from: fade,
                    to: scene_f,
                }],
            },
            vec![Node::source("video2")],
        ),
    )
    .unwrap();
    db.create_derived(
        "video3",
        Node::derive(
            Op::VideoEdit {
                cuts: vec![
                    EditCut {
                        input: 0,
                        from: 0,
                        to: scene_f - fade,
                    },
                    EditCut {
                        input: 1,
                        from: 0,
                        to: fade,
                    },
                    EditCut {
                        input: 2,
                        from: 0,
                        to: scene_f - fade,
                    },
                ],
            },
            vec![
                Node::source("videoC1"),
                Node::source("videoF"),
                Node::source("videoC2"),
            ],
        ),
    )
    .unwrap();

    // The multimedia object m with temporal composition c1, c2, c3.
    let full = TimeDelta::from_secs(total_s as i64);
    let mut m = MultimediaObject::new("m");
    m.add_component(
        Component::new(
            "audio1",
            ComponentKind::Audio,
            Node::source("audio1"),
            TimePoint::ZERO,
            full,
        )
        .unwrap(),
    )
    .unwrap();
    m.add_component(
        Component::new(
            "audio2",
            ComponentKind::Audio,
            Node::source("audio2"),
            TimePoint::ZERO,
            TimeDelta::from_secs((total_s / 2) as i64),
        )
        .unwrap(),
    )
    .unwrap();
    m.add_component(
        Component::new(
            "video3",
            ComponentKind::Video,
            Node::source("video3"),
            TimePoint::ZERO,
            full,
        )
        .unwrap(),
    )
    .unwrap();
    m.add_constraint("audio1", AllenRelation::Equals, "video3")
        .unwrap();
    m.add_constraint("audio2", AllenRelation::Starts, "video3")
        .unwrap();
    m.validate().unwrap();

    // --------------------------------------------------------------
    // (a) The instance diagram as an edge list.
    // --------------------------------------------------------------
    println!("instance diagram (cf. Fig. 4a; derived objects marked *):");
    for rec in db.objects() {
        match &rec.origin {
            Origin::Interpreted { stream, .. } => {
                println!("  {:<10} --InterpretationOf--> BLOB ({stream})", rec.name);
            }
            Origin::Derived { .. } => {
                let node = db.provenance(&rec.name).unwrap().unwrap();
                let Node::Derive { op, .. } = node else {
                    unreachable!()
                };
                println!(
                    "  {:<10}* <--{}-- {:?}",
                    rec.name,
                    op.name(),
                    node.sources()
                );
            }
        }
    }
    for (i, c) in m.components().iter().enumerate() {
        println!(
            "  m          <--c{} (temporal composition)-- {} [{} .. {}]",
            i + 1,
            c.name,
            tbm_time::Timecode::new(c.interval.start()).minutes_seconds(),
            tbm_time::Timecode::new(c.end()).minutes_seconds(),
        );
    }
    for sc in m.constraints() {
        println!("  sync: {} {} {}", sc.a, sc.relation, sc.b);
    }

    // --------------------------------------------------------------
    // (b) The timeline diagram.
    // --------------------------------------------------------------
    println!("\ntimeline of m (cf. Fig. 4b; paper marks 0:00, 1:00, 1:10, 2:10 at 1:10 scale):");
    print!("{}", m.timeline_diagram(52));

    // --------------------------------------------------------------
    // Storage accounting for the whole pipeline.
    // --------------------------------------------------------------
    let deriv_total: u64 = ["videoF", "videoC1", "videoC2", "video3"]
        .iter()
        .map(|n| db.derivation_storage_bytes(n).unwrap())
        .sum();
    let sources_total: u64 = ["video1", "video2", "audio1", "audio2"]
        .iter()
        .map(|n| db.stored_bytes(n).unwrap())
        .sum();
    let video3 = db.materialize("video3").unwrap().approx_bytes();
    println!("\nstorage:");
    println!("  raw material            {:>12}", fmt_bytes(sources_total));
    println!("  4 derivation objects    {:>12}", fmt_bytes(deriv_total));
    println!("  video3 if materialized  {:>12}", fmt_bytes(video3));
    println!(
        "  savings by staying implicit: {:.0}x",
        video3 as f64 / deriv_total as f64
    );
    let secs = total_s as f64;
    println!(
        "\nresult: video3 = {} frames ({secs:.0} s), m spans {}",
        match db.materialize("video3").unwrap() {
            MediaValue::Video(v) => v.len(),
            _ => unreachable!(),
        },
        tbm_time::Timecode::new(TimePoint::from_seconds(Rational::from(total_s as i64)))
            .minutes_seconds()
    );
}
