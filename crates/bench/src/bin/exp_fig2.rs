//! E2 / E9 — Figure 2 and the §2.2 interpretation issues.
//!
//! Reproduces the paper's §4.1 "Example of Interpretation": a PAL video
//! signal plus stereo CD audio, digitized, compressed and interleaved in
//! one BLOB; prints the two media descriptors exactly as the paper lists
//! them, the element-table excerpts, and measured vs paper data rates.
//! Then exercises each §2.2 layout issue (heterogeneity, interleaving,
//! padding, out-of-order, scalability) and reports per-layout overhead.
//!
//! Scale: the paper captures 10 minutes of 640×480; by default this runs
//! 2 seconds at 640×480 (structurally identical; every rate is per-second).
//! Pass a frame count to override: `exp_fig2 250`.
//!
//! ```text
//! cargo run --release -p tbm-bench --bin exp_fig2
//! ```

#![allow(clippy::format_in_format_args)] // computed cells padded by the outer format
use tbm_bench::{cd_tone, fmt_bytes, fmt_rate, video_frames, SPF};
use tbm_blob::MemBlobStore;
use tbm_codec::dct;
use tbm_codec::interframe::GopParams;
use tbm_codec::quality::video_params;
use tbm_core::{QualityFactor, VideoQuality};
use tbm_interp::capture;
use tbm_interp::TimeIndex;
use tbm_time::TimeSystem;

const W: u32 = 640;
const H: u32 = 480;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50);
    println!("E2 / Figure 2 — interpretation of a PAL + stereo-CD BLOB");
    println!("capture: {n} frames of {W}x{H} at 25 fps (paper: 15000 frames / 10 min)\n");

    // ------------------------------------------------------------------
    // The Fig. 2 capture.
    // ------------------------------------------------------------------
    let frames = video_frames(n, W, H);
    let audio = cd_tone(n * SPF);
    let mut store = MemBlobStore::new();
    let cap = capture::capture_av_interleaved(
        &mut store,
        &frames,
        &audio,
        SPF,
        TimeSystem::PAL,
        video_params(VideoQuality::Vhs),
        Some(QualityFactor::Video(VideoQuality::Vhs)),
    )
    .expect("capture");

    let v = cap.interpretation.stream("video1").unwrap();
    let a = cap.interpretation.stream("audio1").unwrap();
    println!("{}", v.descriptor());
    println!();
    println!("{}", a.descriptor());

    // ------------------------------------------------------------------
    // The interpretation tables (paper: "video1(elementNumber,
    // elementSize, blobPlacement)"; "audio1(elementNumber, blobPlacement)").
    // ------------------------------------------------------------------
    println!(
        "\nvideo1(elementNumber, elementSize, blobPlacement)  [first 5 of {}]",
        v.len()
    );
    for (i, e) in v.entries().iter().take(5).enumerate() {
        println!(
            "  ({i:>4}, {:>7}, {})",
            e.size,
            e.placement.as_single().unwrap()
        );
    }
    println!(
        "audio1(elementNumber, blobPlacement)               [first 5 of {}]",
        a.len()
    );
    for (i, e) in a.entries().iter().take(5).enumerate() {
        println!("  ({i:>4}, {})", e.placement.as_single().unwrap());
    }

    // ------------------------------------------------------------------
    // Data-rate arithmetic vs the paper's numbers.
    // ------------------------------------------------------------------
    let secs = n as f64 / 25.0;
    let raw_rate = 640.0 * 480.0 * 3.0 * 25.0;
    let video_bytes: u64 = v.entries().iter().map(|e| e.size).sum();
    let video_rate = video_bytes as f64 / secs;
    let audio_bytes: u64 = a.entries().iter().map(|e| e.size).sum();
    let audio_rate = audio_bytes as f64 / secs;
    let bpp = video_rate / 25.0 * 8.0 / (640.0 * 480.0);
    println!("\n{:<34}{:>16}{:>16}", "quantity", "paper", "measured");
    println!("{}", "-".repeat(66));
    println!(
        "{:<34}{:>16}{:>16}",
        "raw video rate",
        "~22 MByte/s",
        fmt_rate(raw_rate)
    );
    println!(
        "{:<34}{:>16}{:>16}",
        "compressed video rate",
        "~0.5 MByte/s",
        fmt_rate(video_rate)
    );
    println!("{:<34}{:>16}{:>16.3}", "video bits/pixel", "~0.5", bpp);
    println!(
        "{:<34}{:>16}{:>16}",
        "audio rate",
        "172 kByte/s",
        fmt_rate(audio_rate)
    );
    println!(
        "{:<34}{:>16}{:>16}",
        "audio chunk per frame",
        "1764 pairs",
        format!("{} pairs", SPF)
    );
    println!(
        "{:<34}{:>16}{:>16.1}",
        "compression vs raw",
        "~44:1",
        raw_rate / video_rate
    );

    // ------------------------------------------------------------------
    // The descriptive quality ladder (§2.2 "Quality Factors"): the schema
    // says "VHS quality"; only the codec layer knows the quantizer.
    // ------------------------------------------------------------------
    println!("\nquality-factor ladder (one 640x480 frame):");
    println!(
        "{:<22}{:>12}{:>12}{:>12}",
        "quality factor", "bytes", "bits/pixel", "PSNR (dB)"
    );
    println!("{}", "-".repeat(58));
    let probe = &frames[frames.len() / 2];
    let reference = probe.to_format(tbm_media::PixelFormat::Yuv420);
    for q in [
        tbm_core::VideoQuality::Preview,
        tbm_core::VideoQuality::Vhs,
        tbm_core::VideoQuality::Broadcast,
        tbm_core::VideoQuality::Studio,
    ] {
        let enc = dct::encode_frame(probe, video_params(q));
        let dec = dct::decode_frame(&enc).expect("own bitstream");
        let psnr = reference.psnr(&dec).unwrap();
        println!(
            "{:<22}{:>12}{:>12.3}{:>12.1}",
            QualityFactor::Video(q).name(),
            enc.len(),
            dct::bits_per_pixel(enc.len(), W, H),
            psnr
        );
    }

    // ------------------------------------------------------------------
    // E9 — the §2.2 layout issues, one BLOB each.
    // ------------------------------------------------------------------
    println!("\nE9 — §2.2 interpretation issues (reduced geometry 160x120, {n} frames)");
    let small = video_frames(n, 160, 120);
    let small_audio = cd_tone(n * SPF);

    // Interleaved (baseline).
    let mut s1 = MemBlobStore::new();
    let base = capture::capture_av_interleaved(
        &mut s1,
        &small,
        &small_audio,
        SPF,
        TimeSystem::PAL,
        dct::DctParams::default(),
        None,
    )
    .unwrap();

    // Padded (CD-I sectors).
    let mut s2 = MemBlobStore::new();
    let padded = capture::capture_av_padded(
        &mut s2,
        &small,
        &small_audio,
        SPF,
        TimeSystem::PAL,
        dct::DctParams::default(),
        None,
        2048,
    )
    .unwrap();

    // Out-of-order (interframe GOP).
    let mut s3 = MemBlobStore::new();
    let (_, gop_interp) = capture::capture_video_interframe(
        &mut s3,
        &small,
        TimeSystem::PAL,
        GopParams::default(),
        None,
    )
    .unwrap();
    let gop = gop_interp.stream("video1").unwrap();
    let gop_bytes = gop.total_bytes();
    // Show the physical placement order of the first GOP group.
    let mut order: Vec<usize> = (0..gop.len().min(4)).collect();
    order.sort_by_key(|&i| gop.entries()[i].placement.as_single().unwrap().offset);
    let one_indexed: Vec<usize> = order.iter().map(|i| i + 1).collect();

    // Scalable (two layers).
    let mut s4 = MemBlobStore::new();
    let (_, sc_interp) = capture::capture_video_scalable(
        &mut s4,
        &small,
        TimeSystem::PAL,
        dct::DctParams::default(),
    )
    .unwrap();
    let sc = sc_interp.stream("video1").unwrap();
    let sc_base: u64 = sc.entries().iter().map(|e| e.placement.prefix_len(1)).sum();
    let sc_total = sc.total_bytes();

    println!(
        "{:<26}{:>14}{:>14}  note",
        "layout", "BLOB bytes", "overhead"
    );
    println!("{}", "-".repeat(78));
    println!(
        "{:<26}{:>14}{:>14}  audio follows frame",
        "interleaved (Fig. 2)",
        fmt_bytes(base.blob_len),
        "0 B"
    );
    println!(
        "{:<26}{:>14}{:>14}  {}",
        "padded (CD-I, 2 KiB)",
        fmt_bytes(padded.blob_len),
        fmt_bytes(padded.padding_bytes),
        format!(
            "{:.1}% padding",
            100.0 * padded.padding_bytes as f64 / padded.blob_len as f64
        )
    );
    println!(
        "{:<26}{:>14}{:>14}  {}",
        "out-of-order (GOP)",
        fmt_bytes(gop_bytes),
        "0 B",
        format!("placement {one_indexed:?}")
    );
    println!(
        "{:<26}{:>14}{:>14}  {}",
        "scalable (2 layers)",
        fmt_bytes(sc_total),
        fmt_bytes(sc_total - sc_base),
        format!(
            "base = {:.0}% of bytes",
            100.0 * sc_base as f64 / sc_total as f64
        )
    );

    // ------------------------------------------------------------------
    // Index ablation: time → element lookup.
    // ------------------------------------------------------------------
    println!(
        "\nindex ablation: element-at-time lookup over {} entries",
        v.len()
    );
    let entries = v.entries();
    let probes: Vec<i64> = (0..10_000).map(|i| (i * 7) % n as i64).collect();
    let t0 = std::time::Instant::now();
    let mut acc = 0usize;
    for &p in &probes {
        acc += TimeIndex::lookup_scan(entries, p).unwrap();
    }
    let scan = t0.elapsed();
    let idx = TimeIndex::build(entries);
    let t1 = std::time::Instant::now();
    for &p in &probes {
        acc += idx.lookup(entries, p).unwrap();
    }
    let indexed = t1.elapsed();
    std::hint::black_box(acc);
    println!(
        "  linear scan : {:>10.1} ns/lookup",
        scan.as_nanos() as f64 / probes.len() as f64
    );
    println!(
        "  time index  : {:>10.1} ns/lookup ({:?} path, {:.0}x faster)",
        indexed.as_nanos() as f64 / probes.len() as f64,
        match idx {
            TimeIndex::Uniform { .. } => "uniform-stride",
            TimeIndex::Search => "binary-search",
        },
        scan.as_secs_f64() / indexed.as_secs_f64().max(1e-12)
    );
}
