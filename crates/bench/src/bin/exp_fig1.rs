//! E1 — Figure 1: the timed-stream category taxonomy.
//!
//! Constructs a representative stream for each row of the paper's Figure 1
//! (homogeneous, heterogeneous, continuous, non-continuous, event-based,
//! constant frequency, constant data rate, uniform), classifies each with
//! the model's single-pass classifier, and prints the membership matrix.
//!
//! ```text
//! cargo run -p tbm-bench --bin exp_fig1
//! ```

#![allow(clippy::format_in_format_args)] // computed cells padded by the outer format
use tbm_codec::adpcm;
use tbm_core::{
    classify, MediaType, SizedElement, StreamCategory, StreamElement, TimedStream, TimedTuple,
};
use tbm_media::gen::{chord_progression, AudioSignal, VideoPattern};
use tbm_media::midi::notes_to_events;
use tbm_time::TimeSystem;

fn sized<E: StreamElement>(e: &E) -> SizedElement {
    SizedElement::with_descriptor(e.byte_size(), e.element_descriptor())
}

fn main() {
    println!("E1 / Figure 1 — categories of timed streams\n");

    let mut rows: Vec<(&str, TimedStream<SizedElement>)> = Vec::new();

    // CD audio: uniform (and hence everything weaker).
    rows.push((
        "CD audio (PCM samples)",
        TimedStream::constant_frequency(
            MediaType::cd_audio(),
            TimeSystem::CD_AUDIO,
            0,
            (0..44_100).map(|_| SizedElement::new(4)),
        ),
    ));

    // ADPCM: heterogeneous (varying encoding parameters), continuous,
    // constant frequency (equal block durations), constant data rate.
    let tone = AudioSignal::Chirp {
        from_hz: 100.0,
        to_hz: 4_000.0,
        sweep_frames: 44_100,
        amplitude: 12_000,
    }
    .generate(0, 44_100, 44_100, 1);
    let blocks = adpcm::encode_blocks(&tone, 1024);
    rows.push((
        "ADPCM audio (varying params)",
        TimedStream::continuous_from(
            MediaType::adpcm_audio(),
            TimeSystem::CD_AUDIO,
            0,
            blocks[..43].iter().map(|b| (sized(b), b.frames() as i64)),
        )
        .unwrap(),
    ));

    // Compressed video: constant frequency, sizes vary.
    let frames: Vec<_> = (0..25u64)
        .map(|i| VideoPattern::MovingBar.render(i, 160, 120))
        .map(|f| tbm_codec::dct::encode_frame(&f, tbm_codec::dct::DctParams::default()))
        .collect();
    rows.push((
        "JPEG-style video (25 fps)",
        TimedStream::constant_frequency(
            MediaType::video("intraframe video"),
            TimeSystem::PAL,
            0,
            frames.iter().map(|d| SizedElement::new(d.len() as u64)),
        ),
    ));

    // Raw video: uniform.
    rows.push((
        "raw video (fixed-size frames)",
        TimedStream::constant_frequency(
            MediaType::video("raw video"),
            TimeSystem::PAL,
            0,
            (0..25).map(|_| SizedElement::new(460_800)),
        ),
    ));

    // Constant data rate with varying durations.
    rows.push((
        "constant-data-rate stream",
        TimedStream::continuous_from(
            MediaType::new("constant-rate demo", tbm_core::MediaKind::Audio),
            TimeSystem::MILLIS,
            0,
            [(10i64, 1i64), (20, 2), (30, 3), (10, 1)]
                .into_iter()
                .map(|(z, d)| (SizedElement::new(z as u64 * 100), d)),
        )
        .unwrap(),
    ));

    // Music: non-continuous (chords overlap, rests gap).
    let chords = chord_progression(0, 60, 960);
    let mut tuples: Vec<_> = chords
        .iter()
        .map(|&(_, s, d)| TimedTuple::new(SizedElement::new(3), s, d))
        .collect();
    tuples.sort_by_key(|t| t.start);
    rows.push((
        "music (notes, chords overlap)",
        TimedStream::from_tuples(MediaType::music(), TimeSystem::MIDI_PPQ_480, tuples).unwrap(),
    ));

    // Animation with rests: non-continuous (gaps).
    rows.push((
        "animation (movement + rest)",
        TimedStream::from_tuples(
            MediaType::animation(),
            TimeSystem::from_hz(10),
            vec![
                TimedTuple::new(SizedElement::new(28), 0, 20),
                TimedTuple::new(SizedElement::new(28), 30, 20),
            ],
        )
        .unwrap(),
    ));

    // MIDI: event-based.
    let events = notes_to_events(&chords);
    rows.push((
        "MIDI (Start/Stop Note events)",
        TimedStream::from_tuples(
            MediaType::midi(),
            TimeSystem::MIDI_PPQ_480,
            events
                .iter()
                .map(|&(e, at)| TimedTuple::new(sized(&e), at, 0))
                .collect(),
        )
        .unwrap(),
    ));

    // ---- The matrix -------------------------------------------------------
    let headers = [
        "homog", "heter", "cont", "n-cont", "event", "c-freq", "c-rate", "unif",
    ];
    print!("{:<34}", "stream");
    for h in headers {
        print!("{h:>8}");
    }
    println!();
    println!("{}", "-".repeat(34 + 8 * headers.len()));
    for (name, stream) in &rows {
        let r = classify(stream);
        print!("{name:<34}");
        for c in StreamCategory::ALL {
            print!("{:>8}", if r.satisfies(c) { "■" } else { "·" });
        }
        println!();
    }
    println!();
    for (name, stream) in &rows {
        let r = classify(stream);
        println!("{name:<34} category = {}", r.descriptor_line());
    }

    // Verify the media types' own category constraints hold.
    println!();
    for (name, stream) in &rows {
        let report = classify(stream);
        match stream.media_type().validate_categories(&report) {
            Ok(()) => println!("{name:<34} satisfies its media type's constraints"),
            Err(e) => println!("{name:<34} VIOLATES constraints: {e}"),
        }
    }
}
