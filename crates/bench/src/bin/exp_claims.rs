//! E6 / E8 / E10 — the paper's quantitative claims, measured.
//!
//! * **E6 (storage, §4.2)** — "a video edit list is likely many orders of
//!   magnitude smaller than a video object": ratio sweep over clip length
//!   and edit count, plus edit latency of derivation-based vs copy-based
//!   editing.
//! * **E8 (queries, §1.2)** — structured representation answers queries a
//!   BLOB cannot; time→element access through the interpretation index vs
//!   scanning an uninterpreted byte sequence.
//! * **E10 (timing, §2.2)** — playback simulation: bandwidth sweep with
//!   deadline misses, A/V sync skew, and scalable degradation (base layer
//!   only) rescuing playback under constrained bandwidth.
//! * **§faults (robustness)** — the Fig. 2 movie played through seeded
//!   fault storms (transient I/O errors, bit-flip corruption, truncated
//!   reads, latency spikes): every fault detected by checksum or
//!   retry-exhaustion, recovery accounted as recovered/degraded/dropped,
//!   and the whole run reproducible from the seed.
//! * **§serve (delivery)** — the serving layer under a broadcast load: a
//!   shared segment cache collapses the storage reads of overlapping
//!   sessions on one hot object, and admission control keeps the
//!   deadline-miss rate bounded where an uncontrolled sweep degrades.
//! * **§obs (observability)** — the same pipeline run fully traced: every
//!   deadline miss attributed to exactly one cause (admission over-commit,
//!   retry storm, storage latency or decode overrun), the metrics registry
//!   rendered, and the Chrome-trace export shown byte-identical across two
//!   same-seed runs.
//! * **§tiers (tiered storage)** — a scripted remote blackout served
//!   through the mem/file/remote stack: the tiered store keeps the drop
//!   rate at zero and p99 lateness bounded while a no-failover baseline
//!   drops elements; deadline-pressed hedged reads self-heal a tripped
//!   tier early and bound p99 where waiting out the breaker cooldown at
//!   brownout latency does not; misses attributed incl. tier-failover.
//! * **§shards (sharded catalogs)** — the catalog partitioned behind the
//!   shard-aware front end: per-object playback timing bit-identical at 1
//!   and 4 shards (routing is invisible to an uncontended object), a
//!   24-session storm admitted at multiples of the single catalog's rate
//!   once each shard brings its own budget, the fault invariant surviving
//!   the per-shard → global rollup, and same-seed sharded runs identical.
//! * **§fleet (multi-node resilience)** — the sharded catalog hosted on a
//!   simulated four-node fleet with a scripted node kill under a
//!   24-session storm: live shard migration with catalog handoff keeps
//!   every verified serve (zero drops) where a no-migration baseline
//!   sheds in-flight elements; the handoff stall is attributed to the
//!   node-loss miss cause; and the whole kill-restart-restore cycle
//!   replays byte-identically from the seed.
//! * **§query (telemetry plane)** — the fleet broadcast sampled every
//!   50 ms into model-compressed series at a 1% error bound: ≥10× smaller
//!   than the raw per-tick series, model-native aggregates within the
//!   bound of the exact aggregates (measured against a same-seed lossless
//!   run), and the brownout question — p99 lateness for degraded sessions
//!   on the browned-out node during the brownout window — answered in one
//!   typed query whose rendered table replays byte-identically.
//! * **§health (SLO plane)** — every built-in SLO rule armed over three
//!   scripted storms: the node kill fires exactly the fast-window
//!   lateness alert, the brownout exactly the slow-window load-skew
//!   alert, the clean run none at all; each alert opens exactly once (no
//!   flapping) and closes by hysteresis; and same-seed reruns render
//!   byte-identical incident reports.
//! * **§remediate (closed loop)** — the same kill and brownout storms
//!   with the remediation plane on vs off: the playbook's guarded derate
//!   cuts the kill storm's p99 lateness and its alert-open ticks, the
//!   rebalance closes the brownout's skew alert sooner than waiting out
//!   the fault, nothing is rolled back or frozen on the happy path, and
//!   the same-seed rerun replays a byte-identical action log.
//!
//! ```text
//! cargo run --release -p tbm-bench --bin exp_claims
//! ```

#![allow(clippy::format_in_format_args)] // computed cells padded by the outer format
use tbm_bench::{captured_av, cd_tone, fmt_bytes, fmt_rate, video_frames};
use tbm_blob::{BlobStore, FaultPlan, FaultyBlobStore, MemBlobStore};
use tbm_codec::dct::DctParams;
use tbm_db::MediaDb;
use tbm_derive::{EditCut, Expander, MediaValue, Node, Op, VideoClip};
use tbm_interp::capture;
use tbm_player::{schedule_from_interp, sync_skew, CostModel, PlaybackSim};
use tbm_time::{Rational, TimeSystem};

fn main() {
    e6_storage_and_edit_latency();
    e8_structured_queries();
    e10_playback_and_scalability();
    faults_and_degradation();
    serve_delivery();
    obs_attribution();
    tiers_failover();
    shards_scaling();
    fleet_resilience();
    query_telemetry();
    health_plane();
    remediation_plane();
}

// ---------------------------------------------------------------------------
// E6
// ---------------------------------------------------------------------------

fn e6_storage_and_edit_latency() {
    println!("E6 — edit lists vs video objects (§4.2 storage claim)\n");
    println!(
        "{:>10}{:>8}{:>16}{:>16}{:>12}",
        "frames", "cuts", "edit list", "video object", "ratio"
    );
    println!("{}", "-".repeat(62));
    // The video-object size scales with clip length; the edit list only
    // with cut count. Paper full scale (15000 frames at 640x480 VHS ≈
    // 0.5 MB/s) is extrapolated from measured per-frame size.
    let (_, cap) = captured_av(50, 320, 240);
    let v = cap.interpretation.stream("video1").unwrap();
    let bytes_per_frame = v.total_bytes() / v.len() as u64;
    for &frames in &[250u64, 2_500, 15_000, 150_000] {
        for &cuts in &[1usize, 8, 64] {
            let node = Node::derive(
                Op::VideoEdit {
                    cuts: (0..cuts)
                        .map(|i| EditCut {
                            input: 0,
                            from: (i as u64 * frames / cuts as u64) as u32,
                            to: ((i as u64 + 1) * frames / cuts as u64) as u32,
                        })
                        .collect(),
                },
                vec![Node::source("video1")],
            );
            let spec = node.spec_size() as u64;
            let object = frames * bytes_per_frame;
            println!(
                "{frames:>10}{cuts:>8}{:>16}{:>16}{:>11.0}x",
                fmt_bytes(spec),
                fmt_bytes(object),
                object as f64 / spec as f64
            );
        }
    }
    println!(
        "\n(measured {bytes_per_frame} B/frame at 320x240 VHS quality; the paper's \
         'many orders of magnitude' holds from 3 orders at short clips to 6+ at scale)"
    );

    // Edit latency: derivation vs copy.
    println!("\nedit latency — derivation-based vs copy-based (middle-third trim):");
    println!(
        "{:>10}{:>18}{:>18}{:>12}",
        "frames", "derivation", "copy+re-store", "speedup"
    );
    println!("{}", "-".repeat(58));
    for &n in &[50usize, 100, 200] {
        let (store, cap) = captured_av(n, 160, 120);
        let mut db = MediaDb::with_store(store);
        db.register_interpretation(cap.interpretation).unwrap();
        let from = (n / 3) as u32;
        let to = (2 * n / 3) as u32;

        // Derivation-based: register an edit list.
        let t0 = std::time::Instant::now();
        db.create_derived(
            "trim",
            Node::derive(
                Op::VideoEdit {
                    cuts: vec![EditCut { input: 0, from, to }],
                },
                vec![Node::source("video1")],
            ),
        )
        .unwrap();
        let lazy = t0.elapsed();

        // Copy-based: decode the span, re-encode, write a new BLOB.
        let t1 = std::time::Instant::now();
        let MediaValue::Video(src) = db.materialize("video1").unwrap() else {
            unreachable!()
        };
        let cut = VideoClip::new(src.frames[from as usize..to as usize].to_vec(), src.system);
        let mut new_store = MemBlobStore::new();
        let blob = new_store.create().unwrap();
        for f in &cut.frames {
            let enc = tbm_codec::dct::encode_frame(f, DctParams::default());
            new_store.append(blob, &enc).unwrap();
        }
        let copy = t1.elapsed();
        println!(
            "{n:>10}{:>15.2} µs{:>15.1} ms{:>11.0}x",
            lazy.as_secs_f64() * 1e6,
            copy.as_secs_f64() * 1e3,
            copy.as_secs_f64() / lazy.as_secs_f64().max(1e-12)
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// E8
// ---------------------------------------------------------------------------

fn e8_structured_queries() {
    println!("E8 — structured queries vs the uninterpreted BLOB (§1.2)\n");
    let n = 250; // 10 s
    let (store, cap) = captured_av(n, 160, 120);
    let blob = cap.blob;
    let blob_len = store.len(blob).unwrap();
    let mut db = MediaDb::with_store(store);
    db.register_interpretation(cap.interpretation).unwrap();

    // Q1: select the sound track — trivial structurally, impossible on a
    // BLOB without parsing every byte.
    let t0 = std::time::Instant::now();
    let audio_objects: Vec<_> = db
        .objects()
        .iter()
        .filter(|o| {
            db.descriptor(&o.name)
                .map(|d| d.kind() == tbm_core::MediaKind::Audio)
                .unwrap_or(false)
        })
        .map(|o| o.name.clone())
        .collect();
    let q1 = t0.elapsed();
    println!(
        "select audio tracks      -> {:?} in {:.1} µs (catalog lookup)",
        audio_objects,
        q1.as_secs_f64() * 1e6
    );

    // Q2: the element at t = 7 s, via the interpretation index…
    let (_, vstream) = db.stream_of("video1").unwrap();
    let t1 = std::time::Instant::now();
    let tick = vstream
        .system()
        .seconds_to_tick_floor(tbm_time::TimePoint::from_seconds(Rational::from(7)));
    let idx = vstream.element_at(tick).unwrap();
    let bytes = vstream.read_element(db.store(), blob, idx).unwrap();
    let indexed = t1.elapsed();

    // …versus scanning the uninterpreted BLOB for the 176th frame header
    // (the BLOB gives no structure, so a scan must parse every byte).
    let t2 = std::time::Instant::now();
    let raw = db
        .store()
        .read(blob, tbm_blob::ByteSpan::new(0, blob_len))
        .unwrap();
    let mut found = 0usize;
    let mut pos = 0usize;
    let mut frame_count = 0usize;
    while pos + 2 <= raw.len() {
        if &raw[pos..pos + 2] == b"DJ" {
            frame_count += 1;
            if frame_count == idx + 1 {
                found = pos;
                break;
            }
        }
        pos += 1;
    }
    let scanned = t2.elapsed();
    println!(
        "frame at t = 7 s         -> element {idx} ({} B) in {:.1} µs via interpretation",
        bytes.len(),
        indexed.as_secs_f64() * 1e6
    );
    println!(
        "same via raw BLOB scan   -> offset {found} in {:.1} ms ({}x slower, and only \
         works because this codec has a magic marker)",
        scanned.as_secs_f64() * 1e3,
        (scanned.as_secs_f64() / indexed.as_secs_f64().max(1e-12)) as u64
    );

    // Q3: fidelity selection needs layered placement — metadata a BLOB
    // simply does not have.
    let mut s2 = MemBlobStore::new();
    let (b2, interp2) = capture::capture_video_scalable(
        &mut s2,
        &video_frames(25, 160, 120),
        TimeSystem::PAL,
        DctParams::default(),
    )
    .unwrap();
    let sc = interp2.stream("video1").unwrap();
    let base = sc.read_element_layers(&s2, b2, 10, 1).unwrap();
    let full = sc.read_element(&s2, b2, 10).unwrap();
    println!(
        "fidelity selection       -> base layer {} B vs full {} B ({}% bandwidth saved)\n",
        base.len(),
        full.len(),
        100 - 100 * base.len() / full.len()
    );
}

// ---------------------------------------------------------------------------
// E10
// ---------------------------------------------------------------------------

fn e10_playback_and_scalability() {
    println!("E10 — playback timing, sync and scalable degradation (§2.2)\n");
    let n = 250;
    let (_, cap) = captured_av(n, 320, 240);
    let v = cap.interpretation.stream("video1").unwrap();
    let a = cap.interpretation.stream("audio1").unwrap();
    let vjobs = schedule_from_interp(v, None);
    let ajobs = schedule_from_interp(a, None);
    let demand = tbm_player::demanded_rate(&vjobs, TimeSystem::PAL)
        .unwrap()
        .to_f64()
        + 176_400.0;
    println!("A/V demand: {}", fmt_rate(demand));
    println!(
        "\n{:>12}{:>10}{:>14}{:>16}{:>16}",
        "bandwidth", "misses", "miss rate", "max lateness", "A/V max skew"
    );
    println!("{}", "-".repeat(68));
    for factor in [2.0, 1.2, 1.0, 0.9, 0.7, 0.5] {
        let bw = (demand * factor) as u64;
        let model = CostModel::bandwidth_only(bw);
        // Merge both streams through one pipeline for the miss counts.
        let mut all = vjobs.clone();
        all.extend(ajobs.iter().copied());
        all.sort_by_key(|j| j.deadline);
        let stats = PlaybackSim::new(model).with_startup(3).run(&all);
        let sync = sync_skew(model, &vjobs, &ajobs);
        println!(
            "{:>12}{:>10}{:>13.1}%{:>13.1} ms{:>13.1} ms",
            fmt_rate(bw as f64),
            stats.misses,
            stats.miss_rate() * 100.0,
            stats.max_lateness.seconds().to_f64() * 1e3,
            sync.max_skew.seconds().to_f64() * 1e3,
        );
    }

    // Scalable rescue: at 40 % of full-stream demand, full-fidelity
    // playback fails but base-layer playback fits.
    println!("\nscalable degradation (layered capture, video only):");
    let mut s = MemBlobStore::new();
    let (_, interp) = capture::capture_video_scalable(
        &mut s,
        &video_frames(125, 320, 240),
        TimeSystem::PAL,
        DctParams::default(),
    )
    .unwrap();
    let sc = interp.stream("video1").unwrap();
    let full = schedule_from_interp(sc, None);
    let base = schedule_from_interp(sc, Some(1));
    let full_demand = tbm_player::demanded_rate(&full, TimeSystem::PAL)
        .unwrap()
        .to_f64();
    println!(
        "{:>12}{:>18}{:>18}",
        "bandwidth", "full fidelity", "base layer only"
    );
    println!("{}", "-".repeat(48));
    for factor in [1.5, 0.8, 0.4, 0.2] {
        let bw = (full_demand * factor) as u64;
        let model = CostModel::bandwidth_only(bw);
        let f = PlaybackSim::new(model).with_startup(3).run(&full);
        let b = PlaybackSim::new(model).with_startup(3).run(&base);
        let verdict = |s: &tbm_player::PlaybackStats| {
            if s.clean() {
                "clean".to_owned()
            } else {
                format!("{} misses", s.misses)
            }
        };
        println!(
            "{:>12}{:>18}{:>18}",
            fmt_rate(bw as f64),
            verdict(&f),
            verdict(&b)
        );
    }

    // Lazy expansion during playback (E7 tie-in): pull a derived fade at
    // presentation rate.
    let mut expander = Expander::new();
    expander.add_source(
        "v1",
        MediaValue::Video(VideoClip::new(video_frames(50, 320, 240), TimeSystem::PAL)),
    );
    expander.add_source(
        "v2",
        MediaValue::Video(VideoClip::new(
            tbm_media::gen::render_frames(
                tbm_media::gen::VideoPattern::ShiftingGradient,
                0,
                50,
                320,
                240,
            ),
            TimeSystem::PAL,
        )),
    );
    let fade = Node::derive(
        Op::Fade { frames: 25 },
        vec![Node::source("v1"), Node::source("v2")],
    );
    let report = tbm_derive::realtime::assess_video(&expander, &fade, TimeSystem::PAL, 25).unwrap();
    println!(
        "\nderived fade at 320x240: {:.2} ms/frame vs 40 ms period — {}",
        report.per_element.as_secs_f64() * 1e3,
        report.decision()
    );

    // Trick play (§2.1): "since frames are compressed independently, it is
    // easier to rearrange the order of the frames and to playback in
    // reverse or at variable rates" — measured as the data-rate cost of
    // reverse playback for intraframe vs interframe captures.
    use tbm_player::{schedule_at_rate, schedule_reverse};
    let mut s_intra = MemBlobStore::new();
    let frames_small = video_frames(50, 160, 120);
    let intra = capture::capture_av_interleaved(
        &mut s_intra,
        &frames_small,
        &tbm_bench::cd_tone(50 * 1764),
        1764,
        TimeSystem::PAL,
        DctParams::default(),
        None,
    )
    .unwrap();
    let intra_v = intra.interpretation.stream("video1").unwrap();
    let mut s_gop = MemBlobStore::new();
    let (_, gop_interp) = capture::capture_video_interframe(
        &mut s_gop,
        &frames_small,
        TimeSystem::PAL,
        tbm_codec::interframe::GopParams::default(),
        None,
    )
    .unwrap();
    let gop_v = gop_interp.stream("video1").unwrap();
    let cost = |jobs: &[tbm_player::ElementJob]| -> u64 { jobs.iter().map(|j| j.bytes).sum() };
    println!("\ntrick play (§2.1): bytes to present 50 frames");
    println!(
        "{:<26}{:>14}{:>14}{:>10}",
        "capture", "forward", "reverse", "penalty"
    );
    println!("{}", "-".repeat(64));
    for (name, stream) in [
        ("intraframe (JPEG-style)", intra_v),
        ("interframe (GOP)", gop_v),
    ] {
        let fwd = cost(&schedule_from_interp(stream, None));
        let rev = cost(&schedule_reverse(stream, None));
        println!(
            "{name:<26}{:>14}{:>14}{:>9.1}x",
            fmt_bytes(fwd),
            fmt_bytes(rev),
            rev as f64 / fwd as f64
        );
    }
    // Variable rate: 2x playback doubles the demanded rate.
    let normal = schedule_from_interp(intra_v, None);
    let double = schedule_at_rate(intra_v, None, 2, 1).unwrap();
    let rate = |jobs: &[tbm_player::ElementJob]| {
        tbm_player::demanded_rate(jobs, TimeSystem::PAL)
            .map(|r| r.to_f64())
            .unwrap_or(0.0)
    };
    println!(
        "2x-speed playback demand: {} (vs {} at 1x)",
        fmt_rate(rate(&double)),
        fmt_rate(rate(&normal))
    );

    // §6 tie-in: the activity view of the Fig. 2 playback chain —
    // "database operations … viewed as extended activities that produce,
    // consume and transform flows of data."
    use tbm_player::{Activity, Pipeline};
    println!("\nactivity analysis of the Fig. 2 playback chain (§6):");
    let raw_rate = 640u64 * 480 * 3 * 25; // presentation demand
    for storage in [1_000_000u64, 300_000, 100_000] {
        let chain = Pipeline::new()
            .then(Activity::producer("storage", storage))
            .then(Activity::transformer("video decoder", 2_000_000, 63, 1))
            .then(Activity::producer("presentation", 30_000_000));
        let (_, bottleneck, cap) = chain.bottleneck().unwrap();
        println!(
            "  storage {:>12}: chain sustains {:>12} vs demand {} — {} (bottleneck: {})",
            fmt_rate(storage as f64),
            fmt_rate(cap.to_f64()),
            fmt_rate(raw_rate as f64),
            if chain.sustains(tbm_time::Rational::from(raw_rate as i64)) {
                "plays"
            } else {
                "stalls"
            },
            bottleneck
        );
    }
    let _ = cd_tone(1); // keep helper linked for parity across experiments
}

// ---------------------------------------------------------------------------
// §faults
// ---------------------------------------------------------------------------

fn faults_and_degradation() {
    use tbm_player::{DegradationPolicy, ResilientPlayer};

    println!("\n§faults — fault storms over the Fig. 2 movie (robustness)\n");
    let n = 250; // 10 s of PAL video + CD audio
    let (store, cap) = captured_av(n, 160, 120);
    let v = cap.interpretation.stream("video1").unwrap();
    let demand = tbm_player::demanded_rate(&schedule_from_interp(v, None), TimeSystem::PAL)
        .unwrap()
        .to_f64();
    let sim = PlaybackSim::new(CostModel::bandwidth_only((demand * 1.5) as u64)).with_startup(3);
    let player = ResilientPlayer::new(sim);

    // Storm: 2 % corruption (above the ≥1 % bar), transient errors,
    // truncated reads, latency spikes — all from one seed.
    let storm = |seed: u64| {
        FaultPlan::new(seed)
            .with_transient(0.05)
            .with_corruption(0.02)
            .with_truncation(0.01)
            .with_latency(0.02, 800)
    };

    println!(
        "{:>6}{:>8}{:>10}{:>10}{:>9}{:>9}{:>8}",
        "seed", "faults", "recovered", "degraded", "dropped", "misses", "intact"
    );
    println!("{}", "-".repeat(60));
    for seed in [7u64, 8, 9] {
        let faulty = FaultyBlobStore::new(store.clone(), storm(seed));
        let report = player.play(&faulty, cap.blob, v);
        // Accounting identity: unrecoverable faults end up degraded or
        // dropped; transient faults hidden by retries are the recoveries.
        assert_eq!(
            report.faults_detected,
            report.stats.degraded + report.stats.dropped,
            "every unrecoverable fault must be accounted for"
        );
        let detected = report.faults_detected + report.stats.recovered;
        println!(
            "{seed:>6}{:>8}{:>10}{:>10}{:>9}{:>9}{:>7.1}%",
            detected,
            report.stats.recovered,
            report.stats.degraded,
            report.stats.dropped,
            report.stats.misses,
            100.0 * (n - report.stats.degraded - report.stats.dropped) as f64 / n as f64,
        );
    }

    // Reproducibility: the storm is a pure function of the seed.
    let a = player.play(&FaultyBlobStore::new(store.clone(), storm(7)), cap.blob, v);
    let b = player.play(&FaultyBlobStore::new(store.clone(), storm(7)), cap.blob, v);
    let c = player.play(&FaultyBlobStore::new(store.clone(), storm(8)), cap.blob, v);
    println!(
        "\nsame seed -> identical stats: {}; different seed -> different storm: {}",
        a.stats == b.stats && a.fates == b.fates,
        a.stats != c.stats || a.fates != c.fates
    );

    // What one storm actually injected, by class.
    let faulty = FaultyBlobStore::new(store.clone(), storm(7));
    let report = player.play(&faulty, cap.blob, v);
    let fs = faulty.stats();
    println!(
        "seed 7 injected: {} transient errors, {} corrupted reads, {} truncated reads, \
         {} latency spikes over {} reads",
        fs.transient_errors, fs.corrupted_reads, fs.truncated_reads, fs.latency_events, fs.reads
    );
    println!(
        "seed 7 outcome:  {}/{} elements intact, {} recovered by retry, {} degraded, {} dropped",
        report
            .fates
            .iter()
            .filter(|f| matches!(f, tbm_player::ElementFate::Intact))
            .count(),
        n,
        report.stats.recovered,
        report.stats.degraded,
        report.stats.dropped
    );

    // Degradation-policy ladder on a scalable capture: DropLayers turns
    // what would be repeats/drops into reduced-fidelity presentation.
    println!("\ndegradation policies under the same storm (scalable capture):");
    let mut s = MemBlobStore::new();
    let (blob2, interp2) = capture::capture_video_scalable(
        &mut s,
        &video_frames(125, 160, 120),
        TimeSystem::PAL,
        DctParams::default(),
    )
    .unwrap();
    let sc = interp2.stream("video1").unwrap();
    println!(
        "{:<14}{:>10}{:>12}{:>9}{:>9}",
        "policy", "recovered", "base-layer", "frozen", "dropped"
    );
    println!("{}", "-".repeat(54));
    for (name, policy) in [
        ("drop-layers", DegradationPolicy::DropLayers),
        ("repeat-last", DegradationPolicy::RepeatLast),
        ("skip", DegradationPolicy::Skip),
    ] {
        let faulty = FaultyBlobStore::new(s.clone(), storm(11).with_corruption(0.05));
        let r = ResilientPlayer::new(sim)
            .with_policy(policy)
            .play(&faulty, blob2, sc);
        let count =
            |pred: fn(&tbm_player::ElementFate) -> bool| r.fates.iter().filter(|f| pred(f)).count();
        println!(
            "{name:<14}{:>10}{:>12}{:>9}{:>9}",
            r.stats.recovered,
            count(|f| matches!(f, tbm_player::ElementFate::BaseLayers { .. })),
            count(|f| matches!(f, tbm_player::ElementFate::Repeated)),
            r.stats.dropped,
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// §serve
// ---------------------------------------------------------------------------

fn serve_delivery() {
    use tbm_serve::{Capacity, Request, Response, Server};
    use tbm_time::{TimeDelta, TimePoint};

    println!("§serve — multi-session delivery: shared cache and admission control\n");

    // One hot scalable movie everybody wants.
    let mut store = MemBlobStore::new();
    let (_blob, interp) = capture::capture_video_scalable(
        &mut store,
        &video_frames(50, 160, 120),
        TimeSystem::PAL,
        DctParams::default(),
    )
    .unwrap();
    let probe_db = {
        let mut db = MediaDb::with_store(store.clone());
        db.register_interpretation(interp.clone()).unwrap();
        db
    };
    let (_, stream) = probe_db.stream_of("video1").unwrap();
    let full_bps = tbm_player::demanded_rate(&schedule_from_interp(stream, None), TimeSystem::PAL)
        .unwrap()
        .ceil() as u64;

    // A broadcast of `n` staggered sessions against a fresh server.
    let broadcast = |n: usize, capacity: Capacity, cache_budget: u64| {
        let mut db = MediaDb::with_store(store.clone());
        db.register_interpretation(interp.clone()).unwrap();
        let mut server = Server::new(db, capacity);
        if cache_budget > 0 {
            server = server.with_cache_budget(cache_budget);
        }
        for i in 0..n {
            let at = TimePoint::ZERO + TimeDelta::from_millis(i as i64 * 200);
            if let Response::Opened {
                session: Some(id), ..
            } = server
                .request(
                    at,
                    Request::Open {
                        object: "video1".into(),
                    },
                )
                .unwrap()
            {
                server.request(at, Request::Play { session: id }).unwrap();
            }
        }
        server.finish()
    };

    // Claim 1: the shared cache collapses the storage reads of overlapping
    // sessions on one object. Ample bandwidth (no admission pressure), so
    // the only variable is the cache.
    println!("shared segment cache, one hot object (bandwidth = 3x demand, admit all):");
    println!(
        "{:>10}{:>16}{:>16}{:>10}{:>12}",
        "sessions", "reads (off)", "reads (on)", "saved", "hit ratio"
    );
    println!("{}", "-".repeat(64));
    let roomy = Capacity::new(full_bps * 3).admit_all();
    for &n in &[1usize, 2, 4, 8, 12, 16] {
        let off = broadcast(n, roomy, 0);
        let on = broadcast(n, roomy, 64 << 20);
        println!(
            "{n:>10}{:>16}{:>16}{:>9.0}%{:>11.1}%",
            fmt_bytes(off.storage_bytes_read),
            fmt_bytes(on.storage_bytes_read),
            100.0 * (1.0 - on.storage_bytes_read as f64 / off.storage_bytes_read.max(1) as f64),
            on.cache.hit_rate() * 100.0
        );
        if n >= 8 {
            assert!(
                on.storage_bytes_read < off.storage_bytes_read,
                "claim: the cache must reduce aggregate storage reads at {n} overlapping sessions"
            );
        }
    }

    // Claim 2: admission control bounds the deadline-miss rate. Fixed
    // capacity fitting ~2 full sessions; sweep offered load with the gate
    // off (everyone admitted, channel oversubscribed) and on (excess
    // sessions degraded to the base layer or rejected). Cache off in both
    // arms: this is the cold-object case the cache cannot rescue — every
    // session pays the full storage transfer (the table above shows what
    // the cache does for hot objects).
    println!("\nadmission control at fixed capacity (~2 full-fidelity sessions, cold cache):");
    println!("{:>10}{:>26}{:>30}", "offered", "admit-all", "enforced");
    println!(
        "{:>10}{:>14}{:>12}{:>14}{:>8}{:>8}",
        "sessions", "miss rate", "p99 late", "adm/deg/rej", "miss", "p99"
    );
    println!("{}", "-".repeat(66));
    let tight = Capacity::new(full_bps * 2 + full_bps / 2);
    for &n in &[2usize, 4, 8, 16] {
        let all = broadcast(n, tight.admit_all(), 0);
        let gated = broadcast(n, tight, 0);
        println!(
            "{n:>10}{:>13.1}%{:>9.1} ms{:>14}{:>7.1}%{:>5.1} ms",
            all.miss_rate() * 100.0,
            all.p99_lateness().seconds().to_f64() * 1e3,
            format!(
                "{}/{}/{}",
                gated.admitted, gated.admitted_degraded, gated.rejected
            ),
            gated.miss_rate() * 100.0,
            gated.p99_lateness().seconds().to_f64() * 1e3,
        );
        if n >= 8 {
            assert!(
                all.miss_rate() > gated.miss_rate(),
                "claim: enforced admission must bound the miss rate the uncontrolled \
                 sweep degrades ({} vs {} at {n} sessions)",
                gated.miss_rate(),
                all.miss_rate()
            );
        }
    }
    println!(
        "\n(the gate trades rejections for deadlines: the channel only carries what \
         admission committed, so admitted sessions keep their presentation clock)"
    );
    println!();
}

// ---------------------------------------------------------------------------
// §obs
// ---------------------------------------------------------------------------

fn obs_attribution() {
    use tbm_obs::{chrome_trace, Tracer};
    use tbm_serve::{Capacity, Request, Response, Server, ServerStats};
    use tbm_time::{TimeDelta, TimePoint};

    println!("§obs — tracing the pipeline: deadline-miss attribution\n");

    // The storm under observation: one hot scalable movie, a seeded fault
    // plan on the store, admission disabled so the channel oversubscribes —
    // all four miss causes have a chance to occur.
    let run = |seed: u64| -> (Tracer, ServerStats) {
        let mut store = MemBlobStore::new();
        let (_blob, interp) = capture::capture_video_scalable(
            &mut store,
            &video_frames(40, 160, 120),
            TimeSystem::PAL,
            DctParams::default(),
        )
        .unwrap();
        let full_bps = {
            let mut probe = MediaDb::with_store(store.clone());
            probe.register_interpretation(interp.clone()).unwrap();
            let (_, stream) = probe.stream_of("video1").unwrap();
            tbm_player::demanded_rate(&schedule_from_interp(stream, None), TimeSystem::PAL)
                .unwrap()
                .ceil() as u64
        };

        let tracer = Tracer::new();
        let plan = FaultPlan::new(seed)
            .with_transient(0.25)
            .with_corruption(0.06)
            .with_latency(0.1, 500);
        // The same tracer clone on the store and the server: injected
        // faults and served elements land in one timeline.
        let faulty = FaultyBlobStore::new(store, plan).with_tracer(tracer.clone());
        let mut db = MediaDb::with_store(faulty);
        db.register_interpretation(interp).unwrap();
        let mut server = Server::new(db, Capacity::new(full_bps + full_bps / 3).admit_all())
            .with_cache_budget(16 << 20)
            .with_tracer(tracer.clone());
        for n in 0..5i64 {
            let at = TimePoint::ZERO + TimeDelta::from_millis(n * 100);
            if let Response::Opened {
                session: Some(id), ..
            } = server
                .request(
                    at,
                    Request::Open {
                        object: "video1".into(),
                    },
                )
                .unwrap()
            {
                server.request(at, Request::Play { session: id }).unwrap();
            }
        }
        let stats = server.finish();
        let report = server.attribution();
        // Hard claim: attribution partitions the misses — every deadline
        // miss is assigned exactly one cause.
        assert_eq!(
            report.total(),
            stats.deadline_misses,
            "claim: every deadline miss must appear in the attribution report"
        );
        let by_cause: usize = report.by_cause().iter().map(|&(_, n)| n).sum();
        assert_eq!(
            by_cause,
            report.total(),
            "claim: miss causes must partition the misses"
        );
        (tracer, stats)
    };

    let (tracer, stats) = run(0x0B5);
    let report = tbm_obs::attribute(&tracer.snapshot().records);
    println!("storm: 5 sessions over a channel sized ~1.3x one stream, seeded faults, cache on");
    println!(
        "served {} elements, {} misses ({:.1}%), {} recovered / {} degraded / {} dropped\n",
        stats.elements_served,
        stats.deadline_misses,
        stats.miss_rate() * 100.0,
        stats.recovered,
        stats.degraded_elements,
        stats.dropped_elements,
    );
    println!("{}", report.render());

    // Determinism claim: same seed, byte-identical Chrome trace.
    let (tracer2, stats2) = run(0x0B5);
    assert_eq!(stats, stats2, "claim: same-seed runs must be identical");
    let ja = chrome_trace(&tracer.snapshot());
    let jb = chrome_trace(&tracer2.snapshot());
    assert_eq!(
        ja, jb,
        "claim: same-seed runs must export byte-identical traces"
    );
    println!(
        "\nchrome trace: {} events, {} bytes — byte-identical across two same-seed runs",
        tracer.snapshot().records.len(),
        ja.len()
    );

    println!("\nmetrics registry:");
    println!("{}", indent_block(&run_metrics_render(&tracer, &stats)));
    println!();
}

// ---------------------------------------------------------------------------
// §tiers
// ---------------------------------------------------------------------------

fn tiers_failover() {
    use tbm_blob::{TierConfig, TieredBlobStore};
    use tbm_obs::{MissCause, Tracer};
    use tbm_serve::{Capacity, Request, Response, Server, ServerStats};
    use tbm_time::{TimeDelta, TimePoint};

    println!("§tiers — tiered storage: failover, circuit breakers, hedged reads\n");

    let t = |ms: i64| TimePoint::ZERO + TimeDelta::from_millis(ms);
    let frames = video_frames(50, 160, 120);

    // Captures the movie through `store` (write-through populates every
    // tier) and serves `sessions` staggered viewers, cache off so every
    // read exercises the tier stack.
    let run = |mut store: TieredBlobStore,
               sessions: i64,
               tracer: Option<Tracer>|
     -> (ServerStats, Server<TieredBlobStore>) {
        let (_b, interp) = capture::capture_video_scalable(
            &mut store,
            &frames,
            TimeSystem::PAL,
            DctParams::default(),
        )
        .unwrap();
        let mut db = MediaDb::with_store(store);
        db.register_interpretation(interp).unwrap();
        let full_bps = {
            let (_, stream) = db.stream_of("video1").unwrap();
            tbm_player::demanded_rate(&schedule_from_interp(stream, None), TimeSystem::PAL)
                .unwrap()
                .ceil() as u64
        };
        let mut server = Server::new(db, Capacity::new(full_bps * (sessions as u64 + 1)));
        if let Some(tr) = tracer {
            server = server.with_tracer(tr);
        }
        for i in 0..sessions {
            let at = t(i * 100);
            if let Response::Opened {
                session: Some(id), ..
            } = server
                .request(
                    at,
                    Request::Open {
                        object: "video1".into(),
                    },
                )
                .unwrap()
            {
                server.request(at, Request::Play { session: id }).unwrap();
            }
        }
        let stats = server.finish();
        (stats, server)
    };

    // Claim 1: a scripted remote blackout over [0, 800ms) — the window
    // every dispatch of a three-viewer broadcast lands in. The tiered
    // store fails over to the tiers that still hold the spans; a
    // no-failover baseline (the same movie on the remote tier alone)
    // can only drop what it cannot read.
    let blackout = |tiered: bool| {
        let store = if tiered {
            TieredBlobStore::mem_file_remote(FaultPlan::new(1), 8 << 20).with_outage(
                2,
                t(0),
                t(800),
            )
        } else {
            TieredBlobStore::new()
                .with_tier(
                    TierConfig::new("remote", 2_000).with_breaker(3, 20_000),
                    MemBlobStore::new(),
                )
                .with_outage(0, t(0), t(800))
        };
        run(store, 3, None)
    };
    println!("remote blackout [0, 800ms), 3 viewers (mem/file/remote vs remote-only):");
    println!(
        "{:<14}{:>8}{:>9}{:>8}{:>11}{:>11}",
        "store", "served", "dropped", "misses", "p99 late", "failovers"
    );
    println!("{}", "-".repeat(61));
    let (tiered_stats, tiered_server) = blackout(true);
    let (base_stats, base_server) = blackout(false);
    for (name, stats, server) in [
        ("tiered", &tiered_stats, &tiered_server),
        ("no-failover", &base_stats, &base_server),
    ] {
        println!(
            "{name:<14}{:>8}{:>9}{:>8}{:>8.1} ms{:>11}",
            stats.elements_served,
            stats.dropped_elements,
            stats.deadline_misses,
            stats.p99_lateness().seconds().to_f64() * 1e3,
            server.db().store().failover_reads(),
        );
    }
    assert_eq!(
        tiered_stats.dropped_elements, 0,
        "claim: the tiered store must drop nothing during a remote blackout"
    );
    assert!(
        base_stats.dropped_elements > 0,
        "baseline: a no-failover store must drop elements it cannot read"
    );

    // Claim 2: hedged reads bound p99. The fast tier dies just long
    // enough to trip its breaker (2 faults, 500ms cooldown); the only
    // fallback browns out at +40ms a read. Waiting out the cooldown pays
    // brownout latency for half a second; a deadline-pressed hedge
    // probes the recovered fast tier early and self-heals instead.
    let hedged_arm = |hedging: bool| {
        let tracer = Tracer::new();
        let store = TieredBlobStore::new()
            .with_tier(
                TierConfig::new("file", 150).with_breaker(2, 500_000),
                MemBlobStore::new(),
            )
            .with_tier(TierConfig::new("remote", 2_000), MemBlobStore::new())
            .with_hedging(hedging)
            .with_outage(0, t(0), t(10))
            .with_brownout(1, t(0), t(5_000), 40_000)
            .with_tracer(tracer.clone());
        run(store, 1, Some(tracer))
    };
    let (hedged, hedged_server) = hedged_arm(true);
    let (waited, waited_server) = hedged_arm(false);
    println!("\nfast-tier outage trips the breaker, fallback browns out (+40ms/read):");
    println!(
        "{:<14}{:>8}{:>11}{:>11}{:>14}",
        "policy", "misses", "p99 late", "max late", "hedged reads"
    );
    println!("{}", "-".repeat(58));
    for (name, stats, server) in [
        ("hedge", &hedged, &hedged_server),
        ("wait cooldown", &waited, &waited_server),
    ] {
        println!(
            "{name:<14}{:>8}{:>8.1} ms{:>8.1} ms{:>14}",
            stats.deadline_misses,
            stats.p99_lateness().seconds().to_f64() * 1e3,
            stats.lateness.max() as f64 / 1e3,
            server.db().store().hedged_reads(),
        );
    }
    assert!(
        hedged_server.db().store().hedged_reads() > 0,
        "deadline pressure must trigger hedged probes"
    );
    assert!(
        hedged.p99_lateness() < waited.p99_lateness(),
        "claim: hedged reads must bound p99 lateness vs waiting out the cooldown \
         ({:?} vs {:?})",
        hedged.p99_lateness(),
        waited.p99_lateness()
    );

    // Attribution still partitions the misses, and the failover share is
    // first-class: misses served over the failover path carry the
    // tier-failover cause.
    for (name, stats, server) in [
        ("hedge", &hedged, &hedged_server),
        ("wait", &waited, &waited_server),
    ] {
        let report = server.attribution();
        assert_eq!(
            report.total(),
            stats.deadline_misses,
            "claim ({name}): every deadline miss must appear in the attribution report"
        );
        let by_cause: usize = report.by_cause().iter().map(|&(_, n)| n).sum();
        assert_eq!(
            by_cause,
            report.total(),
            "claim ({name}): miss causes must partition the misses"
        );
    }
    let waited_report = waited_server.attribution();
    assert!(
        waited_report
            .by_cause()
            .iter()
            .any(|&(c, n)| c == MissCause::TierFailover && n > 0),
        "claim: misses paid on the failover path must be attributed tier-failover"
    );
    println!("\nmiss attribution while waiting out the cooldown:");
    println!("{}", indent_block(&waited_report.render()));

    // Determinism: the whole failover drama is a pure function of the
    // scripted windows and the seed.
    let (tiered_again, _) = blackout(true);
    assert_eq!(
        tiered_stats, tiered_again,
        "claim: same-seed tiered runs must be identical"
    );
    println!("\nsame-seed rerun of the blackout: identical stats — deterministic failover");
    println!();
}

// ---------------------------------------------------------------------------
// §shards
// ---------------------------------------------------------------------------

fn shards_scaling() {
    use tbm_interp::Interpretation;
    use tbm_serve::{
        Capacity, Request, Response, ServerStats, SessionStats, ShardedDb, ShardedServer,
    };
    use tbm_time::{TimeDelta, TimePoint};

    println!("§shards — sharded catalogs: per-object timing identity and admission scale-out\n");

    let names: Vec<String> = (0..8).map(|i| format!("movie{i}")).collect();
    let t = |ms: i64| TimePoint::ZERO + TimeDelta::from_millis(ms);

    // Each movie is captured into the shard that owns its name, so the
    // same seed builds byte-identical per-object catalogs at every shard
    // count (only the grouping changes).
    let catalog = |shards: usize, seed: u64| -> ShardedDb {
        let mut db = ShardedDb::new(shards, seed);
        for name in &names {
            let store = db.store_for_mut(name);
            let (blob, interp) = capture::capture_video_scalable(
                store,
                &video_frames(40, 96, 64),
                TimeSystem::PAL,
                DctParams::default(),
            )
            .unwrap();
            // The capture helper names streams "video1"; re-hang the
            // stream under the movie's routing name.
            let stream = interp.stream("video1").unwrap().clone();
            let mut renamed = Interpretation::new(blob);
            renamed.add_stream(name, stream).unwrap();
            db.register_interpretation(renamed).unwrap();
        }
        db
    };

    let full_bps = {
        let probe = catalog(1, 0);
        let (_, stream) = probe.shard(0).stream_of("movie0").unwrap();
        tbm_player::demanded_rate(&schedule_from_interp(stream, None), TimeSystem::PAL)
            .unwrap()
            .ceil() as u64
    };

    // Claim 1: routing is invisible to an uncontended object. Sequential,
    // non-overlapping sessions (one per movie) see an idle channel in both
    // arms, so every element's service and lateness must come out the same
    // whether the catalog is one shard or four.
    let timing_run = |shards: usize| -> (Vec<(String, SessionStats)>, ServerStats) {
        let mut server = ShardedServer::new(catalog(shards, 17), Capacity::new(full_bps * 2))
            .with_cache_budget(32 << 20);
        for (i, name) in names.iter().enumerate() {
            let at = t(i as i64 * 4_000);
            let Response::Opened {
                session: Some(id), ..
            } = server
                .request(
                    at,
                    Request::Open {
                        object: name.clone(),
                    },
                )
                .unwrap()
            else {
                panic!("sequential sessions must all admit");
            };
            server.request(at, Request::Play { session: id }).unwrap();
        }
        let stats = server.finish();
        let mut per_object: Vec<(String, SessionStats)> = server
            .sessions()
            .map(|s| (s.object().to_owned(), s.stats()))
            .collect();
        per_object.sort_by(|a, b| a.0.cmp(&b.0));
        (per_object, stats.global)
    };
    let (objects_1, global_1) = timing_run(1);
    let (objects_4, global_4) = timing_run(4);
    println!("same-seed sequential playback of 8 movies, 1 shard vs 4 shards:");
    println!(
        "{:>10}{:>14}{:>14}{:>14}{:>14}",
        "object", "elems (1)", "elems (4)", "misses (1)", "misses (4)"
    );
    println!("{}", "-".repeat(66));
    for ((name, one), (_, four)) in objects_1.iter().zip(objects_4.iter()) {
        println!(
            "{name:>10}{:>14}{:>14}{:>14}{:>14}",
            one.elements, four.elements, one.misses, four.misses
        );
    }
    assert_eq!(
        objects_1, objects_4,
        "claim: per-object playback stats must be identical at 1 and 4 shards"
    );
    assert_eq!(
        global_1.service, global_4.service,
        "claim: the merged service-time distribution must be bit-identical"
    );
    assert_eq!(global_1.lateness, global_4.lateness);
    println!(
        "\nper-object stats and merged service/lateness histograms bit-identical at \
         1 vs 4 shards\n(service p50/p99/max {} / {} / {} µs in both arms)",
        global_1.service.quantile(50),
        global_1.service.quantile(99),
        global_1.service.max()
    );

    // Claim 2: N shards raise admitted-session throughput on a storm one
    // catalog saturates. 24 viewers arrive 100 ms apart, round-robin over
    // the 8 movies; every shard has the *same* per-shard budget (~2.5 full
    // streams) — the single catalog is that budget total, the 4-shard
    // fleet is 4x it, exactly the multi-node proposition.
    let per_shard = Capacity::new(full_bps * 5 / 2).with_overhead_us(100);
    let storm = |shards: usize, seed: u64| {
        let mut server =
            ShardedServer::new(catalog(shards, seed), per_shard).with_cache_budget(32 << 20);
        for i in 0..24usize {
            let at = t(i as i64 * 100);
            let name = names[i % names.len()].clone();
            if let Response::Opened {
                session: Some(id), ..
            } = server.request(at, Request::Open { object: name }).unwrap()
            {
                server.request(at, Request::Play { session: id }).unwrap();
            }
        }
        let stats = server.finish();
        let skew = stats.skew_percent();
        (stats, skew)
    };
    println!("\nadmission scale-out: 24-session storm over 8 movies, same per-shard budget:");
    println!(
        "{:>8}{:>16}{:>10}{:>12}{:>12}{:>10}",
        "shards", "adm/deg/rej", "miss", "p99 late", "hit rate", "skew"
    );
    println!("{}", "-".repeat(68));
    let mut admitted_at = std::collections::BTreeMap::new();
    for &n in &[1usize, 2, 4, 8] {
        let (stats, skew) = storm(n, 17);
        let g = &stats.global;
        println!(
            "{n:>8}{:>16}{:>9.1}%{:>9.1} ms{:>11.1}%{:>9}%",
            format!("{}/{}/{}", g.admitted, g.admitted_degraded, g.rejected),
            g.miss_rate() * 100.0,
            g.p99_lateness().seconds().to_f64() * 1e3,
            g.cache.hit_rate() * 100.0,
            skew
        );
        // The fault invariant survives the rollup: per shard and globally.
        for s in stats.per_shard.iter().chain(std::iter::once(g)) {
            assert_eq!(
                s.faults_detected,
                s.degraded_elements + s.dropped_elements + s.repaired_elements
            );
        }
        admitted_at.insert(n, g.sessions_admitted());
    }
    assert!(
        admitted_at[&4] > admitted_at[&1],
        "claim: 4 shards must admit more of the storm than one catalog ({} vs {})",
        admitted_at[&4],
        admitted_at[&1]
    );

    // Determinism: a sharded run is still a pure function of its trace and
    // seed — stats and the rendered metrics rollup are byte-identical.
    let (again, _) = storm(4, 17);
    let (first, _) = storm(4, 17);
    assert_eq!(
        first, again,
        "claim: same-seed sharded runs must be identical"
    );
    println!(
        "\n4-shard fleet admits {}x the sessions of the single catalog \
         ({} vs {}); same-seed rerun identical",
        admitted_at[&4] / admitted_at[&1].max(1),
        admitted_at[&4],
        admitted_at[&1]
    );
    println!();
}

fn fleet_resilience() {
    use tbm_interp::Interpretation;
    use tbm_obs::{attribute, MissCause, Tracer};
    use tbm_serve::{Capacity, Fleet, FleetStats, NodeFaultPlan, Request, Response, ShardedDb};
    use tbm_time::{TimeDelta, TimePoint};

    println!("§fleet — multi-node resilience: node kill under a live session storm\n");

    let names: Vec<String> = (0..8).map(|i| format!("movie{i}")).collect();
    let t = |ms: i64| TimePoint::ZERO + TimeDelta::from_millis(ms);
    let seed = 0xF1EE7u64;
    let catalog = || -> ShardedDb {
        let mut db = ShardedDb::new(8, seed);
        for name in &names {
            let store = db.store_for_mut(name);
            let (blob, interp) = capture::capture_video_scalable(
                store,
                &video_frames(20, 48, 32),
                TimeSystem::PAL,
                DctParams::default(),
            )
            .unwrap();
            let stream = interp.stream("video1").unwrap().clone();
            let mut renamed = Interpretation::new(blob);
            renamed.add_stream(name, stream).unwrap();
            db.register_interpretation(renamed).unwrap();
        }
        db
    };

    // Eight shards round-robin on four nodes; node 1 (shards 1 and 5) is
    // killed at 1.5 s — mid-storm — and restarts with salvage at 6 s.
    let storm = |migration: bool, tracer: Option<Tracer>| -> FleetStats {
        let mut fleet = Fleet::new(catalog(), 4, Capacity::new(400_000_000).admit_all())
            .with_cache_budget(16 << 20)
            .with_migration(migration)
            .with_fault_plan(
                1,
                NodeFaultPlan::new().with_crash_restart(t(1_500), t(6_000)),
            );
        if let Some(tr) = tracer {
            fleet = fleet.with_tracer(tr);
        }
        for i in 0..24usize {
            let at = t(i as i64 * 150);
            let name = names[i % names.len()].clone();
            match fleet.request(at, Request::Open { object: name }) {
                Ok(Response::Opened {
                    session: Some(id), ..
                }) => {
                    let _ = fleet.request(at, Request::Play { session: id });
                }
                Ok(_) => {}
                Err(_) => {} // baseline arm: dead node, open never lands
            }
        }
        fleet.finish()
    };

    let tracer = Tracer::new();
    let migrating = storm(true, Some(tracer.clone()));
    let baseline = storm(false, None);

    println!("24-session storm over 8 movies on 4 nodes, node 1 killed at t=1.5s:");
    println!(
        "{:>14}{:>10}{:>10}{:>8}{:>12}{:>12}",
        "arm", "served", "dropped", "shed", "migrations", "handoff"
    );
    println!("{}", "-".repeat(66));
    for (arm, s) in [("migrating", &migrating), ("baseline", &baseline)] {
        println!(
            "{arm:>14}{:>10}{:>10}{:>8}{:>12}{:>12}",
            s.shards.global.elements_served,
            s.shards.global.dropped_elements,
            s.elements_shed,
            s.migrations,
            fmt_bytes(s.handoff_bytes),
        );
    }
    assert_eq!(
        migrating.shards.global.dropped_elements, 0,
        "claim: live migration keeps every verified serve across the kill"
    );
    assert_eq!(migrating.shards.global.finished_sessions, 24);
    assert!(migrating.migrations > 0);
    assert!(
        baseline.elements_shed > 0,
        "claim: the no-migration baseline must lose in-flight elements"
    );
    for s in [&migrating, &baseline] {
        let g = &s.shards.global;
        assert_eq!(
            g.faults_detected,
            g.degraded_elements + g.dropped_elements + g.repaired_elements,
            "claim: the fault invariant survives node loss"
        );
    }

    // The stall each migrated session sat through is charged to the
    // node-loss cause — node failure is visible in the attribution
    // partition, not smeared over admission or storage.
    let report = attribute(&tracer.snapshot().records);
    assert_eq!(report.total(), migrating.shards.global.deadline_misses);
    let node_loss = report
        .by_cause()
        .iter()
        .find(|(c, _)| *c == MissCause::NodeLoss)
        .map(|&(_, n)| n)
        .unwrap_or(0);
    assert!(
        node_loss > 0,
        "claim: handoff stalls must be attributed to node-loss"
    );
    println!(
        "\nmigrating arm: {} misses, {} attributed node-loss; node 1 crashed/restarted {}x/{}x",
        report.total(),
        node_loss,
        migrating.per_node[1].crashes,
        migrating.per_node[1].restarts,
    );

    // Determinism: the kill, the handoff, the restore and every retry
    // replay bit-identically from the seed.
    assert_eq!(
        storm(true, None),
        migrating,
        "claim: same-seed fleet storms must be identical"
    );
    println!("zero drops across the kill; same-seed rerun identical\n");
}

// ---------------------------------------------------------------------------
// §query
// ---------------------------------------------------------------------------

/// The telemetry plane's three claims, measured on the fleet broadcast:
/// model compression beats raw per-tick storage ≥10× at a 1% bound,
/// model-native aggregates stay within the bound of the exact answers
/// (a same-seed lossless run *is* the raw series — its raw-fallback and
/// zero-error fits are bit-exact), and the brownout question is one typed
/// query whose rendered answer replays byte-identically.
fn query_telemetry() {
    use tbm_interp::Interpretation;
    use tbm_query::{
        Aggregate, ErrorBound, FleetTelemetry, Metric, Predicate, Query, QueryCtx, Selector,
        Source, TelemetryStore,
    };
    use tbm_serve::{Capacity, Fleet, NodeFaultPlan, Request, Response, ShardedDb};
    use tbm_time::{TimeDelta, TimePoint};

    println!("§query — model-compressed telemetry + typed queries over the fleet\n");

    let names: Vec<String> = (0..8).map(|i| format!("movie{i}")).collect();
    let t = |ms: i64| TimePoint::ZERO + TimeDelta::from_millis(ms);
    let seed = 23u64;
    let brownout = (t(500), t(2_500));

    // One broadcast, parameterised only by the telemetry error bound; with
    // loss-free default links the bound cannot perturb the fleet, so every
    // run sees the same raw series.
    let storm = |bound: ErrorBound| -> (TelemetryStore, String) {
        let mut db = ShardedDb::new(6, seed);
        for name in &names {
            let store = db.store_for_mut(name);
            let (blob, interp) = capture::capture_video_scalable(
                store,
                &video_frames(40, 96, 64),
                TimeSystem::PAL,
                DctParams::default(),
            )
            .unwrap();
            let stream = interp.stream("video1").unwrap().clone();
            let mut renamed = Interpretation::new(blob);
            renamed.add_stream(name, stream).unwrap();
            db.register_interpretation(renamed).unwrap();
        }
        let owner = db.shard_for("movie0");
        let (_, stream) = db.shard(owner).stream_of("movie0").unwrap();
        let full_bps =
            tbm_player::demanded_rate(&schedule_from_interp(stream, None), stream.system())
                .unwrap()
                .ceil() as u64;

        let mut fleet = Fleet::new(db, 3, Capacity::new(full_bps * 2).with_overhead_us(100))
            .with_cache_budget(16 << 20)
            .with_fault_plan(
                1,
                NodeFaultPlan::new().with_brownout(brownout.0, brownout.1, 35),
            );
        let mut telemetry = FleetTelemetry::new(bound, TimeDelta::from_millis(50));
        let mut next = 0usize;
        // 240 sampled ticks = 12 s: the storm lands in the first 2 s, the
        // long drained tail is what real telemetry looks like most of the
        // time — near-constant.
        for k in 0..=240i64 {
            let at = t(50 * k);
            telemetry.tick(&mut fleet, at);
            while next < 16 && (next as i64) * 120 < 50 * (k + 1) {
                let name = names[next % names.len()].clone();
                let open_at = t(next as i64 * 120).max(at);
                if let Ok(Response::Opened {
                    session: Some(id), ..
                }) = fleet.request(open_at, Request::Open { object: name })
                {
                    let _ = fleet.request(open_at, Request::Play { session: id });
                }
                next += 1;
            }
        }
        telemetry.finish(&mut fleet, t(12_050));
        fleet.finish();

        // The brownout question, in one typed query: p99 lateness for
        // degraded sessions on node 1, during the brownout window.
        let ctx = QueryCtx::from_fleet(&fleet)
            .with_telemetry(telemetry.store().expect("the plane ticked"));
        let answer = Query::scan(Source::Metrics)
            .filter(Predicate::MetricIs(Metric::LatenessUs))
            .filter(Predicate::Degraded(true))
            .filter(Predicate::OnNode(1))
            .filter(Predicate::During(brownout.0, brownout.1))
            .aggregate(Aggregate::Quantile(99))
            .run(&ctx)
            .expect("typed and backed")
            .render();
        (telemetry.store().expect("the plane ticked").clone(), answer)
    };

    let (lossy, answer) = storm(ErrorBound::percent(1.0));
    let (exact, _) = storm(ErrorBound::LOSSLESS);

    println!(
        "{:>10}{:>10}{:>12}{:>14}{:>14}{:>10}",
        "bound", "series", "segments", "compressed", "raw", "ratio"
    );
    println!("{}", "-".repeat(70));
    for (label, s) in [("1%", &lossy), ("lossless", &exact)] {
        println!(
            "{label:>10}{:>10}{:>12}{:>14}{:>14}{:>9.1}x",
            s.series_count(),
            s.segment_count(),
            fmt_bytes(s.compressed_bytes()),
            fmt_bytes(s.raw_bytes()),
            s.compression_ratio(),
        );
    }
    assert!(
        lossy.compression_ratio() >= 10.0,
        "claim: model compression must be ≥10x vs the raw per-tick series at 1% \
         (got {:.1}x)",
        lossy.compression_ratio()
    );
    assert_eq!(
        lossy.point_count(),
        exact.point_count(),
        "both runs sample the identical tick schedule"
    );

    // Model-native aggregates vs the exact answers, fleet-wide and per
    // metric: every one within the 1% bound (the lossless store is the raw
    // series, so its aggregates are exact).
    let mut checked = 0usize;
    for metric in Metric::ALL {
        for agg in [
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Mean,
            Aggregate::Quantile(50),
            Aggregate::Quantile(99),
        ] {
            let sel = Selector::metric(metric);
            let (Some(m), Some(e)) = (lossy.aggregate(&sel, agg), exact.aggregate(&sel, agg))
            else {
                continue;
            };
            assert!(
                (m.value - e.value).abs() <= 0.01 * e.value.abs() + 1e-9,
                "claim: model-native {agg} of {metric} must be within 1% of exact \
                 ({} vs {})",
                m.value,
                e.value
            );
            checked += 1;
        }
    }
    println!(
        "\n{checked} model-native aggregates (min/max/mean/p50/p99 × metric) all within \
         the 1% bound of the exact lossless answers"
    );

    println!("\nthe brownout question, answered from segment models:");
    println!("{}", indent_block(&answer));

    // Determinism: the whole pipeline — sampling, compression, shipping,
    // the typed query and its rendering — replays byte-identically.
    let (_, answer2) = storm(ErrorBound::percent(1.0));
    assert_eq!(
        answer, answer2,
        "claim: same-seed runs must render byte-identical query answers"
    );
    assert!(
        answer.lines().count() >= 4,
        "claim: the brownout query must produce an answer row"
    );
    println!("\nsame-seed rerun renders the byte-identical answer\n");
}

// ---------------------------------------------------------------------------
// §health
// ---------------------------------------------------------------------------

/// Alert precision and recall, measured: three same-seed storms — a node
/// kill, a brownout, and a clean run — against the full built-in rule set.
/// Each fault fires exactly the alert the runbook predicts (and nothing
/// else), each alert opens exactly once and closes by hysteresis (no
/// flapping), the clean run is silent, and rerunning a storm renders its
/// incident reports byte-identically.
fn health_plane() {
    use tbm_interp::Interpretation;
    use tbm_obs::Tracer;
    use tbm_query::{ErrorBound, FleetTelemetry, HealthMonitor, SloRule};
    use tbm_serve::{shard_of, Capacity, Fleet, NodeFaultPlan, Request, Response, ShardedDb};
    use tbm_time::{TimeDelta, TimePoint};

    println!("§health — SLO rules, burn-rate alerts, deterministic incident reports\n");

    const SEED: u64 = 23;
    const SHARDS: usize = 6;
    const NODES: usize = 3;
    let t = |ms: i64| TimePoint::ZERO + TimeDelta::from_millis(ms);

    // One movie per shard so the round-robin sessions load every node
    // identically: the skew rule reads faults, not hash-placement noise.
    let mut by_shard: Vec<Option<String>> = vec![None; SHARDS];
    let mut i = 0u32;
    while by_shard.iter().any(Option::is_none) {
        let name = format!("movie{i}");
        by_shard[shard_of(&name, SEED, SHARDS)].get_or_insert(name);
        i += 1;
    }
    let names: Vec<String> = by_shard.into_iter().map(Option::unwrap).collect();

    let rules = || {
        vec![
            SloRule::p99_full_lateness_below(2_000.0),
            SloRule::drop_rate_below(1.0),
            SloRule::no_unverified_serves(),
            SloRule::load_skew_below(60.0),
        ]
    };
    let storm = |fault: Option<NodeFaultPlan>| -> (Vec<(String, u64)>, String) {
        let mut db = ShardedDb::new(SHARDS, SEED);
        // 250 PAL frames = 10 s of playback: sessions opened in the first
        // 2 s stream through the whole 4–8 s fault window.
        for name in &names {
            let store = db.store_for_mut(name);
            let (blob, interp) = capture::capture_video_scalable(
                store,
                &video_frames(250, 48, 32),
                TimeSystem::PAL,
                DctParams::default(),
            )
            .unwrap();
            let stream = interp.stream("video1").unwrap().clone();
            let mut renamed = Interpretation::new(blob);
            renamed.add_stream(name, stream).unwrap();
            db.register_interpretation(renamed).unwrap();
        }
        let owner = db.shard_for(&names[0]);
        let (_, stream) = db.shard(owner).stream_of(&names[0]).unwrap();
        let full_bps =
            tbm_player::demanded_rate(&schedule_from_interp(stream, None), stream.system())
                .unwrap()
                .ceil() as u64;

        // Ample capacity (~20% steady load per node) keeps the steady
        // state quiet; skew self-healing is off because the rebalancer is
        // the runbook's fix knob, not part of the detector under test.
        let mut fleet = Fleet::new(db, NODES, Capacity::new(full_bps * 20).admit_all())
            .with_cache_budget(16 << 20)
            .with_rebalance_skew(None)
            .with_tracer(Tracer::with_capacity(1 << 16));
        if let Some(plan) = fault {
            fleet = fleet.with_fault_plan(1, plan);
        }
        let mut monitor = HealthMonitor::new(TimeDelta::from_millis(50));
        for rule in rules() {
            monitor = monitor.rule(rule);
        }
        let mut telemetry =
            FleetTelemetry::new(ErrorBound::percent(1.0), TimeDelta::from_millis(50))
                .with_health(monitor);
        let mut next = 0usize;
        for k in 0..=240i64 {
            let at = t(50 * k);
            telemetry.tick(&mut fleet, at);
            while next < 12 && (next as i64) * 150 < 50 * (k + 1) {
                let name = names[next % names.len()].clone();
                let open_at = t(next as i64 * 150).max(at);
                if let Ok(Response::Opened {
                    session: Some(id), ..
                }) = fleet.request(open_at, Request::Open { object: name })
                {
                    let _ = fleet.request(open_at, Request::Play { session: id });
                }
                next += 1;
            }
        }
        telemetry.finish(&mut fleet, t(50 * 241));
        fleet.finish();

        let monitor = telemetry.health().expect("health plane attached");
        assert!(
            monitor.open_alerts().is_empty(),
            "claim: hysteresis must close every alert by the end of the run"
        );
        let opens = monitor
            .rules()
            .iter()
            .map(|r| (r.name.clone(), monitor.opens(&r.name)))
            .collect();
        let mut reports = String::new();
        for report in telemetry.incident_reports() {
            reports.push_str(&report.render());
            reports.push('\n');
        }
        (opens, reports)
    };

    let kill = || NodeFaultPlan::new().with_crash_restart(t(4_000), t(8_000));
    let brownout = || NodeFaultPlan::new().with_brownout(t(4_000), t(8_000), 25);
    let (kill_opens, kill_reports) = storm(Some(kill()));
    let (brown_opens, _) = storm(Some(brownout()));
    let (clean_opens, clean_reports) = storm(None);

    println!(
        "{:<22}{:>12}{:>12}{:>12}",
        "rule (opens)", "node kill", "brownout", "clean"
    );
    println!("{}", "-".repeat(58));
    for ((name, k), ((_, b), (_, c))) in kill_opens
        .iter()
        .zip(brown_opens.iter().zip(clean_opens.iter()))
    {
        println!("{name:<22}{k:>12}{b:>12}{c:>12}");
        let (want_kill, want_brown) = (
            u64::from(name == "lateness-p99-full"),
            u64::from(name == "load-skew"),
        );
        assert_eq!(
            *k, want_kill,
            "claim: the kill fires exactly lateness-p99-full"
        );
        assert_eq!(
            *b, want_brown,
            "claim: the brownout fires exactly load-skew"
        );
        assert_eq!(*c, 0, "claim: a clean run fires nothing");
    }
    assert!(clean_reports.is_empty());
    println!(
        "\nprecision and recall are exact: each storm fires its predicted alert \
         once (no flapping), the clean run none"
    );

    // Determinism: the whole alert pipeline — sampling, burn evaluation,
    // report expansion, rendering — replays byte-identically.
    let (_, kill_reports2) = storm(Some(kill()));
    assert_eq!(
        kill_reports, kill_reports2,
        "claim: same-seed reruns must render byte-identical incident reports"
    );
    let excerpt: String = kill_reports
        .lines()
        .take(8)
        .map(|l| format!("  {l}\n"))
        .collect();
    println!("\nsame-seed rerun renders byte-identical reports; the kill's opens with:");
    print!("{excerpt}");
    println!();
}

// ---------------------------------------------------------------------------
// §remediate
// ---------------------------------------------------------------------------

/// The closed loop, measured: the §health storms rerun with the
/// remediation plane on vs off. The on-arm's playbook derates admission
/// and forces base-layer service under the kill (lower p99, fewer
/// alert-open ticks), rebalances the browned-out node's load (the skew
/// alert closes sooner than the fault), rolls nothing back on the happy
/// path, and replays byte-identically from the seed.
fn remediation_plane() {
    use tbm_interp::Interpretation;
    use tbm_obs::Tracer;
    use tbm_query::{
        Aggregate, ErrorBound, FleetTelemetry, HealthMonitor, Metric, Playbook, Remediator,
        Selector, SloRule,
    };
    use tbm_serve::{shard_of, Capacity, Fleet, NodeFaultPlan, Request, Response, ShardedDb};
    use tbm_time::{TimeDelta, TimePoint};

    println!("§remediate — the loop closed: alerts drive guarded, reversible fleet actions\n");

    const SEED: u64 = 23;
    const SHARDS: usize = 6;
    const NODES: usize = 3;
    let t = |ms: i64| TimePoint::ZERO + TimeDelta::from_millis(ms);

    let mut by_shard: Vec<Option<String>> = vec![None; SHARDS];
    let mut i = 0u32;
    while by_shard.iter().any(Option::is_none) {
        let name = format!("movie{i}");
        by_shard[shard_of(&name, SEED, SHARDS)].get_or_insert(name);
        i += 1;
    }
    let names: Vec<String> = by_shard.into_iter().map(Option::unwrap).collect();

    struct Arm {
        opens: Vec<(String, u64)>,
        open_ticks: u64,
        slo_late_us: f64,
        miss_pct: f64,
        drop_pct: f64,
        applied: u64,
        rolled_back: u64,
        log: String,
    }

    // The §health storm again, with `headroom` sessions' worth of capacity
    // per node (the kill runs tight so saturation is the signal) and the
    // remediation plane optionally subscribed to the alert transitions.
    let storm = |fault: NodeFaultPlan, headroom: u64, remediate: bool| -> Arm {
        let mut db = ShardedDb::new(SHARDS, SEED);
        for name in &names {
            let store = db.store_for_mut(name);
            let (blob, interp) = capture::capture_video_scalable(
                store,
                &video_frames(250, 48, 32),
                TimeSystem::PAL,
                DctParams::default(),
            )
            .unwrap();
            let stream = interp.stream("video1").unwrap().clone();
            let mut renamed = Interpretation::new(blob);
            renamed.add_stream(name, stream).unwrap();
            db.register_interpretation(renamed).unwrap();
        }
        let owner = db.shard_for(&names[0]);
        let (_, stream) = db.shard(owner).stream_of(&names[0]).unwrap();
        let full_bps =
            tbm_player::demanded_rate(&schedule_from_interp(stream, None), stream.system())
                .unwrap()
                .ceil() as u64;

        let mut fleet = Fleet::new(db, NODES, Capacity::new(full_bps * headroom).admit_all())
            .with_cache_budget(16 << 20)
            .with_rebalance_skew(None)
            .with_tracer(Tracer::with_capacity(1 << 16))
            .with_fault_plan(1, fault);
        let monitor = HealthMonitor::new(TimeDelta::from_millis(50))
            .rule(SloRule::p99_full_lateness_below(2_000.0))
            .rule(SloRule::drop_rate_below(1.0))
            .rule(SloRule::no_unverified_serves())
            .rule(SloRule::load_skew_below(60.0));
        let mut telemetry =
            FleetTelemetry::new(ErrorBound::percent(1.0), TimeDelta::from_millis(50))
                .with_health(monitor);
        if remediate {
            telemetry = telemetry.with_remediator(Remediator::new(Playbook::default_rules()));
        }
        let mut next = 0usize;
        for k in 0..=240i64 {
            let at = t(50 * k);
            telemetry.tick(&mut fleet, at);
            while next < 12 && (next as i64) * 150 < 50 * (k + 1) {
                let name = names[next % names.len()].clone();
                let open_at = t(next as i64 * 150).max(at);
                if let Ok(Response::Opened {
                    session: Some(id), ..
                }) = fleet.request(open_at, Request::Open { object: name })
                {
                    let _ = fleet.request(open_at, Request::Play { session: id });
                }
                next += 1;
            }
        }
        telemetry.finish(&mut fleet, t(50 * 241));
        let applied = fleet.metrics().counter("remediation.actions.applied");
        let rolled_back = fleet.metrics().counter("remediation.actions.rolled_back");
        let stats = fleet.finish();

        let monitor = telemetry.health().expect("health plane attached");
        assert!(
            monitor.open_alerts().is_empty(),
            "claim: every alert must close by the end of the run (open: {:?})",
            monitor.open_alerts()
        );
        let g = &stats.shards.global;
        Arm {
            opens: monitor
                .rules()
                .iter()
                .map(|r| (r.name.clone(), monitor.opens(&r.name)))
                .collect(),
            open_ticks: monitor
                .incidents()
                .iter()
                .map(|i| u64::from(i.closed_tick - i.opened_tick + 1))
                .sum(),
            // The SLO's own view: the mean of the full-fidelity lateness
            // series — the exact signal the lateness rule windows. (Its
            // p99 is 0 in every arm: most ticks are on time.)
            slo_late_us: telemetry
                .store()
                .expect("ticked")
                .aggregate(
                    &Selector::metric(Metric::LatenessUs).degraded(false),
                    Aggregate::Mean,
                )
                .map_or(0.0, |r| r.value),
            miss_pct: 100.0 * g.deadline_misses as f64 / g.elements_served.max(1) as f64,
            drop_pct: 100.0 * g.dropped_elements as f64
                / (g.elements_served + g.dropped_elements).max(1) as f64,
            applied,
            rolled_back,
            log: telemetry
                .remediator()
                .map(|r| r.render_log())
                .unwrap_or_default(),
        }
    };

    let kill = || NodeFaultPlan::new().with_crash_restart(t(4_000), t(8_000));
    let brownout = || NodeFaultPlan::new().with_brownout(t(4_000), t(8_000), 25);

    // The kill runs tight (5 sessions' headroom per node): losing a node
    // saturates the survivors, so lateness is sustained, not a blip.
    let kill_off = storm(kill(), 5, false);
    let kill_on = storm(kill(), 5, true);
    // The brownout runs ample, as in §health: skew is the only signal.
    let brown_off = storm(brownout(), 20, false);
    let brown_on = storm(brownout(), 20, true);

    for (title, off, on) in [
        ("node kill (5× headroom)", &kill_off, &kill_on),
        ("brownout (20× headroom)", &brown_off, &brown_on),
    ] {
        println!("{title}:");
        println!(
            "{:>18}{:>14}{:>10}{:>10}{:>14}{:>10}{:>12}",
            "arm", "slo mean late", "misses", "drops", "alert ticks", "applied", "rolled back"
        );
        println!("{}", "-".repeat(88));
        for (arm, a) in [("remediation off", off), ("remediation on", on)] {
            println!(
                "{arm:>18}{:>12.0}\u{b5}s{:>9.1}%{:>9.1}%{:>14}{:>10}{:>12}",
                a.slo_late_us, a.miss_pct, a.drop_pct, a.open_ticks, a.applied, a.rolled_back
            );
        }
        println!();
    }

    // The kill's claims: the derate-and-degrade entry fires, p99 falls
    // measurably, the alert spends fewer ticks open, and the happy path
    // never needs the rollback.
    assert!(kill_on.applied >= 1, "claim: the kill playbook must act");
    assert!(
        kill_on.slo_late_us < kill_off.slo_late_us,
        "claim: remediation must cut the SLO's full-fidelity lateness \
         ({:.0}\u{b5}s on vs {:.0}\u{b5}s off)",
        kill_on.slo_late_us,
        kill_off.slo_late_us
    );
    assert!(
        kill_on.miss_pct < kill_off.miss_pct,
        "claim: remediation must cut the kill storm's deadline-miss rate \
         ({:.2}% on vs {:.2}% off)",
        kill_on.miss_pct,
        kill_off.miss_pct
    );
    assert!(
        kill_on.open_ticks < kill_off.open_ticks,
        "claim: remediation must shorten the kill's alerts"
    );
    assert!(kill_on.drop_pct <= kill_off.drop_pct);
    assert_eq!(kill_on.rolled_back, 0, "happy path: nothing to roll back");

    // The brownout's claims: the rebalance closes the skew alert sooner
    // than the off arm, which waits out the fault.
    assert!(brown_on.applied >= 1, "claim: the skew playbook must act");
    assert!(
        brown_on.open_ticks < brown_off.open_ticks,
        "claim: the rebalance must close the skew alert sooner \
         ({} ticks on vs {} off)",
        brown_on.open_ticks,
        brown_off.open_ticks
    );
    assert_eq!(brown_on.rolled_back, 0, "happy path: nothing to roll back");
    for (name, opens) in &brown_on.opens {
        if name == "load-skew" {
            assert_eq!(*opens, 1, "claim: the remediated skew alert opens once");
        }
    }

    println!(
        "kill: slo mean lateness {:.0}\u{b5}s \u{2192} {:.0}\u{b5}s, misses {:.2}% \u{2192} {:.2}%, \
         alert-open {} \u{2192} {} ticks; brownout: alert-open {} \u{2192} {} ticks",
        kill_off.slo_late_us,
        kill_on.slo_late_us,
        kill_off.miss_pct,
        kill_on.miss_pct,
        kill_off.open_ticks,
        kill_on.open_ticks,
        brown_off.open_ticks,
        brown_on.open_ticks
    );

    // Determinism: the whole loop — sampling, alerting, actions,
    // verification — replays byte-identically from the seed.
    let kill_on2 = storm(kill(), 5, true);
    assert_eq!(
        kill_on.log, kill_on2.log,
        "claim: same-seed runs must produce byte-identical action logs"
    );
    assert!(!kill_on.log.is_empty());
    println!("\nsame-seed rerun replays a byte-identical action log; the kill's reads:");
    for line in kill_on.log.lines() {
        println!("  {line}");
    }
    println!();
}

/// Re-renders the registry of a finished run for display. The tracer does
/// not own the registry, so the interesting figures come off the stats
/// snapshot; histograms are shown as p50/p99/max.
fn run_metrics_render(_tracer: &tbm_obs::Tracer, stats: &tbm_serve::ServerStats) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "serve.elements.served   {}\nserve.elements.misses   {}\nserve.faults.detected   {}\nstorage.bytes_read      {}\n",
        stats.elements_served, stats.deadline_misses, stats.faults_detected, stats.storage_bytes_read
    ));
    out.push_str(&format!(
        "serve.lateness_us       p50 {} / p99 {} / max {}\n",
        stats.lateness.quantile(50),
        stats.lateness.quantile(99),
        stats.lateness.max()
    ));
    out.push_str(&format!(
        "serve.service_us        p50 {} / p99 {} / max {}\n",
        stats.service.quantile(50),
        stats.service.quantile(99),
        stats.service.max()
    ));
    out.push_str(&format!(
        "cache.hit_rate          {:.1}%",
        stats.cache.hit_rate() * 100.0
    ));
    out
}

fn indent_block(s: &str) -> String {
    s.lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
