//! E5 — Figure 5: successive interpretation, derivation and composition.
//!
//! Drives one asset through the four layers and prints, per layer, the
//! objects present and the bytes the database actually stores — the
//! quantitative face of the paper's layering diagram.
//!
//! ```text
//! cargo run --release -p tbm-bench --bin exp_fig5
//! ```

#![allow(clippy::format_in_format_args)] // computed cells padded by the outer format
use tbm_bench::{captured_av, fmt_bytes, SPF};
use tbm_blob::BlobStore;
use tbm_compose::{Component, ComponentKind, MultimediaObject};
use tbm_db::MediaDb;
use tbm_derive::{EditCut, MediaValue, Node, Op};
use tbm_time::{AllenRelation, Rational, TimeDelta, TimePoint};

fn main() {
    println!("E5 / Figure 5 — successive interpretation, derivation and composition\n");

    let n = 75; // 3 s of PAL
    let (store, cap) = captured_av(n, 160, 120);
    let blob_len = store.len(cap.blob).unwrap();
    let mut db = MediaDb::with_store(store);
    db.register_interpretation(cap.interpretation).unwrap();

    // Derivation layer: a trim and a fade-out built on the captured video.
    db.create_derived(
        "videoT",
        Node::derive(
            Op::VideoEdit {
                cuts: vec![EditCut {
                    input: 0,
                    from: 0,
                    to: (n as u32) - 25,
                }],
            },
            vec![Node::source("video1")],
        ),
    )
    .unwrap();
    db.create_derived(
        "audioT",
        Node::derive(
            Op::AudioCut {
                from: 0,
                to: ((n - 25) * SPF) as u32,
            },
            vec![Node::source("audio1")],
        ),
    )
    .unwrap();

    // Composition layer.
    let dur = TimeDelta::from_seconds(Rational::new(n as i64 - 25, 25));
    let mut m = MultimediaObject::new("m");
    m.add_component(
        Component::new(
            "videoT",
            ComponentKind::Video,
            Node::source("videoT"),
            TimePoint::ZERO,
            dur,
        )
        .unwrap(),
    )
    .unwrap();
    m.add_component(
        Component::new(
            "audioT",
            ComponentKind::Audio,
            Node::source("audioT"),
            TimePoint::ZERO,
            dur,
        )
        .unwrap(),
    )
    .unwrap();
    m.add_constraint("audioT", AllenRelation::Equals, "videoT")
        .unwrap();
    db.add_multimedia(m).unwrap();

    // ------------------------------------------------------------------
    // The layer report, bottom-up as in Fig. 5.
    // ------------------------------------------------------------------
    let interp = &db.interpretations()[0];
    let mapped = interp.mapped_bytes();
    let non_derived: Vec<&str> = db
        .objects()
        .iter()
        .filter(|o| !o.origin.is_derived())
        .map(|o| o.name.as_str())
        .collect();
    let derived: Vec<&str> = db
        .objects()
        .iter()
        .filter(|o| o.origin.is_derived())
        .map(|o| o.name.as_str())
        .collect();
    let deriv_bytes: u64 = derived
        .iter()
        .map(|d| db.derivation_storage_bytes(d).unwrap())
        .sum();
    let expanded: u64 = derived
        .iter()
        .map(|d| db.materialize(d).unwrap().approx_bytes())
        .sum();

    println!(
        "{:<28}{:<34}{:>14}",
        "layer (Fig. 5)", "objects", "stored bytes"
    );
    println!("{}", "-".repeat(76));
    println!(
        "{:<28}{:<34}{:>14}",
        "multimedia object", "m (2 components, 1 constraint)", "≈0 (relations)"
    );
    println!(
        "{:<28}{:<34}{:>14}",
        "media objects (derived)",
        format!("{derived:?}"),
        fmt_bytes(deriv_bytes)
    );
    println!(
        "{:<28}{:<34}{:>14}",
        "media objects (non-derived)",
        format!("{non_derived:?}"),
        format!("tables over {}", fmt_bytes(mapped))
    );
    println!(
        "{:<28}{:<34}{:>14}",
        "BLOB",
        format!("{}", interp.blob()),
        fmt_bytes(blob_len)
    );
    println!(
        "\nderived objects would occupy {} if expanded — kept implicit at {} \
         ({}x smaller)",
        fmt_bytes(expanded),
        fmt_bytes(deriv_bytes),
        expanded / deriv_bytes.max(1)
    );

    // The abstraction boundary: applications see media elements, never
    // BLOB offsets.
    let (_, vstream) = db.stream_of("video1").unwrap();
    let e0 = vstream.entry(0).unwrap();
    println!(
        "\napplications see:   element 0 = {} bytes at start tick {}",
        e0.size, e0.start
    );
    println!(
        "interpretation hides: placement {} within the BLOB",
        e0.placement.as_single().unwrap()
    );
    match db.materialize("videoT").unwrap() {
        MediaValue::Video(v) => {
            println!(
                "top of the stack:   videoT expands to {} frames of {}x{}",
                v.len(),
                v.geometry().unwrap().0,
                v.geometry().unwrap().1
            );
        }
        _ => unreachable!(),
    }
}
