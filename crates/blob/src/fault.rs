//! Deterministic fault injection and retry for BLOB reads.
//!
//! The paper's interpretation machinery assumes BLOB bytes arrive intact; a
//! production store does not get that luxury. [`FaultyBlobStore`] wraps any
//! [`BlobStore`] and injects a *seeded, reproducible* plan of read faults:
//!
//! * **transient errors** — a read fails with `ErrorKind::Interrupted` for
//!   the first few attempts, then succeeds (models bus resets, NFS hiccups);
//! * **bit-flip corruption** — a read succeeds but one bit of the returned
//!   buffer is flipped, *silently* (models media rot; only a checksum at the
//!   interpretation layer can catch it);
//! * **truncated reads** — every attempt fails with
//!   `ErrorKind::UnexpectedEof` after a partial fill (models a lost extent;
//!   retries cannot help, only degradation can);
//! * **latency** — a read succeeds but accrues a cost hint, drained via
//!   [`FaultyBlobStore::drain_cost_hint_us`], that playback simulation adds
//!   to the element's service time.
//!
//! Whether a given `(blob, span)` is faulty is a pure function of the plan's
//! seed, so the same seed always produces the same fault storm — the
//! property the acceptance criteria (and any bug report) depend on.
//!
//! [`RetryPolicy`] is the consumer-side half: bounded retries with an
//! exponential backoff *budget*, retrying only errors classified transient.

use crate::{BlobError, BlobStore, ByteSpan};
use std::cell::Cell;
use tbm_core::BlobId;
use tbm_obs::{Category, Tracer};

/// A seeded, reproducible plan of read faults.
///
/// Rates are probabilities in `[0, 1]` evaluated independently per
/// `(blob, span)` read address. The default plan (any seed, all rates zero)
/// injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed from which every fault decision is derived.
    pub seed: u64,
    /// Probability a read address suffers transient errors before succeeding.
    pub transient_rate: f64,
    /// Upper bound on consecutive transient failures of one read address.
    pub max_transient_attempts: u32,
    /// Probability a read address returns silently corrupted bytes.
    pub corrupt_rate: f64,
    /// Probability a read address is truncated (every attempt fails).
    pub truncate_rate: f64,
    /// Probability a read accrues an added-latency cost hint.
    pub latency_rate: f64,
    /// Cost hint per latency event, in microseconds.
    pub latency_us: u64,
}

impl FaultPlan {
    /// A plan with the given seed and no faults; enable classes with the
    /// builder methods.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            transient_rate: 0.0,
            max_transient_attempts: 2,
            corrupt_rate: 0.0,
            truncate_rate: 0.0,
            latency_rate: 0.0,
            latency_us: 500,
        }
    }

    /// Enables transient read errors at `rate`.
    pub fn with_transient(mut self, rate: f64) -> FaultPlan {
        self.transient_rate = rate;
        self
    }

    /// Enables silent bit-flip corruption at `rate`.
    pub fn with_corruption(mut self, rate: f64) -> FaultPlan {
        self.corrupt_rate = rate;
        self
    }

    /// Enables truncated (unrecoverable) reads at `rate`.
    pub fn with_truncation(mut self, rate: f64) -> FaultPlan {
        self.truncate_rate = rate;
        self
    }

    /// Enables added latency at `rate`, `us` microseconds per event.
    pub fn with_latency(mut self, rate: f64, us: u64) -> FaultPlan {
        self.latency_rate = rate;
        self.latency_us = us;
        self
    }
}

/// Counts of injected faults, by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Total read attempts observed.
    pub reads: u64,
    /// Read attempts failed with a transient error.
    pub transient_errors: u64,
    /// Reads that returned silently corrupted bytes.
    pub corrupted_reads: u64,
    /// Read attempts failed with a truncation error.
    pub truncated_reads: u64,
    /// Reads that accrued an added-latency cost hint.
    pub latency_events: u64,
}

/// A [`BlobStore`] decorator injecting the faults of a [`FaultPlan`].
///
/// Writes pass through unchanged; only the read path is faulty. The decorator
/// needs no interior store state — all fault decisions derive from the plan's
/// seed and the read address — so wrapping a store never changes its bytes.
#[derive(Debug)]
pub struct FaultyBlobStore<S: BlobStore> {
    inner: S,
    plan: FaultPlan,
    reads: Cell<u64>,
    transient_errors: Cell<u64>,
    corrupted_reads: Cell<u64>,
    truncated_reads: Cell<u64>,
    latency_events: Cell<u64>,
    cost_hint_us: Cell<u64>,
    tracer: Tracer,
}

/// Distinct hash streams per fault class, so e.g. transience and corruption
/// of the same span are independent coin flips.
const TAG_TRANSIENT: u64 = 1;
const TAG_TRANSIENT_COUNT: u64 = 2;
const TAG_CORRUPT: u64 = 3;
const TAG_CORRUPT_POS: u64 = 4;
const TAG_TRUNCATE: u64 = 5;
const TAG_LATENCY: u64 = 6;

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl<S: BlobStore> FaultyBlobStore<S> {
    /// Wraps `inner`, injecting faults per `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> FaultyBlobStore<S> {
        FaultyBlobStore {
            inner,
            plan,
            reads: Cell::new(0),
            transient_errors: Cell::new(0),
            corrupted_reads: Cell::new(0),
            truncated_reads: Cell::new(0),
            latency_events: Cell::new(0),
            cost_hint_us: Cell::new(0),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer: every injected fault becomes an instant event in
    /// the shared timeline, stamped with the tracer's current simulated
    /// "now" (the driver advances it via [`Tracer::set_now`]).
    pub fn with_tracer(mut self, tracer: Tracer) -> FaultyBlobStore<S> {
        self.tracer = tracer;
        self
    }

    /// The attached tracer (disabled unless set).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps, returning the inner store.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The active fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counts of faults injected so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            reads: self.reads.get(),
            transient_errors: self.transient_errors.get(),
            corrupted_reads: self.corrupted_reads.get(),
            truncated_reads: self.truncated_reads.get(),
            latency_events: self.latency_events.get(),
        }
    }

    /// Attempt counters are per read address, derived from a decision hash —
    /// the `attempt` parameter lets transient faults clear after N tries.
    fn hash(&self, blob: BlobId, span: ByteSpan, tag: u64) -> u64 {
        let mut h = splitmix64(self.plan.seed ^ tag.wrapping_mul(0xA076_1D64_78BD_642F));
        h = splitmix64(h ^ blob.raw());
        h = splitmix64(h ^ span.offset);
        splitmix64(h ^ span.len)
    }

    fn unit(&self, blob: BlobId, span: ByteSpan, tag: u64) -> f64 {
        (self.hash(blob, span, tag) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// How many leading attempts at this address fail transiently (0 = none).
    fn transient_failures(&self, blob: BlobId, span: ByteSpan) -> u32 {
        if self.unit(blob, span, TAG_TRANSIENT) >= self.plan.transient_rate {
            return 0;
        }
        let max = self.plan.max_transient_attempts.max(1) as u64;
        1 + (self.hash(blob, span, TAG_TRANSIENT_COUNT) % max) as u32
    }

    fn is_truncated(&self, blob: BlobId, span: ByteSpan) -> bool {
        span.len > 0 && self.unit(blob, span, TAG_TRUNCATE) < self.plan.truncate_rate
    }

    fn is_corrupted(&self, blob: BlobId, span: ByteSpan) -> bool {
        span.len > 0 && self.unit(blob, span, TAG_CORRUPT) < self.plan.corrupt_rate
    }

    /// The faulty read path; [`BlobStore::read_into`] is attempt 0,
    /// [`BlobStore::read_into_attempt`] passes the retry loop's counter so
    /// transient faults can clear.
    fn faulty_read(
        &self,
        blob: BlobId,
        span: ByteSpan,
        buf: &mut [u8],
        attempt: u32,
    ) -> Result<(), BlobError> {
        self.reads.set(self.reads.get() + 1);

        if self.plan.latency_rate > 0.0
            && self.unit(blob, span, TAG_LATENCY) < self.plan.latency_rate
        {
            self.latency_events.set(self.latency_events.get() + 1);
            self.cost_hint_us
                .set(self.cost_hint_us.get() + self.plan.latency_us);
            self.tracer.event_now(
                "fault.latency",
                Category::Fault,
                vec![
                    ("blob", blob.raw().into()),
                    ("offset", span.offset.into()),
                    ("latency_us", self.plan.latency_us.into()),
                ],
            );
        }

        if self.is_truncated(blob, span) {
            // Permanent: the tail of the span is unreadable on every attempt.
            let keep = (self.hash(blob, span, TAG_TRUNCATE) % span.len.max(1)) as usize;
            let partial = ByteSpan::new(span.offset, keep as u64);
            self.inner.read_into(blob, partial, &mut buf[..keep])?;
            self.truncated_reads.set(self.truncated_reads.get() + 1);
            self.tracer.event_now(
                "fault.truncation",
                Category::Fault,
                vec![
                    ("blob", blob.raw().into()),
                    ("offset", span.offset.into()),
                    ("kept", keep.into()),
                    ("wanted", span.len.into()),
                ],
            );
            return Err(BlobError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!(
                    "injected truncation of {blob} at {}+{}",
                    span.offset, span.len
                ),
            )));
        }

        if attempt < self.transient_failures(blob, span) {
            self.transient_errors.set(self.transient_errors.get() + 1);
            self.tracer.event_now(
                "fault.transient",
                Category::Fault,
                vec![
                    ("blob", blob.raw().into()),
                    ("offset", span.offset.into()),
                    ("attempt", attempt.into()),
                ],
            );
            return Err(BlobError::Io(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                format!(
                    "injected transient error on {blob} at {}+{}",
                    span.offset, span.len
                ),
            )));
        }

        self.inner.read_into(blob, span, buf)?;

        if self.is_corrupted(blob, span) {
            // Permanent, silent: same bit flips on every attempt.
            let pos = self.hash(blob, span, TAG_CORRUPT_POS);
            let byte = (pos % span.len) as usize;
            let bit = ((pos >> 32) % 8) as u32;
            buf[byte] ^= 1 << bit;
            self.corrupted_reads.set(self.corrupted_reads.get() + 1);
            self.tracer.event_now(
                "fault.corruption",
                Category::Fault,
                vec![
                    ("blob", blob.raw().into()),
                    ("offset", span.offset.into()),
                    ("byte", byte.into()),
                    ("bit", bit.into()),
                ],
            );
        }
        Ok(())
    }
}

impl<S: BlobStore> BlobStore for FaultyBlobStore<S> {
    fn create(&mut self) -> Result<BlobId, BlobError> {
        self.inner.create()
    }

    fn append(&mut self, blob: BlobId, data: &[u8]) -> Result<ByteSpan, BlobError> {
        self.inner.append(blob, data)
    }

    fn read_into(&self, blob: BlobId, span: ByteSpan, buf: &mut [u8]) -> Result<(), BlobError> {
        self.faulty_read(blob, span, buf, 0)
    }

    fn read_into_attempt(
        &self,
        blob: BlobId,
        span: ByteSpan,
        buf: &mut [u8],
        attempt: u32,
    ) -> Result<(), BlobError> {
        self.faulty_read(blob, span, buf, attempt)
    }

    fn drain_cost_hint_us(&self) -> u64 {
        self.cost_hint_us.replace(0)
    }

    fn len(&self, blob: BlobId) -> Result<u64, BlobError> {
        self.inner.len(blob)
    }

    fn contains(&self, blob: BlobId) -> bool {
        self.inner.contains(blob)
    }

    fn blob_ids(&self) -> Vec<BlobId> {
        self.inner.blob_ids()
    }
}

/// Whether an error is worth retrying (transient I/O) or final.
pub fn is_transient(err: &BlobError) -> bool {
    match err {
        BlobError::Io(e) => matches!(
            e.kind(),
            std::io::ErrorKind::Interrupted
                | std::io::ErrorKind::WouldBlock
                | std::io::ErrorKind::TimedOut
        ),
        _ => false,
    }
}

/// Bounded retries with an exponential backoff budget.
///
/// The policy never sleeps — this workspace simulates time — but it accounts
/// the backoff it *would* have spent, so playback can charge it as lateness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = try once).
    pub max_retries: u32,
    /// Backoff before the first retry, in microseconds; doubles per retry.
    pub base_backoff_us: u64,
    /// Total backoff budget in microseconds; retries stop when exceeded.
    pub backoff_budget_us: u64,
    /// Seed for deterministic backoff jitter; `None` disables jitter.
    ///
    /// With a seed, each backoff step is scaled into `[50%, 100%]` of its
    /// nominal value by a pure function of `(seed, attempt)`, so retry
    /// storms de-synchronize *and* same-seed runs stay byte-identical.
    pub jitter_seed: Option<u64>,
}

impl RetryPolicy {
    /// A policy with `max_retries` retries, 200µs base backoff, a 50ms
    /// total budget and no jitter.
    pub fn new(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base_backoff_us: 200,
            backoff_budget_us: 50_000,
            jitter_seed: None,
        }
    }

    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_backoff_us: 0,
            backoff_budget_us: 0,
            jitter_seed: None,
        }
    }

    /// Enables seeded-deterministic backoff jitter. Derive `seed` from the
    /// session or fault-plan seed so reproducibility survives retry storms.
    pub fn with_jitter(mut self, seed: u64) -> RetryPolicy {
        self.jitter_seed = Some(seed);
        self
    }

    /// The backoff actually charged for retry number `attempt` given a
    /// nominal (doubled) backoff: the nominal value without jitter, or a
    /// seed-deterministic value in `[nominal/2, nominal]` with it.
    fn jittered(&self, nominal: u64, attempt: u32) -> u64 {
        match self.jitter_seed {
            None => nominal,
            Some(seed) => {
                let half = nominal / 2;
                let spread = nominal - half;
                if spread == 0 {
                    return nominal;
                }
                let h = splitmix64(splitmix64(seed) ^ u64::from(attempt + 1));
                half + h % (spread + 1)
            }
        }
    }
}

/// What a [`RetryPolicy::run`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryReport {
    /// Attempts made (≥ 1).
    pub attempts: u32,
    /// Backoff accounted across all retries, in microseconds.
    pub backoff_spent_us: u64,
}

impl RetryPolicy {
    /// Runs `op` (which receives the attempt number) until it succeeds, hits
    /// a non-transient error, or exhausts the retry/backoff budget.
    pub fn run<T>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, BlobError>,
    ) -> (Result<T, BlobError>, RetryReport) {
        let mut report = RetryReport::default();
        let mut backoff = self.base_backoff_us;
        let mut attempt = 0u32;
        loop {
            report.attempts = attempt + 1;
            match op(attempt) {
                Ok(v) => return (Ok(v), report),
                Err(e) => {
                    let step = self.jittered(backoff, attempt);
                    let out_of_budget = report.backoff_spent_us + step > self.backoff_budget_us;
                    if attempt >= self.max_retries || !is_transient(&e) || out_of_budget {
                        return (Err(e), report);
                    }
                    report.backoff_spent_us += step;
                    backoff = backoff.saturating_mul(2);
                    attempt += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemBlobStore;

    fn seeded_store(plan: FaultPlan) -> (FaultyBlobStore<MemBlobStore>, BlobId, Vec<ByteSpan>) {
        let mut inner = MemBlobStore::new();
        let blob = inner.create().unwrap();
        let mut spans = Vec::new();
        for i in 0..200u32 {
            let data = vec![i as u8; 64];
            spans.push(inner.append(blob, &data).unwrap());
        }
        (FaultyBlobStore::new(inner, plan), blob, spans)
    }

    #[test]
    fn zero_rate_plan_is_transparent() {
        let (store, blob, spans) = seeded_store(FaultPlan::new(7));
        for (i, span) in spans.iter().enumerate() {
            assert_eq!(store.read(blob, *span).unwrap(), vec![i as u8; 64]);
        }
        let stats = store.stats();
        assert_eq!(stats.reads, 200);
        assert_eq!(stats.transient_errors, 0);
        assert_eq!(stats.corrupted_reads, 0);
        assert_eq!(stats.truncated_reads, 0);
    }

    #[test]
    fn same_seed_reproduces_identical_faults() {
        let plan = FaultPlan::new(42)
            .with_transient(0.2)
            .with_corruption(0.1)
            .with_truncation(0.05);
        let run = || {
            let (store, blob, spans) = seeded_store(plan);
            let outcomes: Vec<_> = spans
                .iter()
                .map(|s| match store.read(blob, *s) {
                    Ok(v) => format!("ok:{:x}", tbm_core::crc32(&v)),
                    Err(e) => format!("err:{e}"),
                })
                .collect();
            (outcomes, store.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            let (store, blob, spans) = seeded_store(FaultPlan::new(seed).with_corruption(0.3));
            spans
                .iter()
                .map(|s| store.read(blob, *s).unwrap())
                .collect::<Vec<_>>()
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn transient_faults_clear_after_retries() {
        let plan = FaultPlan::new(99).with_transient(1.0); // every span transient
        let (store, blob, spans) = seeded_store(plan);
        let policy = RetryPolicy::new(4);
        for (i, span) in spans.iter().enumerate() {
            let (result, report) = policy.run(|attempt| {
                let mut buf = vec![0u8; span.len as usize];
                store
                    .read_into_attempt(blob, *span, &mut buf, attempt)
                    .map(|()| buf)
            });
            let buf = result.expect("retries should clear transient faults");
            assert_eq!(buf, vec![i as u8; 64]);
            assert!(report.attempts >= 2, "span {i} should have needed a retry");
            assert!(report.backoff_spent_us > 0);
        }
        assert!(store.stats().transient_errors > 0);
    }

    #[test]
    fn truncation_is_permanent_and_not_retried_past_budget() {
        let plan = FaultPlan::new(5).with_truncation(1.0);
        let (store, blob, spans) = seeded_store(plan);
        let policy = RetryPolicy::new(3);
        let span = spans[0];
        let (result, report) = policy.run(|attempt| {
            let mut buf = vec![0u8; span.len as usize];
            store
                .read_into_attempt(blob, span, &mut buf, attempt)
                .map(|()| buf)
        });
        assert!(result.is_err());
        // UnexpectedEof is not transient: no retries wasted.
        assert_eq!(report.attempts, 1);
    }

    #[test]
    fn corruption_is_silent_and_stable() {
        let plan = FaultPlan::new(1234).with_corruption(1.0);
        let (store, blob, spans) = seeded_store(plan);
        let clean = vec![0u8; 64];
        let read1 = store.read(blob, spans[0]).unwrap();
        let read2 = store.read(blob, spans[0]).unwrap();
        assert_ne!(read1, clean, "corruption must alter the bytes");
        assert_eq!(read1, read2, "the same span corrupts the same way");
        // Exactly one bit differs.
        let flipped: u32 = read1
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn latency_accrues_cost_hint() {
        let plan = FaultPlan::new(8).with_latency(1.0, 750);
        let (store, blob, spans) = seeded_store(plan);
        store.read(blob, spans[0]).unwrap();
        store.read(blob, spans[1]).unwrap();
        assert_eq!(store.drain_cost_hint_us(), 1500);
        assert_eq!(store.drain_cost_hint_us(), 0, "drain resets the hint");
        assert_eq!(store.stats().latency_events, 2);
    }

    #[test]
    fn retry_budget_bounds_backoff() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_backoff_us: 1000,
            backoff_budget_us: 2500,
            jitter_seed: None,
        };
        let (result, report) = policy.run(|_| -> Result<(), BlobError> {
            Err(BlobError::Io(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "always transient",
            )))
        });
        assert!(result.is_err());
        // 1000 + 2000 would exceed 2500 at the second retry.
        assert_eq!(report.attempts, 2);
        assert_eq!(report.backoff_spent_us, 1000);
    }

    #[test]
    fn jittered_backoff_is_seeded_deterministic_and_bounded() {
        let always_transient = |_: u32| -> Result<(), BlobError> {
            Err(BlobError::Io(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "always transient",
            )))
        };
        let run = |seed: u64| {
            let policy = RetryPolicy::new(5).with_jitter(seed);
            let (_, report) = policy.run(always_transient);
            report
        };
        // Same seed, same accounted backoff — byte-identical retry storms.
        assert_eq!(run(7), run(7));
        // Different seeds de-synchronize the storm.
        assert_ne!(run(7).backoff_spent_us, run(8).backoff_spent_us);
        // Every jittered step stays within [nominal/2, nominal].
        let policy = RetryPolicy::new(5).with_jitter(42);
        let nominal = RetryPolicy::new(5);
        let (_, jit) = policy.run(always_transient);
        let (_, nom) = nominal.run(always_transient);
        assert_eq!(jit.attempts, nom.attempts);
        assert!(jit.backoff_spent_us <= nom.backoff_spent_us);
        assert!(jit.backoff_spent_us >= nom.backoff_spent_us / 2);
    }

    #[test]
    fn tracer_records_fault_events_at_simulated_now() {
        use tbm_obs::micros_of;
        let plan = FaultPlan::new(42)
            .with_transient(0.2)
            .with_corruption(0.1)
            .with_truncation(0.05)
            .with_latency(0.1, 500);
        let tracer = Tracer::new();
        let (store, blob, spans) = seeded_store(plan);
        let store = store.with_tracer(tracer.clone());
        assert!(store.tracer().is_enabled());
        for (i, span) in spans.iter().enumerate() {
            // The driver advances simulated time; faults stamp with it.
            tracer.set_now(tbm_time::TimePoint::ZERO + tbm_time::TimeDelta::from_millis(i as i64));
            let _ = store.read(blob, *span);
        }
        let snap = tracer.snapshot();
        let stats = store.stats();
        let count = |name: &str| snap.records.iter().filter(|r| r.name == name).count() as u64;
        assert_eq!(count("fault.transient"), stats.transient_errors);
        assert_eq!(count("fault.corruption"), stats.corrupted_reads);
        assert_eq!(count("fault.truncation"), stats.truncated_reads);
        assert_eq!(count("fault.latency"), stats.latency_events);
        assert!(!snap.records.is_empty(), "this seed must inject something");
        for rec in &snap.records {
            assert_eq!(rec.cat, tbm_obs::Category::Fault);
            assert!(micros_of(rec.start) >= 0);
        }
    }

    #[test]
    fn writes_pass_through() {
        let plan = FaultPlan::new(3).with_corruption(1.0).with_transient(1.0);
        let mut store = FaultyBlobStore::new(MemBlobStore::new(), plan);
        let blob = store.create().unwrap();
        let span = store.append(blob, b"pristine").unwrap();
        assert_eq!(store.inner().read(blob, span).unwrap(), b"pristine");
        assert_eq!(store.len(blob).unwrap(), 8);
        assert!(store.contains(blob));
        assert_eq!(store.blob_ids().len(), 1);
    }
}
