//! Byte spans: placements of media elements within a BLOB.

use std::fmt;

/// A contiguous byte range `[offset, offset + len)` within a BLOB.
///
/// Interpretation tables (paper §4.1, the `blobPlacement` column) use spans
/// to record where each media element's encoded bytes live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ByteSpan {
    /// Start offset within the BLOB.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

impl ByteSpan {
    /// Creates a span.
    pub const fn new(offset: u64, len: u64) -> ByteSpan {
        ByteSpan { offset, len }
    }

    /// The exclusive end offset.
    pub const fn end(self) -> u64 {
        self.offset + self.len
    }

    /// `true` when the span covers no bytes.
    pub const fn is_empty(self) -> bool {
        self.len == 0
    }

    /// `true` when the two spans share bytes.
    pub fn overlaps(self, other: ByteSpan) -> bool {
        self.offset < other.end() && other.offset < self.end()
    }

    /// `true` when `other` lies entirely within `self`.
    pub fn contains(self, other: ByteSpan) -> bool {
        self.offset <= other.offset && other.end() <= self.end()
    }

    /// A sub-span relative to this span's start; `None` if it exceeds bounds.
    pub fn slice(self, rel_offset: u64, len: u64) -> Option<ByteSpan> {
        if rel_offset + len <= self.len {
            Some(ByteSpan::new(self.offset + rel_offset, len))
        } else {
            None
        }
    }

    /// The span immediately following this one, of the given length.
    pub const fn following(self, len: u64) -> ByteSpan {
        ByteSpan::new(self.end(), len)
    }
}

impl fmt::Display for ByteSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.offset, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let s = ByteSpan::new(10, 5);
        assert_eq!(s.end(), 15);
        assert!(!s.is_empty());
        assert!(ByteSpan::new(3, 0).is_empty());
        assert_eq!(s.to_string(), "[10, 15)");
    }

    #[test]
    fn overlap_and_containment() {
        let a = ByteSpan::new(0, 10);
        let b = ByteSpan::new(5, 10);
        let c = ByteSpan::new(10, 5);
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c));
        assert!(a.contains(ByteSpan::new(2, 3)));
        assert!(!a.contains(b));
        assert!(a.contains(a));
    }

    #[test]
    fn slicing() {
        let s = ByteSpan::new(100, 50);
        assert_eq!(s.slice(10, 20), Some(ByteSpan::new(110, 20)));
        assert_eq!(s.slice(40, 10), Some(ByteSpan::new(140, 10)));
        assert_eq!(s.slice(41, 10), None);
    }

    #[test]
    fn following_chains() {
        let a = ByteSpan::new(0, 8);
        let b = a.following(4);
        assert_eq!(b, ByteSpan::new(8, 4));
        assert_eq!(b.following(2), ByteSpan::new(12, 2));
    }
}
