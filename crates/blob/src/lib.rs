//! # tbm-blob — the BLOB substrate
//!
//! Implements the paper's Definition 4:
//!
//! > *"A BLOB is an attribute value that appears to applications as a
//! > sequence of bytes. The database system provides an interface by which
//! > applications can read and append data to BLOBs."*
//!
//! The interface is deliberately append-only: the paper notes that insertion
//! and deletion of byte spans "are not essential since non-destructive
//! editing techniques are often used" — edits happen at the derivation
//! layer, never by rewriting BLOBs.
//!
//! Two stores are provided:
//!
//! * [`MemBlobStore`] — in-memory, with *fragmented extents*: a BLOB "may
//!   correspond to a region of contiguous storage or it may be fragmented,
//!   the layout of BLOBs is a performance issue and not directly relevant to
//!   data modeling". The chunked layout exercises span reads that cross
//!   fragment boundaries.
//! * [`FileBlobStore`] — file-backed (one file per BLOB) with buffered
//!   appends, for durability tests and realistic I/O in benchmarks.
//!
//! Two decorators compose over them: [`FaultyBlobStore`] injects a seeded,
//! reproducible storm of read faults, and [`TieredBlobStore`] stacks any
//! stores fastest-first behind per-tier circuit breakers, deadline-aware
//! hedging, verify-and-repair reads and promotion/demotion residency.
//!
//! Interpretation (`tbm-interp`) addresses BLOB content through
//! [`ByteSpan`]s — `(offset, length)` placements of media elements.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod fault;
mod file_store;
mod mem_store;
mod span;
mod store;
mod tiered;

pub use error::BlobError;
pub use fault::{is_transient, FaultPlan, FaultStats, FaultyBlobStore, RetryPolicy, RetryReport};
pub use file_store::{FileBlobStore, OpenReport, SkipReason};
pub use mem_store::MemBlobStore;
pub use span::ByteSpan;
pub use store::{BlobStore, BlobWriter, ReadCtx};
pub use tiered::{BreakerState, TierConfig, TierStats, TieredBlobStore};
