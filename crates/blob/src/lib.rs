//! # tbm-blob — the BLOB substrate
//!
//! Implements the paper's Definition 4:
//!
//! > *"A BLOB is an attribute value that appears to applications as a
//! > sequence of bytes. The database system provides an interface by which
//! > applications can read and append data to BLOBs."*
//!
//! The interface is deliberately append-only: the paper notes that insertion
//! and deletion of byte spans "are not essential since non-destructive
//! editing techniques are often used" — edits happen at the derivation
//! layer, never by rewriting BLOBs.
//!
//! Two stores are provided:
//!
//! * [`MemBlobStore`] — in-memory, with *fragmented extents*: a BLOB "may
//!   correspond to a region of contiguous storage or it may be fragmented,
//!   the layout of BLOBs is a performance issue and not directly relevant to
//!   data modeling". The chunked layout exercises span reads that cross
//!   fragment boundaries.
//! * [`FileBlobStore`] — file-backed (one file per BLOB) with buffered
//!   appends, for durability tests and realistic I/O in benchmarks.
//!
//! Interpretation (`tbm-interp`) addresses BLOB content through
//! [`ByteSpan`]s — `(offset, length)` placements of media elements.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod fault;
mod file_store;
mod mem_store;
mod span;
mod store;

pub use error::BlobError;
pub use fault::{is_transient, FaultPlan, FaultStats, FaultyBlobStore, RetryPolicy, RetryReport};
pub use file_store::{FileBlobStore, OpenReport, SkipReason};
pub use mem_store::MemBlobStore;
pub use span::ByteSpan;
pub use store::{BlobStore, BlobWriter};
