//! In-memory BLOB store with fragmented extents.

use crate::{BlobError, BlobStore, ByteSpan};
use tbm_core::BlobId;

/// Default extent size: 64 KiB. Small enough that realistic media spans
/// regularly cross fragment boundaries, which is the behaviour the store
/// exists to exercise.
const DEFAULT_EXTENT: usize = 64 * 1024;

/// One BLOB as a sequence of fixed-capacity extents.
#[derive(Debug, Clone, Default)]
struct Fragmented {
    extents: Vec<Vec<u8>>,
    len: u64,
    extent_size: usize,
}

impl Fragmented {
    fn new(extent_size: usize) -> Fragmented {
        Fragmented {
            extents: Vec::new(),
            len: 0,
            extent_size,
        }
    }

    fn append(&mut self, mut data: &[u8]) -> ByteSpan {
        let span = ByteSpan::new(self.len, data.len() as u64);
        while !data.is_empty() {
            let need_new = self
                .extents
                .last()
                .map(|e| e.len() == self.extent_size)
                .unwrap_or(true);
            if need_new {
                self.extents.push(Vec::with_capacity(self.extent_size));
            }
            let tail = self.extents.last_mut().expect("just ensured");
            let room = self.extent_size - tail.len();
            let take = room.min(data.len());
            tail.extend_from_slice(&data[..take]);
            data = &data[take..];
            self.len += take as u64;
        }
        span
    }

    fn read_into(&self, span: ByteSpan, buf: &mut [u8]) -> bool {
        if span.end() > self.len {
            return false;
        }
        let mut remaining = span.len as usize;
        let mut out = 0usize;
        let mut extent = (span.offset / self.extent_size as u64) as usize;
        let mut within = (span.offset % self.extent_size as u64) as usize;
        while remaining > 0 {
            let src = &self.extents[extent];
            let take = (src.len() - within).min(remaining);
            buf[out..out + take].copy_from_slice(&src[within..within + take]);
            out += take;
            remaining -= take;
            extent += 1;
            within = 0;
        }
        true
    }
}

/// An in-memory [`BlobStore`] whose BLOBs are fragmented into fixed-size
/// extents.
///
/// The fragmentation is invisible through the interface — exactly the
/// paper's point that BLOB layout "is a performance issue and not directly
/// relevant to data modeling".
#[derive(Debug, Clone)]
pub struct MemBlobStore {
    blobs: Vec<Fragmented>,
    extent_size: usize,
}

impl MemBlobStore {
    /// Creates a store with the default 64 KiB extent size.
    pub fn new() -> MemBlobStore {
        MemBlobStore::with_extent_size(DEFAULT_EXTENT)
    }

    /// Creates a store with a custom extent size (≥ 1).
    pub fn with_extent_size(extent_size: usize) -> MemBlobStore {
        assert!(extent_size >= 1, "extent size must be at least 1 byte");
        MemBlobStore {
            blobs: Vec::new(),
            extent_size,
        }
    }

    /// Total bytes stored across all BLOBs.
    pub fn total_bytes(&self) -> u64 {
        self.blobs.iter().map(|b| b.len).sum()
    }

    /// Number of extents backing a BLOB (a fragmentation probe for tests).
    pub fn extent_count(&self, blob: BlobId) -> Result<usize, BlobError> {
        self.get(blob).map(|b| b.extents.len())
    }

    fn get(&self, blob: BlobId) -> Result<&Fragmented, BlobError> {
        self.blobs
            .get(blob.raw() as usize)
            .ok_or(BlobError::NotFound(blob))
    }

    fn get_mut(&mut self, blob: BlobId) -> Result<&mut Fragmented, BlobError> {
        self.blobs
            .get_mut(blob.raw() as usize)
            .ok_or(BlobError::NotFound(blob))
    }
}

impl Default for MemBlobStore {
    fn default() -> MemBlobStore {
        MemBlobStore::new()
    }
}

impl BlobStore for MemBlobStore {
    fn create(&mut self) -> Result<BlobId, BlobError> {
        let id = BlobId::new(self.blobs.len() as u64);
        self.blobs.push(Fragmented::new(self.extent_size));
        Ok(id)
    }

    fn append(&mut self, blob: BlobId, data: &[u8]) -> Result<ByteSpan, BlobError> {
        Ok(self.get_mut(blob)?.append(data))
    }

    fn read_into(&self, blob: BlobId, span: ByteSpan, buf: &mut [u8]) -> Result<(), BlobError> {
        assert_eq!(
            buf.len() as u64,
            span.len,
            "buffer length must equal span length"
        );
        let b = self.get(blob)?;
        if !b.read_into(span, buf) {
            return Err(BlobError::OutOfBounds {
                blob,
                offset: span.offset,
                len: span.len,
                blob_len: b.len,
            });
        }
        Ok(())
    }

    fn len(&self, blob: BlobId) -> Result<u64, BlobError> {
        Ok(self.get(blob)?.len)
    }

    fn contains(&self, blob: BlobId) -> bool {
        (blob.raw() as usize) < self.blobs.len()
    }

    fn blob_ids(&self) -> Vec<BlobId> {
        (0..self.blobs.len() as u64).map(BlobId::new).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_append_read() {
        let mut s = MemBlobStore::new();
        let b = s.create().unwrap();
        assert!(s.is_empty(b).unwrap());
        let span = s.append(b, b"time-based media").unwrap();
        assert_eq!(span, ByteSpan::new(0, 16));
        assert_eq!(s.len(b).unwrap(), 16);
        assert_eq!(s.read(b, ByteSpan::new(5, 5)).unwrap(), b"based");
        assert_eq!(s.read_all(b).unwrap(), b"time-based media");
    }

    #[test]
    fn reads_cross_extent_boundaries() {
        let mut s = MemBlobStore::with_extent_size(4);
        let b = s.create().unwrap();
        s.append(b, b"abcdefghij").unwrap();
        assert_eq!(s.extent_count(b).unwrap(), 3);
        // Span [2, 9) crosses two boundaries.
        assert_eq!(s.read(b, ByteSpan::new(2, 7)).unwrap(), b"cdefghi");
        assert_eq!(s.read_all(b).unwrap(), b"abcdefghij");
    }

    #[test]
    fn appends_fill_partial_extents() {
        let mut s = MemBlobStore::with_extent_size(4);
        let b = s.create().unwrap();
        s.append(b, b"ab").unwrap();
        s.append(b, b"cdef").unwrap();
        assert_eq!(s.extent_count(b).unwrap(), 2);
        assert_eq!(s.read_all(b).unwrap(), b"abcdef");
    }

    #[test]
    fn out_of_bounds_read_rejected() {
        let mut s = MemBlobStore::new();
        let b = s.create().unwrap();
        s.append(b, b"abc").unwrap();
        let err = s.read(b, ByteSpan::new(1, 5)).unwrap_err();
        assert!(matches!(err, BlobError::OutOfBounds { blob_len: 3, .. }));
    }

    #[test]
    fn unknown_blob_rejected() {
        let s = MemBlobStore::new();
        assert!(matches!(s.len(BlobId::new(9)), Err(BlobError::NotFound(_))));
        assert!(!s.contains(BlobId::new(9)));
    }

    #[test]
    fn multiple_blobs_independent() {
        let mut s = MemBlobStore::new();
        let a = s.create().unwrap();
        let b = s.create().unwrap();
        s.append(a, b"aaa").unwrap();
        s.append(b, b"bb").unwrap();
        assert_eq!(s.len(a).unwrap(), 3);
        assert_eq!(s.len(b).unwrap(), 2);
        assert_eq!(s.blob_ids(), vec![a, b]);
        assert_eq!(s.total_bytes(), 5);
    }

    #[test]
    fn empty_append_and_empty_read() {
        let mut s = MemBlobStore::new();
        let b = s.create().unwrap();
        let span = s.append(b, b"").unwrap();
        assert!(span.is_empty());
        assert_eq!(s.read(b, ByteSpan::new(0, 0)).unwrap(), Vec::<u8>::new());
    }
}
