//! Error type for BLOB storage.

use std::fmt;
use tbm_core::BlobId;

/// Errors raised by BLOB stores.
#[derive(Debug)]
pub enum BlobError {
    /// The referenced BLOB does not exist in the store.
    NotFound(BlobId),
    /// A read addressed bytes beyond the BLOB's current length.
    OutOfBounds {
        /// The BLOB addressed.
        blob: BlobId,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// The BLOB's actual length.
        blob_len: u64,
    },
    /// An underlying I/O failure (file-backed stores).
    Io(std::io::Error),
}

impl fmt::Display for BlobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlobError::NotFound(id) => write!(f, "{id} not found"),
            BlobError::OutOfBounds {
                blob,
                offset,
                len,
                blob_len,
            } => write!(
                f,
                "read [{offset}, {}) out of bounds for {blob} of length {blob_len}",
                offset + len
            ),
            BlobError::Io(e) => write!(f, "blob I/O error: {e}"),
        }
    }
}

impl std::error::Error for BlobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BlobError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BlobError {
    fn from(e: std::io::Error) -> BlobError {
        BlobError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = BlobError::NotFound(BlobId::new(3));
        assert_eq!(e.to_string(), "blob:3 not found");
        let e = BlobError::OutOfBounds {
            blob: BlobId::new(1),
            offset: 10,
            len: 5,
            blob_len: 12,
        };
        assert!(e.to_string().contains("[10, 15)"));
        assert!(e.to_string().contains("length 12"));
    }
}
