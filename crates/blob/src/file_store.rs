//! File-backed BLOB store: one file per BLOB under a directory.

use crate::{BlobError, BlobStore, ByteSpan};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use tbm_core::BlobId;

/// A [`BlobStore`] persisting each BLOB as `<dir>/<id>.blob`.
///
/// Appends go through a buffered writer per active BLOB; reads reopen the
/// file and seek. This is intentionally simple — the paper treats BLOB
/// layout as "a performance issue and not directly relevant to data
/// modeling" — but it is a real, durable store usable by `tbm-db` for
/// persistence and by benchmarks for measuring I/O-bound access patterns.
#[derive(Debug)]
pub struct FileBlobStore {
    dir: PathBuf,
    lens: Vec<u64>,
    open_report: OpenReport,
}

/// Why a file in the store directory was not adopted by [`FileBlobStore::open`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum SkipReason {
    /// A `*.blob` file whose stem is not a decimal id (e.g. `x.blob`).
    NonNumericName,
    /// A numeric `*.blob` file beyond a hole in the id sequence; adoption
    /// stops at the first missing id, so this file's bytes are unreachable.
    AfterHole {
        /// The first missing id — the hole that stopped adoption.
        missing_id: u64,
    },
}

/// What [`FileBlobStore::open`] adopted and what it had to skip.
///
/// A hole in the id sequence (say `0.blob`, `1.blob`, `3.blob`) means some
/// BLOB file was lost or the directory was tampered with; the store adopts
/// the dense prefix (`0`, `1`) but — rather than silently truncating the id
/// space — records every skipped file here so callers can alert, salvage, or
/// refuse to proceed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// Number of BLOBs adopted (ids `0..adopted`).
    pub adopted: usize,
    /// Files present in the directory but not adopted, with reasons.
    pub skipped: Vec<(String, SkipReason)>,
}

impl OpenReport {
    /// `true` if every `*.blob` file in the directory was adopted.
    pub fn is_clean(&self) -> bool {
        self.skipped.is_empty()
    }
}

impl FileBlobStore {
    /// Opens (or creates) a store rooted at `dir`. Existing `*.blob` files
    /// with numeric names are adopted in id order; files that cannot be
    /// adopted (non-numeric names, or ids beyond a hole in the sequence) are
    /// listed in [`FileBlobStore::open_report`] rather than silently ignored.
    pub fn open(dir: impl AsRef<Path>) -> Result<FileBlobStore, BlobError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut ids: Vec<(u64, u64, String)> = Vec::new(); // (id, len, name)
        let mut skipped: Vec<(String, SkipReason)> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(stem) = name.strip_suffix(".blob") {
                if let Ok(id) = stem.parse::<u64>() {
                    ids.push((id, entry.metadata()?.len(), name));
                } else {
                    skipped.push((name, SkipReason::NonNumericName));
                }
            }
        }
        ids.sort_unstable_by_key(|(id, _, _)| *id);
        // Adopt a dense prefix; a hole means external tampering or data loss,
        // so everything past it is unreachable — but reported, not hidden.
        let mut lens = Vec::new();
        let mut hole: Option<u64> = None;
        for (expect, (id, len, name)) in ids.into_iter().enumerate() {
            match hole {
                None if id == expect as u64 => lens.push(len),
                None => {
                    let missing_id = expect as u64;
                    hole = Some(missing_id);
                    skipped.push((name, SkipReason::AfterHole { missing_id }));
                }
                Some(missing_id) => {
                    skipped.push((name, SkipReason::AfterHole { missing_id }));
                }
            }
        }
        skipped.sort();
        let open_report = OpenReport {
            adopted: lens.len(),
            skipped,
        };
        Ok(FileBlobStore {
            dir,
            lens,
            open_report,
        })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What [`FileBlobStore::open`] adopted and skipped.
    pub fn open_report(&self) -> &OpenReport {
        &self.open_report
    }

    fn path(&self, blob: BlobId) -> PathBuf {
        self.dir.join(format!("{}.blob", blob.raw()))
    }

    fn check(&self, blob: BlobId) -> Result<(), BlobError> {
        if (blob.raw() as usize) < self.lens.len() {
            Ok(())
        } else {
            Err(BlobError::NotFound(blob))
        }
    }
}

impl BlobStore for FileBlobStore {
    fn create(&mut self) -> Result<BlobId, BlobError> {
        let id = BlobId::new(self.lens.len() as u64);
        File::create(self.path(id))?;
        self.lens.push(0);
        Ok(id)
    }

    fn append(&mut self, blob: BlobId, data: &[u8]) -> Result<ByteSpan, BlobError> {
        self.check(blob)?;
        let mut f = OpenOptions::new().append(true).open(self.path(blob))?;
        f.write_all(data)?;
        let offset = self.lens[blob.raw() as usize];
        self.lens[blob.raw() as usize] = offset + data.len() as u64;
        Ok(ByteSpan::new(offset, data.len() as u64))
    }

    fn read_into(&self, blob: BlobId, span: ByteSpan, buf: &mut [u8]) -> Result<(), BlobError> {
        assert_eq!(
            buf.len() as u64,
            span.len,
            "buffer length must equal span length"
        );
        self.check(blob)?;
        let blob_len = self.lens[blob.raw() as usize];
        if span.end() > blob_len {
            return Err(BlobError::OutOfBounds {
                blob,
                offset: span.offset,
                len: span.len,
                blob_len,
            });
        }
        let mut f = File::open(self.path(blob))?;
        f.seek(SeekFrom::Start(span.offset))?;
        f.read_exact(buf)?;
        Ok(())
    }

    fn len(&self, blob: BlobId) -> Result<u64, BlobError> {
        self.check(blob)?;
        Ok(self.lens[blob.raw() as usize])
    }

    fn contains(&self, blob: BlobId) -> bool {
        (blob.raw() as usize) < self.lens.len()
    }

    fn blob_ids(&self) -> Vec<BlobId> {
        (0..self.lens.len() as u64).map(BlobId::new).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tbm-blob-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_append_read_roundtrip() {
        let dir = temp_dir("roundtrip");
        let mut s = FileBlobStore::open(&dir).unwrap();
        let b = s.create().unwrap();
        let s1 = s.append(b, b"hello ").unwrap();
        let s2 = s.append(b, b"disk").unwrap();
        assert_eq!(s1, ByteSpan::new(0, 6));
        assert_eq!(s2, ByteSpan::new(6, 4));
        assert_eq!(s.read_all(b).unwrap(), b"hello disk");
        assert_eq!(s.read(b, ByteSpan::new(6, 4)).unwrap(), b"disk");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_adopts_existing_blobs() {
        let dir = temp_dir("reopen");
        {
            let mut s = FileBlobStore::open(&dir).unwrap();
            let a = s.create().unwrap();
            let b = s.create().unwrap();
            s.append(a, b"aaa").unwrap();
            s.append(b, b"bbbb").unwrap();
        }
        let s = FileBlobStore::open(&dir).unwrap();
        assert_eq!(s.blob_ids().len(), 2);
        assert_eq!(s.len(BlobId::new(0)).unwrap(), 3);
        assert_eq!(s.len(BlobId::new(1)).unwrap(), 4);
        assert_eq!(s.read_all(BlobId::new(1)).unwrap(), b"bbbb");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_reports_holes_and_foreign_files() {
        let dir = temp_dir("holes");
        {
            let mut s = FileBlobStore::open(&dir).unwrap();
            for _ in 0..4 {
                s.create().unwrap();
            }
            s.append(BlobId::new(3), b"tail").unwrap();
        }
        // Punch a hole at id 2 and drop in a foreign file.
        std::fs::remove_file(dir.join("2.blob")).unwrap();
        std::fs::write(dir.join("extra.blob"), b"??").unwrap();

        let s = FileBlobStore::open(&dir).unwrap();
        assert_eq!(s.blob_ids().len(), 2); // dense prefix 0, 1
        let report = s.open_report();
        assert!(!report.is_clean());
        assert_eq!(report.adopted, 2);
        assert_eq!(
            report.skipped,
            vec![
                (
                    "3.blob".to_string(),
                    SkipReason::AfterHole { missing_id: 2 }
                ),
                ("extra.blob".to_string(), SkipReason::NonNumericName),
            ]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clean_open_has_empty_report() {
        let dir = temp_dir("clean");
        {
            let mut s = FileBlobStore::open(&dir).unwrap();
            s.create().unwrap();
        }
        let s = FileBlobStore::open(&dir).unwrap();
        assert!(s.open_report().is_clean());
        assert_eq!(s.open_report().adopted, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_bounds_rejected() {
        let dir = temp_dir("oob");
        let mut s = FileBlobStore::open(&dir).unwrap();
        let b = s.create().unwrap();
        s.append(b, b"xy").unwrap();
        assert!(matches!(
            s.read(b, ByteSpan::new(0, 3)),
            Err(BlobError::OutOfBounds { .. })
        ));
        assert!(matches!(
            s.read(BlobId::new(5), ByteSpan::new(0, 1)),
            Err(BlobError::NotFound(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
