//! File-backed BLOB store: one file per BLOB under a directory.

use crate::{BlobError, BlobStore, ByteSpan};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use tbm_core::BlobId;

/// A [`BlobStore`] persisting each BLOB as `<dir>/<id>.blob`.
///
/// Appends go through a buffered writer per active BLOB; reads reopen the
/// file and seek. This is intentionally simple — the paper treats BLOB
/// layout as "a performance issue and not directly relevant to data
/// modeling" — but it is a real, durable store usable by `tbm-db` for
/// persistence and by benchmarks for measuring I/O-bound access patterns.
#[derive(Debug)]
pub struct FileBlobStore {
    dir: PathBuf,
    lens: Vec<u64>,
}

impl FileBlobStore {
    /// Opens (or creates) a store rooted at `dir`. Existing `*.blob` files
    /// with numeric names are adopted in id order.
    pub fn open(dir: impl AsRef<Path>) -> Result<FileBlobStore, BlobError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut ids: Vec<(u64, u64)> = Vec::new(); // (id, len)
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".blob") {
                if let Ok(id) = stem.parse::<u64>() {
                    ids.push((id, entry.metadata()?.len()));
                }
            }
        }
        ids.sort_unstable();
        // Adopt a dense prefix; ignore holes (a hole would mean external
        // tampering — treat subsequent files as foreign).
        let mut lens = Vec::new();
        for (expect, (id, len)) in ids.into_iter().enumerate() {
            if id != expect as u64 {
                break;
            }
            lens.push(len);
        }
        Ok(FileBlobStore { dir, lens })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, blob: BlobId) -> PathBuf {
        self.dir.join(format!("{}.blob", blob.raw()))
    }

    fn check(&self, blob: BlobId) -> Result<(), BlobError> {
        if (blob.raw() as usize) < self.lens.len() {
            Ok(())
        } else {
            Err(BlobError::NotFound(blob))
        }
    }
}

impl BlobStore for FileBlobStore {
    fn create(&mut self) -> Result<BlobId, BlobError> {
        let id = BlobId::new(self.lens.len() as u64);
        File::create(self.path(id))?;
        self.lens.push(0);
        Ok(id)
    }

    fn append(&mut self, blob: BlobId, data: &[u8]) -> Result<ByteSpan, BlobError> {
        self.check(blob)?;
        let mut f = OpenOptions::new().append(true).open(self.path(blob))?;
        f.write_all(data)?;
        let offset = self.lens[blob.raw() as usize];
        self.lens[blob.raw() as usize] = offset + data.len() as u64;
        Ok(ByteSpan::new(offset, data.len() as u64))
    }

    fn read_into(&self, blob: BlobId, span: ByteSpan, buf: &mut [u8]) -> Result<(), BlobError> {
        assert_eq!(
            buf.len() as u64,
            span.len,
            "buffer length must equal span length"
        );
        self.check(blob)?;
        let blob_len = self.lens[blob.raw() as usize];
        if span.end() > blob_len {
            return Err(BlobError::OutOfBounds {
                blob,
                offset: span.offset,
                len: span.len,
                blob_len,
            });
        }
        let mut f = File::open(self.path(blob))?;
        f.seek(SeekFrom::Start(span.offset))?;
        f.read_exact(buf)?;
        Ok(())
    }

    fn len(&self, blob: BlobId) -> Result<u64, BlobError> {
        self.check(blob)?;
        Ok(self.lens[blob.raw() as usize])
    }

    fn contains(&self, blob: BlobId) -> bool {
        (blob.raw() as usize) < self.lens.len()
    }

    fn blob_ids(&self) -> Vec<BlobId> {
        (0..self.lens.len() as u64).map(BlobId::new).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tbm-blob-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_append_read_roundtrip() {
        let dir = temp_dir("roundtrip");
        let mut s = FileBlobStore::open(&dir).unwrap();
        let b = s.create().unwrap();
        let s1 = s.append(b, b"hello ").unwrap();
        let s2 = s.append(b, b"disk").unwrap();
        assert_eq!(s1, ByteSpan::new(0, 6));
        assert_eq!(s2, ByteSpan::new(6, 4));
        assert_eq!(s.read_all(b).unwrap(), b"hello disk");
        assert_eq!(s.read(b, ByteSpan::new(6, 4)).unwrap(), b"disk");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_adopts_existing_blobs() {
        let dir = temp_dir("reopen");
        {
            let mut s = FileBlobStore::open(&dir).unwrap();
            let a = s.create().unwrap();
            let b = s.create().unwrap();
            s.append(a, b"aaa").unwrap();
            s.append(b, b"bbbb").unwrap();
        }
        let s = FileBlobStore::open(&dir).unwrap();
        assert_eq!(s.blob_ids().len(), 2);
        assert_eq!(s.len(BlobId::new(0)).unwrap(), 3);
        assert_eq!(s.len(BlobId::new(1)).unwrap(), 4);
        assert_eq!(s.read_all(BlobId::new(1)).unwrap(), b"bbbb");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_bounds_rejected() {
        let dir = temp_dir("oob");
        let mut s = FileBlobStore::open(&dir).unwrap();
        let b = s.create().unwrap();
        s.append(b, b"xy").unwrap();
        assert!(matches!(
            s.read(b, ByteSpan::new(0, 3)),
            Err(BlobError::OutOfBounds { .. })
        ));
        assert!(matches!(
            s.read(BlobId::new(5), ByteSpan::new(0, 1)),
            Err(BlobError::NotFound(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
