//! The BLOB store interface (Definition 4).

use crate::{BlobError, ByteSpan};
use tbm_core::BlobId;
use tbm_time::TimePoint;

/// Caller-side context for a deadline-aware, verifying read.
///
/// Plain stores only look at `attempt`; tiered stores
/// ([`crate::TieredBlobStore`]) use the deadline slack to decide whether a
/// slow tier must be hedged against a faster one, and the expected checksum
/// to verify-and-repair corrupted tiers in place.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadCtx {
    /// Retry attempt number (0 = first try).
    pub attempt: u32,
    /// Microseconds of slack left before the caller's playback deadline, if
    /// the caller knows it. `None` means "no deadline pressure".
    pub deadline_slack_us: Option<u64>,
    /// Expected CRC-32 of the span's bytes, if recorded at capture. Lets a
    /// multi-tier store detect per-tier corruption and repair it from a
    /// sibling tier before the bytes ever reach the caller.
    pub expected_crc: Option<u32>,
}

impl ReadCtx {
    /// A context carrying only the retry attempt number.
    pub fn attempt(attempt: u32) -> ReadCtx {
        ReadCtx {
            attempt,
            ..ReadCtx::default()
        }
    }
}

/// Definition 4's interface: applications can *read* and *append*; byte-span
/// insertion and deletion are intentionally absent (non-destructive editing
/// happens at the derivation layer).
///
/// `Send` is a supertrait: the parallel shard pool moves whole servers —
/// catalog, store and all — across worker threads between deterministic
/// tick barriers, so every store must be movable. No store is required to
/// be `Sync`; each shard's store is only ever touched by the one worker
/// currently running that shard.
pub trait BlobStore: Send {
    /// Creates a new, empty BLOB and returns its id.
    fn create(&mut self) -> Result<BlobId, BlobError>;

    /// Appends bytes to a BLOB, returning the span the bytes now occupy.
    ///
    /// The returned span is what interpretation records as the element's
    /// `blobPlacement`.
    fn append(&mut self, blob: BlobId, data: &[u8]) -> Result<ByteSpan, BlobError>;

    /// Reads the bytes of `span` into a fresh buffer.
    fn read(&self, blob: BlobId, span: ByteSpan) -> Result<Vec<u8>, BlobError> {
        let mut buf = vec![0u8; span.len as usize];
        self.read_into(blob, span, &mut buf)?;
        Ok(buf)
    }

    /// Reads the bytes of `span` into `buf` (which must be `span.len` long).
    fn read_into(&self, blob: BlobId, span: ByteSpan, buf: &mut [u8]) -> Result<(), BlobError>;

    /// Like [`BlobStore::read_into`], carrying the caller's retry attempt
    /// number (0 = first try). Plain stores ignore it; fault-injecting
    /// decorators use it to let transient faults clear across retries.
    fn read_into_attempt(
        &self,
        blob: BlobId,
        span: ByteSpan,
        buf: &mut [u8],
        attempt: u32,
    ) -> Result<(), BlobError> {
        let _ = attempt;
        self.read_into(blob, span, buf)
    }

    /// Like [`BlobStore::read_into_attempt`], carrying the full read
    /// context. Plain stores see only the attempt number; tiered stores use
    /// the deadline slack for hedging and the expected checksum for
    /// verify-and-repair.
    fn read_into_ctx(
        &self,
        blob: BlobId,
        span: ByteSpan,
        buf: &mut [u8],
        ctx: &ReadCtx,
    ) -> Result<(), BlobError> {
        self.read_into_attempt(blob, span, buf, ctx.attempt)
    }

    /// Takes (and resets) any accumulated per-read cost hint, in
    /// microseconds — extra service time (added latency, device stalls) the
    /// store wants charged to the reads since the last drain. Plain stores
    /// report 0.
    fn drain_cost_hint_us(&self) -> u64 {
        0
    }

    /// Takes (and resets) the *failover* portion of the cost hint, in
    /// microseconds: time spent probing broken tiers, hedging against a
    /// deadline, or falling back after a tier fault. Always a subset of
    /// [`BlobStore::drain_cost_hint_us`] (drain the total first, then this).
    /// Plain stores report 0.
    fn drain_failover_hint_us(&self) -> u64 {
        0
    }

    /// Takes (and resets) the count of reads since the last drain that
    /// required a cross-tier repair (bytes failed verification on one tier
    /// and were re-materialized from a sibling). Plain stores report 0.
    fn drain_repairs(&self) -> u64 {
        0
    }

    /// Advances the store's simulated clock. Tiered stores use it to run
    /// circuit-breaker cooldowns in simulated time; plain stores ignore it.
    fn set_sim_now(&self, now: TimePoint) {
        let _ = now;
    }

    /// Current health of the storage path, as a percentage in `1..=100`.
    ///
    /// Admission control derates the storage bandwidth it is willing to
    /// commit by this factor. Plain stores are always fully healthy; tiered
    /// stores report the fraction of tiers whose circuit breaker is closed.
    fn health_percent(&self) -> u8 {
        100
    }

    /// The BLOB's current length in bytes.
    fn len(&self, blob: BlobId) -> Result<u64, BlobError>;

    /// `true` if the BLOB currently holds no bytes.
    fn is_empty(&self, blob: BlobId) -> Result<bool, BlobError> {
        Ok(self.len(blob)? == 0)
    }

    /// Whether the store currently holds a BLOB with this id.
    fn contains(&self, blob: BlobId) -> bool;

    /// Ids of all BLOBs in the store, in creation order.
    fn blob_ids(&self) -> Vec<BlobId>;

    /// Reads an entire BLOB.
    fn read_all(&self, blob: BlobId) -> Result<Vec<u8>, BlobError> {
        let len = self.len(blob)?;
        self.read(blob, ByteSpan::new(0, len))
    }
}

/// A convenience cursor for capture-time streaming appends to one BLOB.
///
/// Capture pipelines (e.g. the Fig. 2 digitization example) append encoded
/// frame after encoded frame; the writer tracks placements so the
/// interpretation tables can be built as the BLOB is created — the paper
/// recommends the interpretation "is built up as the BLOB is captured or
/// created and then permanently associated with the BLOB".
#[derive(Debug)]
pub struct BlobWriter<'a, S: BlobStore + ?Sized> {
    store: &'a mut S,
    blob: BlobId,
    written: u64,
}

impl<'a, S: BlobStore + ?Sized> BlobWriter<'a, S> {
    /// Starts writing at the current end of `blob`.
    pub fn new(store: &'a mut S, blob: BlobId) -> Result<BlobWriter<'a, S>, BlobError> {
        let written = store.len(blob)?;
        Ok(BlobWriter {
            store,
            blob,
            written,
        })
    }

    /// The BLOB being written.
    pub fn blob(&self) -> BlobId {
        self.blob
    }

    /// Bytes written so far (including pre-existing content).
    pub fn position(&self) -> u64 {
        self.written
    }

    /// Appends `data`, returning its placement span.
    pub fn write(&mut self, data: &[u8]) -> Result<ByteSpan, BlobError> {
        let span = self.store.append(self.blob, data)?;
        self.written = span.end();
        Ok(span)
    }

    /// Appends `len` padding bytes (value 0), returning their span.
    ///
    /// Models the paper's CD-I-style padding: "storage units may be padded
    /// with unused data to match storage transfer rates to media data rates".
    ///
    /// Zeros are appended in bounded chunks so padding a multi-GB span never
    /// allocates a buffer of that size.
    pub fn pad(&mut self, len: u64) -> Result<ByteSpan, BlobError> {
        const CHUNK: u64 = 64 * 1024;
        let start = self.written;
        let zeros = vec![0u8; CHUNK.min(len) as usize];
        let mut remaining = len;
        while remaining > 0 {
            let n = CHUNK.min(remaining) as usize;
            self.write(&zeros[..n])?;
            remaining -= n as u64;
        }
        Ok(ByteSpan::new(start, len))
    }

    /// Pads with zeros until the BLOB length is a multiple of `alignment`.
    pub fn align_to(&mut self, alignment: u64) -> Result<ByteSpan, BlobError> {
        let rem = self.written % alignment;
        if rem == 0 {
            Ok(ByteSpan::new(self.written, 0))
        } else {
            self.pad(alignment - rem)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemBlobStore;

    #[test]
    fn writer_tracks_placements() {
        let mut store = MemBlobStore::new();
        let blob = store.create().unwrap();
        let mut w = BlobWriter::new(&mut store, blob).unwrap();
        let a = w.write(b"hello").unwrap();
        let b = w.write(b"world").unwrap();
        assert_eq!(a, ByteSpan::new(0, 5));
        assert_eq!(b, ByteSpan::new(5, 5));
        assert_eq!(w.position(), 10);
        assert_eq!(store.read(blob, a).unwrap(), b"hello");
        assert_eq!(store.read(blob, b).unwrap(), b"world");
    }

    #[test]
    fn writer_resumes_at_end() {
        let mut store = MemBlobStore::new();
        let blob = store.create().unwrap();
        store.append(blob, b"abc").unwrap();
        let w = BlobWriter::new(&mut store, blob).unwrap();
        assert_eq!(w.position(), 3);
    }

    #[test]
    fn pad_spans_multiple_chunks() {
        // Larger than the 64 KiB chunk size: the pad must still come back as
        // one contiguous span with the full length.
        let mut store = MemBlobStore::new();
        let blob = store.create().unwrap();
        let mut w = BlobWriter::new(&mut store, blob).unwrap();
        w.write(b"hdr").unwrap();
        let len = 64 * 1024 * 2 + 777;
        let span = w.pad(len).unwrap();
        assert_eq!(span, ByteSpan::new(3, len));
        assert_eq!(w.position(), 3 + len);
        // Zero-length pad is a valid empty span at the cursor.
        assert_eq!(w.pad(0).unwrap(), ByteSpan::new(3 + len, 0));
        assert_eq!(store.len(blob).unwrap(), 3 + len);
        let tail = store.read(blob, ByteSpan::new(3 + len - 10, 10)).unwrap();
        assert!(tail.iter().all(|&b| b == 0));
    }

    #[test]
    fn padding_and_alignment() {
        let mut store = MemBlobStore::new();
        let blob = store.create().unwrap();
        let mut w = BlobWriter::new(&mut store, blob).unwrap();
        w.write(b"xyz").unwrap();
        let pad = w.align_to(8).unwrap();
        assert_eq!(pad, ByteSpan::new(3, 5));
        assert_eq!(w.position(), 8);
        // Already aligned: zero-length pad.
        assert_eq!(w.align_to(8).unwrap(), ByteSpan::new(8, 0));
        let padded = store.read(blob, pad).unwrap();
        assert!(padded.iter().all(|&b| b == 0));
    }
}
