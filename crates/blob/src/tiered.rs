//! Tiered storage with failover, circuit breakers and self-healing reads.
//!
//! [`TieredBlobStore`] stacks any number of [`BlobStore`]s fastest-first —
//! canonically memory over file over "remote" (a wrapped store with seeded
//! injected latency and a [`FaultPlan`](crate::FaultPlan)) — behind the
//! ordinary store interface, so the interpretation layer and the server
//! above it never learn how many backends exist. Writes go through to every
//! tier (spans stay identical across the stack); reads walk the stack under
//! four policies:
//!
//! * **Circuit breakers.** Each tier carries a breaker: *closed* →
//!   *open* after `fault_threshold` consecutive faults → *half-open* probe
//!   once `cooldown_us` of **simulated** time has passed (the driver
//!   advances the clock via [`BlobStore::set_sim_now`]). An open breaker
//!   takes the tier out of the read path, so a blacked-out backend costs
//!   at most `fault_threshold` timeouts before traffic routes around it.
//! * **Deadline-aware hedging.** A read that would blow its playback
//!   deadline on the selected tier (its estimated latency exceeds
//!   [`ReadCtx::deadline_slack_us`]) is hedged against the next tier up
//!   *even if that tier's breaker is open*: a successful probe closes the
//!   breaker early — self-healing bounds tail lateness instead of waiting
//!   out the cooldown on the slow path.
//! * **Verify-and-repair.** When the caller supplies
//!   [`ReadCtx::expected_crc`], bytes are checksummed per tier. A tier that
//!   fails verification is **repaired**: the span is re-materialized from
//!   the first healthy tier whose bytes verify, and the repaired copy
//!   serves all future reads of that span on the damaged tier. No read is
//!   ever served unverified when a checksum is available.
//! * **Promotion / demotion.** Tiers with a residency budget act as LRU
//!   caches of the stack below: verified reads from a slower tier promote
//!   the span into faster budgeted tiers, appends make new spans resident,
//!   and the byte budget demotes the least-recently-used spans.
//!
//! All decisions are pure functions of the request sequence, the simulated
//! clock and the wrapped stores' seeds — same-seed runs are byte-identical,
//! including through outages, hedges and repairs. Scripted outage
//! ([`TieredBlobStore::with_outage`]) and brownout
//! ([`TieredBlobStore::with_brownout`]) windows make "the remote goes dark
//! mid-run" a reproducible experiment rather than an anecdote.

use crate::{BlobError, BlobStore, ByteSpan, FaultPlan, FaultyBlobStore, MemBlobStore, ReadCtx};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use tbm_core::{crc32, BlobId};
use tbm_obs::{Category, SpanId, Tracer};
use tbm_time::{TimeDelta, TimePoint};

/// A `(blob, offset, len)` read address — the unit of residency, repair and
/// fault bookkeeping.
type Key = (u64, u64, u64);

/// Observable circuit-breaker state of one tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: reads flow to this tier.
    Closed,
    /// Tripped: the tier is out of the read path until its cooldown ends
    /// (or a deadline-pressed hedge probes it early).
    Open,
    /// Cooldown expired: the next read is a probe; success closes the
    /// breaker, failure re-arms it.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

#[derive(Debug, Clone, Copy)]
enum BState {
    Closed,
    Open { until: TimePoint },
    HalfOpen,
}

#[derive(Debug)]
struct Breaker {
    state: BState,
    consecutive: u32,
    threshold: u32,
    cooldown: TimeDelta,
    opens: u64,
    outage_span: SpanId,
}

impl Breaker {
    fn new(threshold: u32, cooldown_us: u64) -> Breaker {
        Breaker {
            state: BState::Closed,
            consecutive: 0,
            threshold: threshold.max(1),
            cooldown: TimeDelta::from_micros(cooldown_us as i64),
            opens: 0,
            outage_span: SpanId::NONE,
        }
    }

    /// Whether a regular (non-hedged) read may use this tier now. An open
    /// breaker whose cooldown has expired transitions to half-open and lets
    /// one probe through.
    fn allows(&mut self, now: TimePoint) -> bool {
        match self.state {
            BState::Closed | BState::HalfOpen => true,
            BState::Open { until } => {
                if now >= until {
                    self.state = BState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful read; returns `true` when this closed a
    /// previously open/half-open breaker (the tier just healed).
    fn on_success(&mut self) -> bool {
        let healed = !matches!(self.state, BState::Closed);
        self.state = BState::Closed;
        self.consecutive = 0;
        healed
    }

    /// Records a failed read; returns `true` when this newly tripped the
    /// breaker (closed → open). Failures while open or half-open re-arm the
    /// cooldown without counting another trip.
    fn on_failure(&mut self, now: TimePoint) -> bool {
        self.consecutive += 1;
        match self.state {
            BState::Closed => {
                if self.consecutive >= self.threshold {
                    self.state = BState::Open {
                        until: now + self.cooldown,
                    };
                    self.opens += 1;
                    return true;
                }
                false
            }
            BState::Open { .. } | BState::HalfOpen => {
                self.state = BState::Open {
                    until: now + self.cooldown,
                };
                false
            }
        }
    }

    fn state(&self) -> BreakerState {
        match self.state {
            BState::Closed => BreakerState::Closed,
            BState::Open { .. } => BreakerState::Open,
            BState::HalfOpen => BreakerState::HalfOpen,
        }
    }
}

/// Per-tier tuning: nominal latency, breaker thresholds and an optional
/// residency budget.
#[derive(Debug, Clone, Copy)]
pub struct TierConfig {
    /// Display name ("mem", "file", "remote", …) used in traces and stats.
    pub name: &'static str,
    /// Nominal per-read latency charged as a cost hint, in microseconds.
    pub read_latency_us: u64,
    /// Consecutive faults that trip the breaker.
    pub fault_threshold: u32,
    /// Breaker cooldown before a half-open probe, in simulated µs.
    pub cooldown_us: u64,
    /// LRU residency budget in bytes; `None` means the tier holds every
    /// span (a full backing tier rather than a cache tier).
    pub residency_budget: Option<u64>,
}

impl TierConfig {
    /// A full (unbudgeted) tier with the given name and nominal latency,
    /// a 3-fault breaker and a 20ms cooldown.
    pub fn new(name: &'static str, read_latency_us: u64) -> TierConfig {
        TierConfig {
            name,
            read_latency_us,
            fault_threshold: 3,
            cooldown_us: 20_000,
            residency_budget: None,
        }
    }

    /// Sets the breaker's fault threshold and cooldown.
    pub fn with_breaker(mut self, fault_threshold: u32, cooldown_us: u64) -> TierConfig {
        self.fault_threshold = fault_threshold.max(1);
        self.cooldown_us = cooldown_us;
        self
    }

    /// Makes the tier an LRU cache of the tiers below it, holding at most
    /// `bytes` of resident spans.
    pub fn with_residency_budget(mut self, bytes: u64) -> TierConfig {
        self.residency_budget = Some(bytes);
        self
    }
}

/// LRU residency bookkeeping for a budgeted tier.
#[derive(Debug, Default)]
struct Residency {
    used: u64,
    tick: u64,
    map: HashMap<Key, (u64, u64)>, // key -> (recency tick, len)
    lru: BTreeMap<u64, Key>,       // recency tick -> key
}

impl Residency {
    fn contains(&self, key: &Key) -> bool {
        self.map.contains_key(key)
    }

    /// Refreshes recency; `true` if the span was resident.
    fn touch(&mut self, key: Key) -> bool {
        let Some((tick, len)) = self.map.get(&key).copied() else {
            return false;
        };
        self.lru.remove(&tick);
        self.tick += 1;
        self.map.insert(key, (self.tick, len));
        self.lru.insert(self.tick, key);
        true
    }

    /// Makes the span resident, demoting LRU spans past the budget.
    /// Returns the number of demotions.
    fn insert(&mut self, key: Key, len: u64, budget: u64) -> u64 {
        if self.touch(key) {
            return 0;
        }
        if len > budget {
            return 0; // would evict the whole tier for one span
        }
        self.tick += 1;
        self.map.insert(key, (self.tick, len));
        self.lru.insert(self.tick, key);
        self.used += len;
        let mut demoted = 0;
        while self.used > budget {
            let (&tick, &victim) = self.lru.iter().next().expect("used > 0 implies entries");
            self.lru.remove(&tick);
            let (_, vlen) = self.map.remove(&victim).expect("lru and map stay in sync");
            self.used -= vlen;
            demoted += 1;
        }
        demoted
    }
}

struct Tier {
    config: TierConfig,
    store: Box<dyn BlobStore>,
    breaker: RefCell<Breaker>,
    resident: RefCell<Residency>,
    patches: RefCell<HashMap<Key, Vec<u8>>>,
    outages: Vec<(TimePoint, TimePoint)>,
    brownouts: Vec<(TimePoint, TimePoint, u64)>,
    serves: Cell<u64>,
    attempts: Cell<u64>,
    faults: Cell<u64>,
    crc_failures: Cell<u64>,
    repairs: Cell<u64>,
    hedged_probes: Cell<u64>,
    promotions: Cell<u64>,
    demotions: Cell<u64>,
}

impl Tier {
    fn in_outage(&self, now: TimePoint) -> bool {
        self.outages
            .iter()
            .any(|&(from, until)| from <= now && now < until)
    }

    fn brownout_extra_us(&self, now: TimePoint) -> u64 {
        self.brownouts
            .iter()
            .filter(|&&(from, until, _)| from <= now && now < until)
            .map(|&(_, _, extra)| extra)
            .sum()
    }

    /// What a read from this tier is expected to cost right now, in µs.
    fn est_latency_us(&self, now: TimePoint) -> u64 {
        self.config.read_latency_us + self.brownout_extra_us(now)
    }

    /// Whether this tier can serve the span on the fast path: budgeted
    /// tiers only hold what residency (or a repair patch) says they hold.
    fn holds(&self, key: &Key, blob: BlobId) -> bool {
        if self.patches.borrow().contains_key(key) {
            return true;
        }
        match self.config.residency_budget {
            None => self.store.contains(blob),
            Some(_) => self.resident.borrow().contains(key),
        }
    }

    fn bump(counter: &Cell<u64>) {
        counter.set(counter.get() + 1);
    }
}

/// A point-in-time snapshot of one tier's counters and breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierStats {
    /// The tier's configured name.
    pub name: &'static str,
    /// Reads this tier served (verified where a checksum was given).
    pub serves: u64,
    /// Read attempts routed at this tier (including failed ones).
    pub attempts: u64,
    /// Failed attempts: I/O errors, outage timeouts and checksum failures.
    pub faults: u64,
    /// Attempts whose bytes failed checksum verification.
    pub crc_failures: u64,
    /// Spans re-materialized *into* this tier from a healthy sibling.
    pub repairs: u64,
    /// Times the breaker tripped closed → open.
    pub breaker_opens: u64,
    /// Deadline-pressed probes sent at this tier while its breaker was open.
    pub hedged_probes: u64,
    /// Spans promoted into this tier's residency after a slower-tier read.
    pub promotions: u64,
    /// Spans demoted out of residency by the byte budget.
    pub demotions: u64,
    /// Bytes currently resident (budgeted tiers; 0 for full tiers).
    pub resident_bytes: u64,
    /// Current breaker state.
    pub state: BreakerState,
}

/// A fastest-first stack of BLOB stores behind one [`BlobStore`] interface.
///
/// Reads walk the tiers that hold the span fastest-first, skipping tiers
/// whose circuit breaker is open (unless deadline pressure hedges a probe
/// or every holder is blocked, in which case the attempt is forced);
/// checksum-verified bytes repair any tier that returned corruption, and
/// budgeted tiers keep an LRU residency of promoted spans.
pub struct TieredBlobStore {
    tiers: Vec<Tier>,
    hedging: bool,
    promotion: bool,
    sim_now: Cell<TimePoint>,
    tracer: Tracer,
    cost_hint_us: Cell<u64>,
    failover_hint_us: Cell<u64>,
    repair_events: Cell<u64>,
    reads: Cell<u64>,
    failover_reads: Cell<u64>,
    hedged_reads: Cell<u64>,
}

impl fmt::Debug for TieredBlobStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("TieredBlobStore");
        for tier in &self.tiers {
            d.field(tier.config.name, &tier.breaker.borrow().state());
        }
        d.field("reads", &self.reads.get())
            .field("failover_reads", &self.failover_reads.get())
            .field("hedged_reads", &self.hedged_reads.get())
            .finish()
    }
}

impl Default for TieredBlobStore {
    fn default() -> Self {
        TieredBlobStore::new()
    }
}

impl TieredBlobStore {
    /// An empty stack; add tiers fastest-first with
    /// [`TieredBlobStore::with_tier`].
    pub fn new() -> TieredBlobStore {
        TieredBlobStore {
            tiers: Vec::new(),
            hedging: true,
            promotion: true,
            sim_now: Cell::new(TimePoint::ZERO),
            tracer: Tracer::disabled(),
            cost_hint_us: Cell::new(0),
            failover_hint_us: Cell::new(0),
            repair_events: Cell::new(0),
            reads: Cell::new(0),
            failover_reads: Cell::new(0),
            hedged_reads: Cell::new(0),
        }
    }

    /// The canonical three-tier demo stack: a budgeted in-memory cache tier
    /// over a full local tier over a full "remote" tier wrapping a
    /// [`FaultyBlobStore`] driven by `remote_plan`.
    pub fn mem_file_remote(remote_plan: FaultPlan, mem_budget: u64) -> TieredBlobStore {
        TieredBlobStore::new()
            .with_tier(
                TierConfig::new("mem", 20)
                    .with_breaker(4, 5_000)
                    .with_residency_budget(mem_budget),
                MemBlobStore::new(),
            )
            .with_tier(
                TierConfig::new("file", 150).with_breaker(4, 10_000),
                MemBlobStore::new(),
            )
            .with_tier(
                TierConfig::new("remote", 2_000).with_breaker(3, 20_000),
                FaultyBlobStore::new(MemBlobStore::new(), remote_plan),
            )
    }

    /// Appends a tier below the existing ones (tiers are fastest-first).
    ///
    /// Every tier must start in byte-identical state (normally: empty) —
    /// write-through appends keep spans aligned across the stack from then
    /// on.
    pub fn with_tier(mut self, config: TierConfig, store: impl BlobStore + 'static) -> Self {
        self.tiers.push(Tier {
            breaker: RefCell::new(Breaker::new(config.fault_threshold, config.cooldown_us)),
            config,
            store: Box::new(store),
            resident: RefCell::new(Residency::default()),
            patches: RefCell::new(HashMap::new()),
            outages: Vec::new(),
            brownouts: Vec::new(),
            serves: Cell::new(0),
            attempts: Cell::new(0),
            faults: Cell::new(0),
            crc_failures: Cell::new(0),
            repairs: Cell::new(0),
            hedged_probes: Cell::new(0),
            promotions: Cell::new(0),
            demotions: Cell::new(0),
        });
        self
    }

    /// Attaches a tracer: breaker trips become `tier.outage` spans, and
    /// failovers, hedges and repairs become instant events on the shared
    /// simulated timeline.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Enables or disables deadline-aware hedging (on by default). With it
    /// off, an open breaker is only re-probed after its full cooldown.
    pub fn with_hedging(mut self, hedging: bool) -> Self {
        self.hedging = hedging;
        self
    }

    /// Enables or disables read-through promotion into budgeted tiers
    /// (on by default).
    pub fn with_promotion(mut self, promotion: bool) -> Self {
        self.promotion = promotion;
        self
    }

    /// Scripts a blackout of tier `tier` over `[from, until)` in simulated
    /// time: every read attempt routed at it times out.
    pub fn with_outage(mut self, tier: usize, from: TimePoint, until: TimePoint) -> Self {
        self.tiers[tier].outages.push((from, until));
        self
    }

    /// Scripts a brownout of tier `tier` over `[from, until)`: reads still
    /// succeed but cost an extra `extra_us` microseconds each.
    pub fn with_brownout(
        mut self,
        tier: usize,
        from: TimePoint,
        until: TimePoint,
        extra_us: u64,
    ) -> Self {
        self.tiers[tier].brownouts.push((from, until, extra_us));
        self
    }

    /// Number of tiers in the stack.
    pub fn tier_count(&self) -> usize {
        self.tiers.len()
    }

    /// The current breaker state of tier `tier`, if it exists.
    pub fn breaker_state(&self, tier: usize) -> Option<BreakerState> {
        self.tiers.get(tier).map(|t| t.breaker.borrow().state())
    }

    /// Snapshots every tier's counters, fastest-first.
    pub fn tier_stats(&self) -> Vec<TierStats> {
        self.tiers
            .iter()
            .map(|t| TierStats {
                name: t.config.name,
                serves: t.serves.get(),
                attempts: t.attempts.get(),
                faults: t.faults.get(),
                crc_failures: t.crc_failures.get(),
                repairs: t.repairs.get(),
                breaker_opens: t.breaker.borrow().opens,
                hedged_probes: t.hedged_probes.get(),
                promotions: t.promotions.get(),
                demotions: t.demotions.get(),
                resident_bytes: t.resident.borrow().used,
                state: t.breaker.borrow().state(),
            })
            .collect()
    }

    /// Total reads served from a slower tier than the fastest holder (the
    /// stack's failover count).
    pub fn failover_reads(&self) -> u64 {
        self.failover_reads.get()
    }

    /// Total reads that won by hedging an open breaker under deadline
    /// pressure.
    pub fn hedged_reads(&self) -> u64 {
        self.hedged_reads.get()
    }

    fn charge(&self, us: u64, failover: bool) {
        self.cost_hint_us.set(self.cost_hint_us.get() + us);
        if failover {
            self.failover_hint_us.set(self.failover_hint_us.get() + us);
        }
    }

    fn event(&self, name: &'static str, attrs: Vec<(&'static str, tbm_obs::AttrValue)>) {
        self.tracer.event(
            name,
            Category::Tier,
            self.sim_now.get(),
            SpanId::NONE,
            None,
            attrs,
        );
    }

    /// One read attempt against one tier: outage gate, repair-patch
    /// overlay, the tier's own store, then checksum verification.
    fn attempt_tier(
        &self,
        ti: usize,
        blob: BlobId,
        span: ByteSpan,
        buf: &mut [u8],
        ctx: &ReadCtx,
        now: TimePoint,
    ) -> Result<u64, (BlobError, u64, bool)> {
        let tier = &self.tiers[ti];
        if tier.in_outage(now) {
            return Err((
                BlobError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!(
                        "tier '{}' is dark: read of {blob} timed out",
                        tier.config.name
                    ),
                )),
                0,
                false,
            ));
        }
        let key = (blob.raw(), span.offset, span.len);
        if let Some(patch) = tier.patches.borrow().get(&key) {
            if patch.len() == buf.len() {
                buf.copy_from_slice(patch);
                return Ok(0);
            }
        }
        match tier.store.read_into_attempt(blob, span, buf, ctx.attempt) {
            Err(e) => Err((e, tier.store.drain_cost_hint_us(), false)),
            Ok(()) => {
                let inner_hint = tier.store.drain_cost_hint_us();
                if let Some(expect) = ctx.expected_crc {
                    if crc32(buf) != expect {
                        return Err((
                            BlobError::Io(std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                format!(
                                    "tier '{}' failed checksum for {blob} at {}+{}",
                                    tier.config.name, span.offset, span.len
                                ),
                            )),
                            inner_hint,
                            true,
                        ));
                    }
                }
                Ok(inner_hint)
            }
        }
    }

    fn record_failure(&self, ti: usize, now: TimePoint, crc: bool) {
        let tier = &self.tiers[ti];
        Tier::bump(&tier.faults);
        if crc {
            Tier::bump(&tier.crc_failures);
        }
        let tripped = tier.breaker.borrow_mut().on_failure(now);
        if tripped {
            let span =
                self.tracer
                    .begin_span("tier.outage", Category::Tier, now, SpanId::NONE, None);
            self.tracer.attr(span, "tier", tier.config.name);
            tier.breaker.borrow_mut().outage_span = span;
            self.event(
                "tier.breaker_open",
                vec![
                    ("tier", tier.config.name.into()),
                    ("cooldown_us", tier.config.cooldown_us.into()),
                ],
            );
        }
    }

    fn record_success(&self, ti: usize, now: TimePoint) {
        let tier = &self.tiers[ti];
        Tier::bump(&tier.serves);
        let healed = tier.breaker.borrow_mut().on_success();
        if healed {
            let span = std::mem::replace(&mut tier.breaker.borrow_mut().outage_span, SpanId::NONE);
            self.tracer.end_span(span, now);
            self.event(
                "tier.breaker_close",
                vec![("tier", tier.config.name.into())],
            );
        }
    }

    /// The full tiered read: holder selection, breaker gating, hedging,
    /// fallback, verification, repair and promotion.
    fn tiered_read(
        &self,
        blob: BlobId,
        span: ByteSpan,
        buf: &mut [u8],
        ctx: &ReadCtx,
    ) -> Result<(), BlobError> {
        let now = self.sim_now.get();
        Tier::bump(&self.reads);
        let key = (blob.raw(), span.offset, span.len);

        // Fast-path holders: full tiers that contain the blob, budgeted
        // tiers with the span resident or patched. If residency filtered
        // everyone out, fall back to any tier that has the bytes at all.
        let mut holders: Vec<usize> = (0..self.tiers.len())
            .filter(|&i| self.tiers[i].holds(&key, blob))
            .collect();
        if holders.is_empty() {
            holders = (0..self.tiers.len())
                .filter(|&i| self.tiers[i].store.contains(blob))
                .collect();
        }
        let Some(&fastest_holder) = holders.first() else {
            return Err(BlobError::NotFound(blob));
        };

        let allowed: Vec<usize> = holders
            .iter()
            .copied()
            .filter(|&i| self.tiers[i].breaker.borrow_mut().allows(now))
            .collect();
        let forced = allowed.is_empty();
        let base_order = if forced { holders.clone() } else { allowed };
        let primary = base_order[0];

        // Deadline pressure: if the tier we are about to use cannot make
        // the deadline, probe faster breaker-blocked holders first.
        let mut hedged: Vec<usize> = Vec::new();
        if self.hedging && !forced {
            if let Some(slack) = ctx.deadline_slack_us {
                if self.tiers[primary].est_latency_us(now) > slack {
                    hedged = holders
                        .iter()
                        .copied()
                        .filter(|i| *i < primary && !base_order.contains(i))
                        .collect();
                }
            }
        }
        let try_order: Vec<usize> = hedged.iter().chain(base_order.iter()).copied().collect();

        let mut crc_failed: Vec<usize> = Vec::new();
        let mut last_err: Option<BlobError> = None;
        for &ti in &try_order {
            let tier = &self.tiers[ti];
            let is_hedge = hedged.contains(&ti);
            if is_hedge {
                Tier::bump(&tier.hedged_probes);
                self.event("tier.hedge", vec![("tier", tier.config.name.into())]);
            }
            Tier::bump(&tier.attempts);
            let est = tier.est_latency_us(now);
            match self.attempt_tier(ti, blob, span, buf, ctx, now) {
                Ok(inner_hint) => {
                    let failover = ti != fastest_holder;
                    self.charge(est + inner_hint, failover);
                    self.record_success(ti, now);
                    if is_hedge {
                        Tier::bump(&self.hedged_reads);
                    }
                    if failover {
                        Tier::bump(&self.failover_reads);
                        self.event(
                            "tier.failover",
                            vec![
                                ("from", self.tiers[fastest_holder].config.name.into()),
                                ("to", tier.config.name.into()),
                                ("blob", blob.raw().into()),
                                ("offset", span.offset.into()),
                            ],
                        );
                    }
                    if tier.config.residency_budget.is_some() {
                        tier.resident.borrow_mut().touch(key);
                    }
                    self.repair_and_promote(ti, key, span, buf, ctx, &crc_failed);
                    return Ok(());
                }
                Err((err, inner_hint, crc)) => {
                    self.charge(est + inner_hint, true);
                    self.record_failure(ti, now, crc);
                    if crc {
                        crc_failed.push(ti);
                    }
                    last_err = Some(err);
                }
            }
        }
        Err(last_err.unwrap_or(BlobError::NotFound(blob)))
    }

    /// After a verified read: re-materialize the span on tiers whose bytes
    /// failed checksum, and promote it into faster budgeted tiers.
    fn repair_and_promote(
        &self,
        served: usize,
        key: Key,
        span: ByteSpan,
        buf: &[u8],
        ctx: &ReadCtx,
        crc_failed: &[usize],
    ) {
        // Repair needs proof the bytes are good: only with a checksum.
        let verified = ctx.expected_crc.is_some();
        if verified && !crc_failed.is_empty() {
            for &ci in crc_failed {
                let tier = &self.tiers[ci];
                tier.patches.borrow_mut().insert(key, buf.to_vec());
                Tier::bump(&tier.repairs);
                self.event(
                    "tier.repair",
                    vec![
                        ("tier", tier.config.name.into()),
                        ("source", self.tiers[served].config.name.into()),
                        ("blob", key.0.into()),
                        ("offset", span.offset.into()),
                    ],
                );
            }
            self.repair_events.set(self.repair_events.get() + 1);
        }
        if self.promotion && verified {
            for ti in 0..served {
                let tier = &self.tiers[ti];
                let Some(budget) = tier.config.residency_budget else {
                    continue;
                };
                if crc_failed.contains(&ti) {
                    continue; // its own copy is bad; the patch already fixed it
                }
                let demoted = tier.resident.borrow_mut().insert(key, span.len, budget);
                if tier.resident.borrow().contains(&key) {
                    Tier::bump(&tier.promotions);
                }
                tier.demotions.set(tier.demotions.get() + demoted);
            }
        }
    }
}

impl BlobStore for TieredBlobStore {
    fn create(&mut self) -> Result<BlobId, BlobError> {
        let mut id = None;
        for tier in &mut self.tiers {
            let created = tier.store.create()?;
            debug_assert!(
                id.is_none() || id == Some(created),
                "tiers diverged on blob-id assignment"
            );
            id = Some(created);
        }
        id.ok_or(BlobError::Io(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            "tiered store has no tiers",
        )))
    }

    fn append(&mut self, blob: BlobId, data: &[u8]) -> Result<ByteSpan, BlobError> {
        let mut span = None;
        for tier in &mut self.tiers {
            let written = tier.store.append(blob, data)?;
            debug_assert!(
                span.is_none() || span == Some(written),
                "tiers diverged on span placement"
            );
            span = Some(written);
        }
        let span = span.ok_or(BlobError::NotFound(blob))?;
        // Fresh appends are hot: make them resident in budgeted tiers.
        let key = (blob.raw(), span.offset, span.len);
        for tier in &self.tiers {
            if let Some(budget) = tier.config.residency_budget {
                let demoted = tier.resident.borrow_mut().insert(key, span.len, budget);
                tier.demotions.set(tier.demotions.get() + demoted);
            }
        }
        Ok(span)
    }

    fn read_into(&self, blob: BlobId, span: ByteSpan, buf: &mut [u8]) -> Result<(), BlobError> {
        self.tiered_read(blob, span, buf, &ReadCtx::default())
    }

    fn read_into_attempt(
        &self,
        blob: BlobId,
        span: ByteSpan,
        buf: &mut [u8],
        attempt: u32,
    ) -> Result<(), BlobError> {
        self.tiered_read(blob, span, buf, &ReadCtx::attempt(attempt))
    }

    fn read_into_ctx(
        &self,
        blob: BlobId,
        span: ByteSpan,
        buf: &mut [u8],
        ctx: &ReadCtx,
    ) -> Result<(), BlobError> {
        self.tiered_read(blob, span, buf, ctx)
    }

    fn drain_cost_hint_us(&self) -> u64 {
        self.cost_hint_us.replace(0)
    }

    fn drain_failover_hint_us(&self) -> u64 {
        self.failover_hint_us.replace(0)
    }

    fn drain_repairs(&self) -> u64 {
        self.repair_events.replace(0)
    }

    fn set_sim_now(&self, now: TimePoint) {
        self.sim_now.set(now);
        self.tracer.set_now(now);
    }

    fn health_percent(&self) -> u8 {
        if self.tiers.is_empty() {
            return 100;
        }
        let closed = self
            .tiers
            .iter()
            .filter(|t| matches!(t.breaker.borrow().state(), BreakerState::Closed))
            .count();
        let pct = (closed * 100 / self.tiers.len()) as u8;
        pct.max((100 / self.tiers.len()) as u8).max(1)
    }

    fn len(&self, blob: BlobId) -> Result<u64, BlobError> {
        match self.tiers.last() {
            Some(t) => t.store.len(blob),
            None => Err(BlobError::NotFound(blob)),
        }
    }

    fn contains(&self, blob: BlobId) -> bool {
        self.tiers.last().is_some_and(|t| t.store.contains(blob))
    }

    fn blob_ids(&self) -> Vec<BlobId> {
        self.tiers
            .last()
            .map(|t| t.store.blob_ids())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_transient;

    fn t_us(us: i64) -> TimePoint {
        TimePoint::ZERO + TimeDelta::from_micros(us)
    }

    /// A two-tier stack (fast full tier over slow full tier) seeded with
    /// `n` 64-byte spans; returns the store, blob, spans and checksums.
    fn two_tier(n: u32) -> (TieredBlobStore, BlobId, Vec<ByteSpan>, Vec<u32>) {
        let mut store = TieredBlobStore::new()
            .with_tier(
                TierConfig::new("fast", 50).with_breaker(3, 10_000),
                MemBlobStore::new(),
            )
            .with_tier(
                TierConfig::new("slow", 1_000).with_breaker(3, 10_000),
                MemBlobStore::new(),
            );
        let blob = store.create().unwrap();
        let mut spans = Vec::new();
        let mut crcs = Vec::new();
        for i in 0..n {
            let data = vec![i as u8; 64];
            spans.push(store.append(blob, &data).unwrap());
            crcs.push(crc32(&data));
        }
        (store, blob, spans, crcs)
    }

    #[test]
    fn write_through_keeps_tiers_aligned_and_reads_prefer_fastest() {
        let (store, blob, spans, _) = two_tier(10);
        for (i, span) in spans.iter().enumerate() {
            assert_eq!(store.read(blob, *span).unwrap(), vec![i as u8; 64]);
        }
        let stats = store.tier_stats();
        assert_eq!(stats[0].serves, 10, "all reads hit the fast tier");
        assert_eq!(stats[1].serves, 0);
        assert_eq!(store.failover_reads(), 0);
        assert_eq!(store.drain_failover_hint_us(), 0);
        assert!(store.drain_cost_hint_us() >= 10 * 50);
        assert_eq!(store.len(blob).unwrap(), 640);
        assert!(store.contains(blob));
        assert_eq!(store.blob_ids(), vec![blob]);
    }

    #[test]
    fn outage_trips_breaker_fails_over_and_heals_after_cooldown() {
        let (store, blob, spans, _) = two_tier(10);
        let store = store.with_outage(0, t_us(0), t_us(50_000));
        let mut buf = vec![0u8; 64];

        // During the outage every read fails over to the slow tier; after
        // `fault_threshold` faults the fast tier stops being probed at all.
        for (i, span) in spans.iter().enumerate() {
            store.set_sim_now(t_us(i as i64 * 1_000));
            store.read_into(blob, *span, &mut buf).unwrap();
            assert_eq!(buf, vec![i as u8; 64]);
        }
        assert_eq!(store.breaker_state(0), Some(BreakerState::Open));
        let stats = store.tier_stats();
        assert_eq!(stats[0].faults, 3, "breaker capped the outage probes");
        assert_eq!(stats[0].breaker_opens, 1);
        assert_eq!(stats[1].serves, 10);
        assert_eq!(store.failover_reads(), 10);
        assert!(store.drain_failover_hint_us() > 0);

        // Past the outage and the cooldown, the half-open probe heals it.
        store.set_sim_now(t_us(60_000));
        store.read_into(blob, spans[0], &mut buf).unwrap();
        assert_eq!(store.breaker_state(0), Some(BreakerState::Closed));
        assert_eq!(store.tier_stats()[0].serves, 1);
    }

    #[test]
    fn outage_errors_are_transient_for_retry_purposes() {
        let mut store =
            TieredBlobStore::new().with_tier(TierConfig::new("only", 100), MemBlobStore::new());
        let blob = store.create().unwrap();
        let span = store.append(blob, &[7u8; 16]).unwrap();
        let store = store.with_outage(0, t_us(0), t_us(1_000));
        store.set_sim_now(t_us(10));
        let mut buf = vec![0u8; 16];
        let err = store.read_into(blob, span, &mut buf).unwrap_err();
        assert!(is_transient(&err), "outage timeouts should be retryable");
    }

    #[test]
    fn crc_failure_is_repaired_from_healthy_tier_and_patch_sticks() {
        // Fast tier corrupts every read; slow tier is clean.
        let mut store = TieredBlobStore::new()
            .with_tier(
                TierConfig::new("fast", 50),
                FaultyBlobStore::new(MemBlobStore::new(), FaultPlan::new(9).with_corruption(1.0)),
            )
            .with_tier(TierConfig::new("slow", 1_000), MemBlobStore::new());
        let blob = store.create().unwrap();
        let data = vec![0xABu8; 128];
        let span = store.append(blob, &data).unwrap();
        let crc = crc32(&data);

        let ctx = ReadCtx {
            expected_crc: Some(crc),
            ..ReadCtx::default()
        };
        let mut buf = vec![0u8; 128];
        store.read_into_ctx(blob, span, &mut buf, &ctx).unwrap();
        assert_eq!(buf, data, "the served bytes verified against the checksum");
        assert_eq!(store.drain_repairs(), 1);
        let stats = store.tier_stats();
        assert_eq!(stats[0].crc_failures, 1);
        assert_eq!(stats[0].repairs, 1, "fast tier was re-materialized");
        assert_eq!(stats[1].serves, 1);

        // The repaired copy now serves the fast path — no more failover.
        let mut buf2 = vec![0u8; 128];
        store.read_into_ctx(blob, span, &mut buf2, &ctx).unwrap();
        assert_eq!(buf2, data);
        assert_eq!(store.drain_repairs(), 0);
        let stats = store.tier_stats();
        assert_eq!(stats[0].serves, 1, "patched span serves locally");
        assert_eq!(stats[1].serves, 1, "slow tier not consulted again");
    }

    #[test]
    fn unverified_reads_are_never_served_when_checksum_is_known() {
        // Both tiers corrupt: the read must fail rather than return bytes
        // that do not verify.
        let mut store = TieredBlobStore::new()
            .with_tier(
                TierConfig::new("a", 50),
                FaultyBlobStore::new(MemBlobStore::new(), FaultPlan::new(1).with_corruption(1.0)),
            )
            .with_tier(
                TierConfig::new("b", 100),
                FaultyBlobStore::new(MemBlobStore::new(), FaultPlan::new(2).with_corruption(1.0)),
            );
        let blob = store.create().unwrap();
        let data = vec![0x5Au8; 64];
        let span = store.append(blob, &data).unwrap();
        let ctx = ReadCtx {
            expected_crc: Some(crc32(&data)),
            ..ReadCtx::default()
        };
        let mut buf = vec![0u8; 64];
        assert!(store.read_into_ctx(blob, span, &mut buf, &ctx).is_err());
        assert_eq!(store.drain_repairs(), 0);
    }

    #[test]
    fn hedging_closes_a_lingering_breaker_under_deadline_pressure() {
        let mk = |hedging: bool| {
            let (store, blob, spans, crcs) = two_tier(4);
            // Fast tier dark for 10ms; slow tier browned out for 100ms.
            let store = store
                .with_hedging(hedging)
                .with_outage(0, t_us(0), t_us(10_000))
                .with_brownout(1, t_us(0), t_us(100_000), 20_000);
            let mut buf = vec![0u8; 64];
            // Trip the fast tier's breaker during its outage.
            for i in 0..4 {
                store.set_sim_now(t_us(i * 1_000));
                let ctx = ReadCtx {
                    expected_crc: Some(crcs[i as usize]),
                    ..ReadCtx::default()
                };
                store
                    .read_into_ctx(blob, spans[i as usize], &mut buf, &ctx)
                    .unwrap();
            }
            assert_eq!(store.breaker_state(0), Some(BreakerState::Open));
            // The outage is over at 10ms but the cooldown runs to ~13ms.
            // At 11ms a deadline-pressed read cannot afford the browned
            // slow tier (21ms est > 5ms slack).
            store.set_sim_now(t_us(11_000));
            let ctx = ReadCtx {
                deadline_slack_us: Some(5_000),
                expected_crc: Some(crcs[0]),
                ..ReadCtx::default()
            };
            store.read_into_ctx(blob, spans[0], &mut buf, &ctx).unwrap();
            (store.breaker_state(0).unwrap(), store.hedged_reads())
        };

        let (state, hedged) = mk(true);
        assert_eq!(state, BreakerState::Closed, "hedge probe healed the tier");
        assert_eq!(hedged, 1);

        let (state, hedged) = mk(false);
        assert_eq!(state, BreakerState::Open, "no hedge: cooldown still runs");
        assert_eq!(hedged, 0);
    }

    #[test]
    fn residency_budget_promotes_and_demotes() {
        let mut store = TieredBlobStore::new()
            .with_tier(
                TierConfig::new("cache", 10).with_residency_budget(128),
                MemBlobStore::new(),
            )
            .with_tier(TierConfig::new("back", 500), MemBlobStore::new());
        let blob = store.create().unwrap();
        let mut spans = Vec::new();
        let mut crcs = Vec::new();
        for i in 0..4u8 {
            let data = vec![i; 64];
            spans.push(store.append(blob, &data).unwrap());
            crcs.push(crc32(&data));
        }
        // Budget holds two 64-byte spans: appends demoted the first two.
        let stats = store.tier_stats();
        assert_eq!(stats[0].demotions, 2);
        assert!(stats[0].resident_bytes <= 128);

        // Reading a demoted span falls through to the backing tier and
        // promotes it back into the cache tier.
        let ctx = ReadCtx {
            expected_crc: Some(crcs[0]),
            ..ReadCtx::default()
        };
        let mut buf = vec![0u8; 64];
        store.read_into_ctx(blob, spans[0], &mut buf, &ctx).unwrap();
        assert_eq!(buf, vec![0u8; 64]);
        let stats = store.tier_stats();
        assert_eq!(stats[1].serves, 1);
        assert_eq!(stats[0].promotions, 1);
        assert_eq!(store.failover_reads(), 0, "cache miss is not a failover");

        // Now resident: the next read is served by the cache tier.
        store.read_into_ctx(blob, spans[0], &mut buf, &ctx).unwrap();
        let stats = store.tier_stats();
        assert_eq!(stats[0].serves, 1);
        assert_eq!(stats[1].serves, 1);
    }

    #[test]
    fn health_percent_tracks_breaker_state() {
        let (store, blob, spans, _) = two_tier(6);
        assert_eq!(store.health_percent(), 100);
        let store = store.with_outage(0, t_us(0), t_us(50_000));
        let mut buf = vec![0u8; 64];
        for (i, span) in spans.iter().enumerate().take(4) {
            store.set_sim_now(t_us(i as i64 * 100));
            store.read_into(blob, *span, &mut buf).unwrap();
        }
        assert_eq!(store.breaker_state(0), Some(BreakerState::Open));
        assert_eq!(store.health_percent(), 50);
    }

    #[test]
    fn same_script_same_outcome() {
        let run = || {
            let mut store = TieredBlobStore::mem_file_remote(
                FaultPlan::new(77)
                    .with_corruption(0.2)
                    .with_latency(0.3, 400),
                256,
            );
            let blob = store.create().unwrap();
            let mut spans = Vec::new();
            for i in 0..32u8 {
                spans.push(store.append(blob, &[i; 48]).unwrap());
            }
            let store = store.with_outage(1, t_us(3_000), t_us(9_000));
            let mut out = Vec::new();
            for (i, span) in spans.iter().enumerate() {
                store.set_sim_now(t_us(i as i64 * 500));
                let mut buf = vec![0u8; 48];
                let r = store.read_into(blob, *span, &mut buf);
                out.push((r.is_ok(), buf, store.drain_cost_hint_us()));
            }
            (out, store.tier_stats(), store.failover_reads())
        };
        assert_eq!(run(), run());
    }
}
