//! Property tests: the two blob stores are observationally equivalent, and
//! span reads always return exactly the appended bytes.

use proptest::prelude::*;
use tbm_blob::{BlobStore, ByteSpan, FileBlobStore, MemBlobStore};

fn chunks() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 1..12)
}

proptest! {
    /// Appending chunks then reading each back yields the original bytes,
    /// regardless of extent size (fragmentation is invisible).
    #[test]
    fn mem_store_roundtrips(chunks in chunks(), extent in 1usize..128) {
        let mut store = MemBlobStore::with_extent_size(extent);
        let blob = store.create().unwrap();
        let mut spans = Vec::new();
        for c in &chunks {
            spans.push(store.append(blob, c).unwrap());
        }
        for (c, s) in chunks.iter().zip(&spans) {
            prop_assert_eq!(&store.read(blob, *s).unwrap(), c);
        }
        let total: Vec<u8> = chunks.concat();
        prop_assert_eq!(store.read_all(blob).unwrap(), total);
    }

    /// Arbitrary in-bounds sub-spans read the same bytes as a full
    /// concatenation would contain.
    #[test]
    fn sub_span_reads_agree_with_concat(chunks in chunks(), extent in 1usize..64,
                                        frac_off in 0.0f64..1.0, frac_len in 0.0f64..1.0) {
        let mut store = MemBlobStore::with_extent_size(extent);
        let blob = store.create().unwrap();
        for c in &chunks {
            store.append(blob, c).unwrap();
        }
        let total: Vec<u8> = chunks.concat();
        let len = total.len() as u64;
        let off = (frac_off * len as f64) as u64;
        let span_len = ((frac_len * (len - off) as f64) as u64).min(len - off);
        let span = ByteSpan::new(off, span_len);
        let got = store.read(blob, span).unwrap();
        prop_assert_eq!(&got[..], &total[off as usize..(off + span_len) as usize]);
    }

    /// Reads past the end always fail, never return garbage.
    #[test]
    fn out_of_bounds_always_rejected(data in prop::collection::vec(any::<u8>(), 0..100),
                                     extra in 1u64..50) {
        let mut store = MemBlobStore::new();
        let blob = store.create().unwrap();
        store.append(blob, &data).unwrap();
        let bad = ByteSpan::new(data.len() as u64, extra);
        prop_assert!(store.read(blob, bad).is_err());
    }
}

/// The file store and memory store agree byte-for-byte on the same append
/// sequence. Run once with random-ish data rather than under proptest to
/// keep filesystem churn bounded.
#[test]
fn file_store_agrees_with_mem_store() {
    let dir = std::env::temp_dir().join(format!("tbm-blob-equiv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut file = FileBlobStore::open(&dir).unwrap();
    let mut mem = MemBlobStore::with_extent_size(7);

    let fb = file.create().unwrap();
    let mb = mem.create().unwrap();
    let chunks: Vec<Vec<u8>> = (0..20u8)
        .map(|i| {
            (0..(i as usize * 13 % 97))
                .map(|j| (i as usize * 31 + j) as u8)
                .collect()
        })
        .collect();
    for c in &chunks {
        let s1 = file.append(fb, c).unwrap();
        let s2 = mem.append(mb, c).unwrap();
        assert_eq!(s1, s2);
    }
    assert_eq!(file.len(fb).unwrap(), mem.len(mb).unwrap());
    assert_eq!(file.read_all(fb).unwrap(), mem.read_all(mb).unwrap());
    // Probe a few sub-spans.
    let len = file.len(fb).unwrap();
    for (off, l) in [(0u64, 5u64), (len / 3, len / 4), (len - 1, 1), (0, len)] {
        let span = ByteSpan::new(off, l);
        assert_eq!(file.read(fb, span).unwrap(), mem.read(mb, span).unwrap());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
