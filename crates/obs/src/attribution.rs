//! Deadline-miss attribution: walking a trace to explain *why* each
//! presentation deadline was missed.
//!
//! The serving layer records one span per element served (named
//! [`ELEMENT_SPAN`]) carrying a decomposition of that element's service
//! time into attributed components, all in microseconds:
//!
//! * [`ATTR_WAIT_US`] — time the element waited for the shared channel
//!   behind *other sessions'* work. Dominant wait means the admission
//!   controller let in more concurrent load than the channel can carry:
//!   **admission over-commit**.
//! * [`ATTR_NODELOSS_US`] — time the element's channel was stalled by a
//!   node-level outage: a crash-triggered shard migration's catalog
//!   handoff, or unreachable-node backoff. Dominant node-loss means the
//!   miss is the price of surviving a node failure: **node-loss**.
//! * [`ATTR_RETRY_US`] — time spent in retry backoff and re-reads after
//!   injected storage faults: **retry-storm**.
//! * [`ATTR_FAILOVER_US`] — time a tiered store spent probing broken
//!   tiers, hedging a slow tier against a deadline, or falling back after
//!   a tier fault: **tier-failover**.
//! * [`ATTR_STORAGE_US`] — first-attempt transfer time plus storage
//!   latency: **storage-latency**.
//! * [`ATTR_DECODE_US`] — decode work and per-element dispatch overhead:
//!   **decode-overrun**.
//! * [`ATTR_INHERITED_US`] — lateness carried in because *this session's
//!   previous element* finished past this element's start time. When this
//!   dominates, the miss is a knock-on effect and inherits the previous
//!   element's cause.
//!
//! [`attribute`] classifies every span with positive [`ATTR_LATENESS_US`]
//! by its largest component, breaking ties in a fixed order
//! (over-commit > node-loss > tier-failover > retry-storm >
//! storage-latency > decode-overrun), so each miss gets **exactly one**
//! cause and the report is deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::tracer::TraceRecord;

/// Span name the serving layer uses for one element's service interval.
pub const ELEMENT_SPAN: &str = "element";
/// Attribute: how late the element presented, in µs (≤ 0 means on time).
pub const ATTR_LATENESS_US: &str = "lateness_us";
/// Attribute: cross-session channel wait, in µs.
pub const ATTR_WAIT_US: &str = "wait_us";
/// Attribute: node-outage stall (migration handoff, crash detection), µs.
pub const ATTR_NODELOSS_US: &str = "nodeloss_us";
/// Attribute: retry backoff + re-read transfer, in µs.
pub const ATTR_RETRY_US: &str = "retry_us";
/// Attribute: tier probing, hedging and failover fallback time, in µs.
pub const ATTR_FAILOVER_US: &str = "failover_us";
/// Attribute: first-attempt storage transfer + latency, in µs.
pub const ATTR_STORAGE_US: &str = "storage_us";
/// Attribute: decode + dispatch overhead, in µs.
pub const ATTR_DECODE_US: &str = "decode_us";
/// Attribute: lateness inherited from the session's previous element, µs.
pub const ATTR_INHERITED_US: &str = "inherited_us";
/// Attribute: the element's index within its session's schedule.
pub const ATTR_ELEMENT_INDEX: &str = "index";

/// The single assigned cause of one deadline miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MissCause {
    /// Admission let in more concurrent sessions than the channel carries;
    /// the element stalled behind other sessions' transfers.
    AdmissionOverCommit,
    /// A node crashed, browned out or fell off the network; the element
    /// stalled behind a shard migration's catalog handoff (or the backoff
    /// that preceded it) rather than behind any of its own work.
    NodeLoss,
    /// A storage tier failed or browned out; the read burned its slack
    /// probing broken tiers, hedging, or falling back to a slower tier.
    TierFailover,
    /// Storage faults triggered retries whose backoff and re-reads ate the
    /// deadline.
    RetryStorm,
    /// A clean first-attempt read was itself too slow.
    StorageLatency,
    /// Decode work and dispatch overhead overran the slack.
    DecodeOverrun,
}

impl MissCause {
    /// Every cause, in tie-break priority order.
    pub const ALL: [MissCause; 6] = [
        MissCause::AdmissionOverCommit,
        MissCause::NodeLoss,
        MissCause::TierFailover,
        MissCause::RetryStorm,
        MissCause::StorageLatency,
        MissCause::DecodeOverrun,
    ];

    /// The cause's stable kebab-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            MissCause::AdmissionOverCommit => "admission-over-commit",
            MissCause::NodeLoss => "node-loss",
            MissCause::TierFailover => "tier-failover",
            MissCause::RetryStorm => "retry-storm",
            MissCause::StorageLatency => "storage-latency",
            MissCause::DecodeOverrun => "decode-overrun",
        }
    }
}

impl std::fmt::Display for MissCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One attributed deadline miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissAttribution {
    /// Trace record id of the element span.
    pub span: u64,
    /// The session that missed.
    pub session: u64,
    /// Element index within the session's schedule.
    pub element: i64,
    /// How late the element presented, in µs.
    pub lateness_us: i64,
    /// The single assigned cause.
    pub cause: MissCause,
    /// Size of the winning component, in µs.
    pub dominant_us: i64,
    /// `true` when the cause was propagated from the session's previous
    /// late element rather than chosen from this span's own components.
    pub inherited: bool,
}

/// All attributed misses from one trace, in span-id order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttributionReport {
    /// Every miss, in the order the elements were served.
    pub misses: Vec<MissAttribution>,
}

impl AttributionReport {
    /// Number of attributed misses.
    pub fn total(&self) -> usize {
        self.misses.len()
    }

    /// Miss counts per cause, in [`MissCause::ALL`] order (zeroes kept).
    pub fn by_cause(&self) -> Vec<(MissCause, usize)> {
        MissCause::ALL
            .iter()
            .map(|&cause| {
                (
                    cause,
                    self.misses.iter().filter(|m| m.cause == cause).count(),
                )
            })
            .collect()
    }

    /// A plain-text attribution table: one row per miss, then a per-cause
    /// summary. Deterministic for a deterministic trace.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>12} {:>12}  cause",
            "session", "element", "lateness_us", "dominant_us"
        );
        for m in &self.misses {
            let _ = writeln!(
                out,
                "{:>8} {:>8} {:>12} {:>12}  {}{}",
                m.session,
                m.element,
                m.lateness_us,
                m.dominant_us,
                m.cause,
                if m.inherited { " (inherited)" } else { "" }
            );
        }
        let _ = writeln!(out, "---");
        for (cause, n) in self.by_cause() {
            let _ = writeln!(out, "{:>24}: {n}", cause.as_str());
        }
        let _ = writeln!(out, "{:>24}: {}", "total misses", self.total());
        out
    }
}

/// Picks the largest of the six direct components, breaking ties in
/// [`MissCause::ALL`] priority order.
fn dominant(components: &[(MissCause, i64); 6]) -> (MissCause, i64) {
    let mut best = components[0];
    for &(cause, us) in &components[1..] {
        if us > best.1 {
            best = (cause, us);
        }
    }
    best
}

/// Walks `records` and assigns exactly one [`MissCause`] to every element
/// span whose [`ATTR_LATENESS_US`] is positive. See the
/// [module docs](self) for the classification rules.
pub fn attribute(records: &[TraceRecord]) -> AttributionReport {
    let mut last_cause: BTreeMap<u64, MissCause> = BTreeMap::new();
    let mut misses = Vec::new();
    for rec in records {
        if rec.name != ELEMENT_SPAN {
            continue;
        }
        let lateness = rec.attr_i64(ATTR_LATENESS_US);
        let session = rec.session.unwrap_or(0);
        if lateness <= 0 {
            // An on-time element breaks the knock-on chain: later misses in
            // this session are not "inherited" across it.
            last_cause.remove(&session);
            continue;
        }
        let components = [
            (MissCause::AdmissionOverCommit, rec.attr_i64(ATTR_WAIT_US)),
            (MissCause::NodeLoss, rec.attr_i64(ATTR_NODELOSS_US)),
            (MissCause::TierFailover, rec.attr_i64(ATTR_FAILOVER_US)),
            (MissCause::RetryStorm, rec.attr_i64(ATTR_RETRY_US)),
            (MissCause::StorageLatency, rec.attr_i64(ATTR_STORAGE_US)),
            (MissCause::DecodeOverrun, rec.attr_i64(ATTR_DECODE_US)),
        ];
        let (own_cause, own_us) = dominant(&components);
        let inherited_us = rec.attr_i64(ATTR_INHERITED_US);
        let (cause, dominant_us, inherited) = match last_cause.get(&session) {
            Some(&prev) if inherited_us > own_us => (prev, inherited_us, true),
            _ => (own_cause, own_us, false),
        };
        last_cause.insert(session, cause);
        misses.push(MissAttribution {
            span: rec.id,
            session,
            element: rec.attr_i64(ATTR_ELEMENT_INDEX),
            lateness_us: lateness,
            cause,
            dominant_us,
            inherited,
        });
    }
    AttributionReport { misses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{Category, SpanId, Tracer};
    use tbm_time::{TimeDelta, TimePoint};

    fn tp(ms: i64) -> TimePoint {
        TimePoint::ZERO + TimeDelta::from_millis(ms)
    }

    fn element(tracer: &Tracer, session: u64, index: i64, ms: i64, attrs: &[(&'static str, i64)]) {
        let span = tracer.begin_span(
            ELEMENT_SPAN,
            Category::Serve,
            tp(ms),
            SpanId::NONE,
            Some(session),
        );
        tracer.attr(span, ATTR_ELEMENT_INDEX, index);
        for &(key, value) in attrs {
            tracer.attr(span, key, value);
        }
        tracer.end_span(span, tp(ms + 1));
    }

    #[test]
    fn classifies_by_largest_component() {
        let tracer = Tracer::new();
        element(
            &tracer,
            1,
            0,
            0,
            &[
                (ATTR_LATENESS_US, 900),
                (ATTR_WAIT_US, 100),
                (ATTR_RETRY_US, 700),
                (ATTR_STORAGE_US, 50),
                (ATTR_DECODE_US, 50),
            ],
        );
        element(
            &tracer,
            2,
            0,
            1,
            &[
                (ATTR_LATENESS_US, 400),
                (ATTR_STORAGE_US, 350),
                (ATTR_DECODE_US, 50),
            ],
        );
        let report = attribute(&tracer.snapshot().records);
        assert_eq!(report.total(), 2);
        assert_eq!(report.misses[0].cause, MissCause::RetryStorm);
        assert_eq!(report.misses[0].dominant_us, 700);
        assert_eq!(report.misses[1].cause, MissCause::StorageLatency);
    }

    #[test]
    fn tier_failover_component_classifies_and_outranks_retry_on_ties() {
        let tracer = Tracer::new();
        element(
            &tracer,
            1,
            0,
            0,
            &[
                (ATTR_LATENESS_US, 500),
                (ATTR_RETRY_US, 100),
                (ATTR_FAILOVER_US, 400),
                (ATTR_STORAGE_US, 50),
            ],
        );
        // Tie between failover and retry: failover wins (more specific).
        element(
            &tracer,
            2,
            0,
            1,
            &[
                (ATTR_LATENESS_US, 200),
                (ATTR_RETRY_US, 150),
                (ATTR_FAILOVER_US, 150),
            ],
        );
        let report = attribute(&tracer.snapshot().records);
        assert_eq!(report.misses[0].cause, MissCause::TierFailover);
        assert_eq!(report.misses[0].dominant_us, 400);
        assert_eq!(report.misses[1].cause, MissCause::TierFailover);
    }

    #[test]
    fn tie_breaks_in_priority_order() {
        let tracer = Tracer::new();
        element(
            &tracer,
            1,
            0,
            0,
            &[
                (ATTR_LATENESS_US, 100),
                (ATTR_WAIT_US, 50),
                (ATTR_RETRY_US, 50),
                (ATTR_STORAGE_US, 50),
                (ATTR_DECODE_US, 50),
            ],
        );
        let report = attribute(&tracer.snapshot().records);
        assert_eq!(report.misses[0].cause, MissCause::AdmissionOverCommit);
    }

    #[test]
    fn inherited_lateness_propagates_previous_cause() {
        let tracer = Tracer::new();
        // Element 0: a genuine retry storm.
        element(
            &tracer,
            7,
            0,
            0,
            &[
                (ATTR_LATENESS_US, 1_000),
                (ATTR_RETRY_US, 900),
                (ATTR_STORAGE_US, 100),
            ],
        );
        // Element 1: fast on its own, late only because element 0 overran.
        element(
            &tracer,
            7,
            1,
            2,
            &[
                (ATTR_LATENESS_US, 600),
                (ATTR_STORAGE_US, 80),
                (ATTR_INHERITED_US, 520),
            ],
        );
        // Element 2: on time — breaks the chain.
        element(&tracer, 7, 2, 4, &[(ATTR_LATENESS_US, 0)]);
        // Element 3: late with big inherited_us but no prior cause chain —
        // falls back to its own dominant component.
        element(
            &tracer,
            7,
            3,
            6,
            &[
                (ATTR_LATENESS_US, 300),
                (ATTR_DECODE_US, 120),
                (ATTR_INHERITED_US, 200),
            ],
        );
        let report = attribute(&tracer.snapshot().records);
        assert_eq!(report.total(), 3);
        assert_eq!(report.misses[1].cause, MissCause::RetryStorm);
        assert!(report.misses[1].inherited);
        assert_eq!(report.misses[2].cause, MissCause::DecodeOverrun);
        assert!(!report.misses[2].inherited);
    }

    #[test]
    fn node_loss_classifies_and_outranks_everything_but_overcommit() {
        let tracer = Tracer::new();
        // A migration-handoff stall dominates: node-loss.
        element(
            &tracer,
            1,
            0,
            0,
            &[
                (ATTR_LATENESS_US, 2_000),
                (ATTR_NODELOSS_US, 1_500),
                (ATTR_STORAGE_US, 400),
                (ATTR_RETRY_US, 100),
            ],
        );
        // Ties: node-loss beats tier-failover and retry-storm, but a tied
        // over-commit wait still wins (it sits first in the order).
        element(
            &tracer,
            2,
            0,
            1,
            &[
                (ATTR_LATENESS_US, 300),
                (ATTR_NODELOSS_US, 150),
                (ATTR_FAILOVER_US, 150),
                (ATTR_RETRY_US, 150),
            ],
        );
        element(
            &tracer,
            3,
            0,
            2,
            &[
                (ATTR_LATENESS_US, 300),
                (ATTR_WAIT_US, 150),
                (ATTR_NODELOSS_US, 150),
            ],
        );
        let report = attribute(&tracer.snapshot().records);
        assert_eq!(report.misses[0].cause, MissCause::NodeLoss);
        assert_eq!(report.misses[0].dominant_us, 1_500);
        assert_eq!(report.misses[1].cause, MissCause::NodeLoss);
        assert_eq!(report.misses[2].cause, MissCause::AdmissionOverCommit);
    }

    #[test]
    fn every_miss_gets_exactly_one_cause() {
        let tracer = Tracer::new();
        for i in 0..10i64 {
            element(
                &tracer,
                (i % 3) as u64,
                i,
                i,
                &[
                    (ATTR_LATENESS_US, 10 + i),
                    (ATTR_WAIT_US, i),
                    (ATTR_RETRY_US, 9 - i),
                    (ATTR_STORAGE_US, 3),
                ],
            );
        }
        let report = attribute(&tracer.snapshot().records);
        assert_eq!(report.total(), 10);
        let counted: usize = report.by_cause().iter().map(|(_, n)| n).sum();
        assert_eq!(counted, report.total(), "causes partition the misses");
    }

    #[test]
    fn render_lists_rows_and_summary() {
        let tracer = Tracer::new();
        element(
            &tracer,
            5,
            2,
            0,
            &[(ATTR_LATENESS_US, 777), (ATTR_STORAGE_US, 600)],
        );
        let report = attribute(&tracer.snapshot().records);
        let text = report.render();
        assert!(text.contains("storage-latency"));
        assert!(text.contains("777"));
        assert!(text.contains("total misses: 1"));
        assert_eq!(report.render(), text);
    }

    #[test]
    fn on_time_elements_and_other_spans_ignored() {
        let tracer = Tracer::new();
        element(&tracer, 1, 0, 0, &[(ATTR_LATENESS_US, 0)]);
        let other = tracer.begin_span("decode", Category::Decode, tp(1), SpanId::NONE, Some(1));
        tracer.attr(other, ATTR_LATENESS_US, 999i64);
        tracer.end_span(other, tp(2));
        let report = attribute(&tracer.snapshot().records);
        assert_eq!(report.total(), 0);
    }
}
