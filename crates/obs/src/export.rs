//! Trace exporters.
//!
//! Two renderings of a [`TraceSnapshot`]:
//!
//! * [`chrome_trace`] — the Chrome `trace_event` JSON array format, which
//!   loads directly into Perfetto / `chrome://tracing`. Spans become `"X"`
//!   (complete) events, instants become `"i"` events. All timestamps are
//!   integer microseconds of *simulated* time, so two identical runs export
//!   byte-identical files.
//! * [`text_timeline`] — a plain-text, indented timeline for terminals and
//!   golden tests.
//!
//! A tiny structural JSON checker ([`validate_json`]) rides along so smoke
//! tests and CI can verify an exported file parses without pulling in a
//! JSON dependency.

use std::fmt::Write as _;
use std::io;

use crate::tracer::{micros_of, AttrValue, RecordKind, TraceRecord, TraceSnapshot};

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn attr_json(value: &AttrValue) -> String {
    match value {
        AttrValue::U64(v) => v.to_string(),
        AttrValue::I64(v) => v.to_string(),
        AttrValue::Str(s) => format!("\"{}\"", json_escape(s)),
        AttrValue::Text(s) => format!("\"{}\"", json_escape(s)),
    }
}

fn record_json(rec: &TraceRecord) -> String {
    let ts = micros_of(rec.start);
    let mut args = String::new();
    if !rec.parent.is_none() {
        let _ = write!(args, "\"parent\":{}", rec.parent.raw());
    }
    for (key, value) in &rec.attrs {
        if !args.is_empty() {
            args.push(',');
        }
        let _ = write!(args, "\"{}\":{}", json_escape(key), attr_json(value));
    }
    // pid 1 = the simulated process; tid = session id + 2 so session-less
    // records (tid 1) and per-session tracks render as separate rows.
    let tid = rec.session.map(|s| s + 2).unwrap_or(1);
    match rec.kind {
        RecordKind::Span => {
            let end = rec.end.map(micros_of).unwrap_or(ts);
            let dur = (end - ts).max(0);
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"id\":{},\"args\":{{{}}}}}",
                json_escape(rec.name),
                rec.cat.as_str(),
                ts,
                dur,
                tid,
                rec.id,
                args
            )
        }
        RecordKind::Instant => format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{},\"id\":{},\"args\":{{{}}}}}",
            json_escape(rec.name),
            rec.cat.as_str(),
            ts,
            tid,
            rec.id,
            args
        ),
    }
}

/// Renders `snapshot` as a Chrome `trace_event` JSON array.
///
/// Records appear in span-id order (creation order), timestamps are integer
/// microseconds of simulated time, and no floating point is emitted — the
/// output is byte-stable across identical runs.
pub fn chrome_trace(snapshot: &TraceSnapshot) -> String {
    let mut out = String::from("[\n");
    for (i, rec) in snapshot.records.iter().enumerate() {
        out.push_str(&record_json(rec));
        if i + 1 < snapshot.records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

/// Writes [`chrome_trace`] output to `w`.
pub fn chrome_trace_to_writer(snapshot: &TraceSnapshot, w: &mut dyn io::Write) -> io::Result<()> {
    w.write_all(chrome_trace(snapshot).as_bytes())
}

/// Renders `snapshot` as an indented plain-text timeline, one record per
/// line, ordered by span id. Child records indent under their parent.
pub fn text_timeline(snapshot: &TraceSnapshot) -> String {
    let mut out = String::new();
    if snapshot.dropped > 0 {
        let _ = writeln!(
            out,
            "(ring full: {} oldest records dropped)",
            snapshot.dropped
        );
    }
    // Depth by chasing parent links; ids are sequential so a parent always
    // precedes its children and the map stays one pass.
    let mut depth = std::collections::BTreeMap::new();
    for rec in &snapshot.records {
        let d = if rec.parent.is_none() {
            0usize
        } else {
            depth.get(&rec.parent.raw()).map(|d| d + 1).unwrap_or(0)
        };
        depth.insert(rec.id, d);
        let indent = "  ".repeat(d);
        let start = micros_of(rec.start);
        match rec.kind {
            RecordKind::Span => {
                let end = rec.end.map(micros_of).unwrap_or(start);
                let _ = write!(
                    out,
                    "{indent}[{start:>10}us +{:>8}us] {}/{}",
                    (end - start).max(0),
                    rec.cat,
                    rec.name
                );
            }
            RecordKind::Instant => {
                let _ = write!(
                    out,
                    "{indent}[{start:>10}us          ] {}/{}",
                    rec.cat, rec.name
                );
            }
        }
        if let Some(session) = rec.session {
            let _ = write!(out, " session={session}");
        }
        for (key, value) in &rec.attrs {
            let _ = write!(out, " {key}={value}");
        }
        out.push('\n');
    }
    out
}

/// Checks that `input` is one well-formed JSON value (objects, arrays,
/// strings, numbers, booleans, null). Returns the byte offset of the first
/// error. Structural only — good enough to catch a truncated or mangled
/// export in CI without a JSON dependency.
pub fn validate_json(input: &str) -> Result<(), usize> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Ok(())
    } else {
        Err(pos)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), usize> {
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_lit(bytes, pos, b"true"),
        Some(b'f') => parse_lit(bytes, pos, b"false"),
        Some(b'n') => parse_lit(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        _ => Err(*pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), usize> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(*pos)
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), usize> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(start);
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(start);
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(start);
        }
    }
    Ok(())
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), usize> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !matches!(
                                bytes.get(*pos),
                                Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')
                            ) {
                                return Err(*pos);
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(*pos),
                }
            }
            _ => *pos += 1,
        }
    }
    Err(*pos)
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), usize> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
                skip_ws(bytes, pos);
            }
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(*pos),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), usize> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(*pos);
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(*pos);
        }
        *pos += 1;
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(*pos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{Category, SpanId, Tracer};
    use tbm_time::{TimeDelta, TimePoint};

    fn tp(ms: i64) -> TimePoint {
        TimePoint::ZERO + TimeDelta::from_millis(ms)
    }

    fn sample() -> TraceSnapshot {
        let tracer = Tracer::new();
        let root = tracer.begin_span("session", Category::Session, tp(0), SpanId::NONE, Some(3));
        let child = tracer.begin_span("serve", Category::Serve, tp(10), root, Some(3));
        tracer.attr(child, "lateness_us", 250u64);
        tracer.attr(child, "cause", "retry-storm");
        tracer.event(
            "fault.transient",
            Category::Fault,
            tp(12),
            child,
            Some(3),
            vec![("attempt", 1u64.into())],
        );
        tracer.end_span(child, tp(15));
        tracer.end_span(root, tp(20));
        tracer.snapshot()
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let json = chrome_trace(&sample());
        validate_json(&json).expect("export must be well-formed JSON");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":10000"));
        assert!(json.contains("\"dur\":5000"));
        assert!(json.contains("\"parent\":0"));
        assert!(json.contains("\"cause\":\"retry-storm\""));
        // Session 3 renders on tid 5; a session-less record would be tid 1.
        assert!(json.contains("\"tid\":5"));
    }

    #[test]
    fn chrome_trace_is_deterministic() {
        let a = chrome_trace(&sample());
        let b = chrome_trace(&sample());
        assert_eq!(a, b);
    }

    #[test]
    fn text_timeline_indents_children() {
        let text = text_timeline(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with('['), "root unindented: {}", lines[0]);
        assert!(lines[1].starts_with("  ["), "child indented: {}", lines[1]);
        assert!(
            lines[2].starts_with("    ["),
            "event doubly indented: {}",
            lines[2]
        );
        assert!(text.contains("lateness_us=250"));
    }

    #[test]
    fn escapes_json_strings() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        assert!(validate_json("[]").is_ok());
        assert!(validate_json("{\"a\":[1,2.5,-3e2,\"x\",true,null]}").is_ok());
        assert!(validate_json("  [ {} , {\"k\":\"v\"} ]  ").is_ok());
        assert!(validate_json("[1,2").is_err());
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1] trailing").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("01").is_ok()); // lenient: digits are digits
    }
}
