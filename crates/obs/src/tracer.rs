//! The tracer: a ring-buffered recorder of spans and instant events on the
//! *simulated* clock.
//!
//! Every timestamp comes from the caller's simulated [`TimePoint`], never
//! from the host clock, so a trace is a pure function of the run that
//! produced it — two runs with the same seed export byte-identical traces.
//! A [`Tracer`] is a cheaply clonable handle; clones share one ring, which
//! is how the serving layer, the player and the storage fault injector all
//! write into a single timeline. A disabled tracer ([`Tracer::disabled`])
//! carries no ring at all: every call is a branch on an `Option` and an
//! immediate return, so instrumented code costs nothing when nobody is
//! watching.
//!
//! Records live in a bounded ring (capacity fixed at construction). When
//! the ring is full the *oldest* records are evicted and counted in
//! [`TraceSnapshot::dropped`] — a long run keeps its most recent window,
//! and the drop count keeps the loss honest.
//!
//! The ring lives behind an `Arc<Mutex<_>>`, so a tracer handle can cross
//! threads: the parallel shard pool hands each worker servers that carry
//! their own tracers. Determinism is preserved by giving each shard its
//! *own* ring with a disjoint id range ([`Tracer::with_capacity_and_base`])
//! and merging snapshots in shard order ([`merge_snapshots`]) — never by
//! letting two threads interleave writes into one ring.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};
use tbm_time::{Rational, TimePoint};

/// Identifies one record in a trace. Ids are assigned sequentially, so a
/// span's parent always has a smaller id than the span itself — which makes
/// parent links acyclic by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The absent span: no parent, or a span issued by a disabled tracer.
    pub const NONE: SpanId = SpanId(u64::MAX);

    /// The raw sequence number.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// `true` for [`SpanId::NONE`].
    pub fn is_none(self) -> bool {
        self == SpanId::NONE
    }
}

/// What subsystem a record belongs to — the `cat` field of the Chrome
/// trace-event export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Session lifecycle (open/play/pause/seek/close/finish).
    Session,
    /// Admission-control verdicts.
    Admission,
    /// Element service through the shared channel.
    Serve,
    /// Storage transfers (first-attempt reads and retry re-reads).
    Storage,
    /// Segment-cache lookups.
    Cache,
    /// Decode work and dispatch overhead.
    Decode,
    /// Injected storage faults.
    Fault,
    /// Presentation outcomes (deadline hits and misses).
    Present,
    /// Storage-tier transitions: breaker trips, hedged probes, failovers
    /// and cross-tier repairs.
    Tier,
    /// Fleet-level events: node crashes and restarts, transport losses,
    /// placement changes and shard migrations.
    Fleet,
    /// Health-plane records: SLO alert opens/closes (one span per
    /// incident) and burn-rate threshold crossings.
    Health,
    /// Remediation-plane records: one span per attempted playbook action,
    /// carrying rule/action attrs at apply and the verification verdict at
    /// close.
    Remediation,
    /// Scheduler records: same-deadline batch spans and work-steal events
    /// from the multi-core event loop.
    Sched,
}

impl Category {
    /// The category's stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Session => "session",
            Category::Admission => "admission",
            Category::Serve => "serve",
            Category::Storage => "storage",
            Category::Cache => "cache",
            Category::Decode => "decode",
            Category::Fault => "fault",
            Category::Present => "present",
            Category::Tier => "tier",
            Category::Fleet => "fleet",
            Category::Health => "health",
            Category::Remediation => "remediation",
            Category::Sched => "sched",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An attribute value attached to a record. Only exactly-representable
/// types are allowed — no floats — so exports are deterministic down to the
/// byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A static string (enum-like labels).
    Str(&'static str),
    /// An owned string (object names and other dynamic text).
    Text(String),
}

impl AttrValue {
    /// The value as an `i64` when it is numeric.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            AttrValue::U64(v) => i64::try_from(*v).ok(),
            AttrValue::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string when it is textual.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            AttrValue::Text(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::Str(s) => f.write_str(s),
            AttrValue::Text(s) => f.write_str(s),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> AttrValue {
        AttrValue::U64(v)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> AttrValue {
        AttrValue::I64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> AttrValue {
        AttrValue::U64(v as u64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> AttrValue {
        AttrValue::U64(v as u64)
    }
}

impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> AttrValue {
        AttrValue::Str(v)
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Text(v)
    }
}

/// Whether a record is a span (has duration) or an instant event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// An interval: `start..end` in simulated time. `end` is `None` until
    /// the span is closed.
    Span,
    /// A point in time.
    Instant,
}

/// One recorded span or event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Sequence number; doubles as the span id.
    pub id: u64,
    /// Enclosing span, or [`SpanId::NONE`] for roots.
    pub parent: SpanId,
    /// The record's name (a static label, e.g. `"element"`).
    pub name: &'static str,
    /// Subsystem category.
    pub cat: Category,
    /// The session this record is attributed to, if any.
    pub session: Option<u64>,
    /// Span start (or event time) on the simulated clock.
    pub start: TimePoint,
    /// Span end; `None` for instants and unclosed spans.
    pub end: Option<TimePoint>,
    /// Span vs instant.
    pub kind: RecordKind,
    /// Attached key/value attributes, in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl TraceRecord {
    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// A numeric attribute by key, defaulting to 0 when absent.
    pub fn attr_i64(&self, key: &str) -> i64 {
        self.attr(key).and_then(AttrValue::as_i64).unwrap_or(0)
    }
}

/// An owned copy of the tracer's current contents, in id order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSnapshot {
    /// Records still resident in the ring, oldest first.
    pub records: Vec<TraceRecord>,
    /// Records evicted from the ring since the start of the run.
    pub dropped: u64,
}

#[derive(Debug)]
struct Ring {
    cap: usize,
    next_id: u64,
    dropped: u64,
    now: TimePoint,
    records: VecDeque<TraceRecord>,
}

impl Ring {
    /// Index of record `id` in the deque, if still resident.
    fn index_of(&self, id: u64) -> Option<usize> {
        let first = self.records.front()?.id;
        if id < first {
            return None;
        }
        let idx = (id - first) as usize;
        (idx < self.records.len()).then_some(idx)
    }

    fn push(&mut self, record: TraceRecord) {
        if self.records.len() == self.cap {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }
}

/// A handle to a shared, ring-buffered trace recorder.
///
/// Clone it freely: clones share the ring. See the [module docs](self) for
/// the model.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<Ring>>>,
}

/// Default ring capacity: enough for every record of the workloads in this
/// workspace's experiments.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

impl Tracer {
    /// An enabled tracer with the default ring capacity.
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled tracer retaining at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer::with_capacity_and_base(capacity, 0)
    }

    /// An enabled tracer whose record ids start at `id_base` instead of 0.
    ///
    /// Per-shard tracers use disjoint id bases (shard `i` gets
    /// `i * stride`) so that snapshots merged in shard order keep the
    /// "parent id < child id" invariant and stay byte-identical no matter
    /// how many worker threads ran the shards.
    pub fn with_capacity_and_base(capacity: usize, id_base: u64) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Mutex::new(Ring {
                cap: capacity.max(1),
                next_id: id_base,
                dropped: 0,
                now: TimePoint::ZERO,
                records: VecDeque::new(),
            }))),
        }
    }

    /// A disabled tracer: every call is a no-op returning
    /// [`SpanId::NONE`]. This is the zero-cost default.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// `true` when records are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advances the tracer's notion of "now" — used by layers (like the
    /// storage fault injector) that observe events but do not own a clock.
    /// The driver (server or player) sets this as its own clock advances.
    pub fn set_now(&self, at: TimePoint) {
        if let Some(inner) = &self.inner {
            inner.lock().unwrap().now = at;
        }
    }

    /// The last time set by [`Tracer::set_now`].
    pub fn now(&self) -> TimePoint {
        self.inner
            .as_ref()
            .map(|i| i.lock().unwrap().now)
            .unwrap_or(TimePoint::ZERO)
    }

    /// Opens a span starting at `at`. Close it with [`Tracer::end_span`];
    /// attach attributes any time before the ring evicts it.
    pub fn begin_span(
        &self,
        name: &'static str,
        cat: Category,
        at: TimePoint,
        parent: SpanId,
        session: Option<u64>,
    ) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::NONE;
        };
        let mut ring = inner.lock().unwrap();
        let id = ring.next_id;
        ring.next_id += 1;
        ring.push(TraceRecord {
            id,
            parent,
            name,
            cat,
            session,
            start: at,
            end: None,
            kind: RecordKind::Span,
            attrs: Vec::new(),
        });
        SpanId(id)
    }

    /// Closes a span at `at`. A no-op if the span was already evicted (or
    /// the tracer is disabled).
    pub fn end_span(&self, span: SpanId, at: TimePoint) {
        let Some(inner) = &self.inner else {
            return;
        };
        if span.is_none() {
            return;
        }
        let mut ring = inner.lock().unwrap();
        if let Some(idx) = ring.index_of(span.0) {
            ring.records[idx].end = Some(at);
        }
    }

    /// Attaches an attribute to an open (or closed, still-resident) span.
    pub fn attr(&self, span: SpanId, key: &'static str, value: impl Into<AttrValue>) {
        let Some(inner) = &self.inner else {
            return;
        };
        if span.is_none() {
            return;
        }
        let mut ring = inner.lock().unwrap();
        if let Some(idx) = ring.index_of(span.0) {
            ring.records[idx].attrs.push((key, value.into()));
        }
    }

    /// Records an instant event at `at`.
    pub fn event(
        &self,
        name: &'static str,
        cat: Category,
        at: TimePoint,
        parent: SpanId,
        session: Option<u64>,
        attrs: Vec<(&'static str, AttrValue)>,
    ) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::NONE;
        };
        let mut ring = inner.lock().unwrap();
        let id = ring.next_id;
        ring.next_id += 1;
        ring.push(TraceRecord {
            id,
            parent,
            name,
            cat,
            session,
            start: at,
            end: None,
            kind: RecordKind::Instant,
            attrs,
        });
        SpanId(id)
    }

    /// Records an instant event at the tracer's current "now" — the call
    /// used by layers without a clock of their own.
    pub fn event_now(
        &self,
        name: &'static str,
        cat: Category,
        attrs: Vec<(&'static str, AttrValue)>,
    ) -> SpanId {
        let at = self.now();
        self.event(name, cat, at, SpanId::NONE, None, attrs)
    }

    /// Records resident in the ring right now.
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map(|i| i.lock().unwrap().records.len())
            .unwrap_or(0)
    }

    /// `true` when no records are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An owned snapshot of the resident records, in id order.
    pub fn snapshot(&self) -> TraceSnapshot {
        match &self.inner {
            Some(inner) => {
                let ring = inner.lock().unwrap();
                TraceSnapshot {
                    records: ring.records.iter().cloned().collect(),
                    dropped: ring.dropped,
                }
            }
            None => TraceSnapshot {
                records: Vec::new(),
                dropped: 0,
            },
        }
    }

    /// Clears the ring and resets the drop count (ids keep counting up).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            let mut ring = inner.lock().unwrap();
            ring.records.clear();
            ring.dropped = 0;
        }
    }
}

/// Concatenates per-shard snapshots, in the order given, into one timeline.
///
/// Each input ring must have been built with a disjoint id base
/// ([`Tracer::with_capacity_and_base`]); the caller passes the parts in
/// shard order, so the merged record list is a pure function of the run —
/// independent of which worker thread ran which shard. Drop counts add up.
pub fn merge_snapshots(parts: impl IntoIterator<Item = TraceSnapshot>) -> TraceSnapshot {
    let mut merged = TraceSnapshot {
        records: Vec::new(),
        dropped: 0,
    };
    for part in parts {
        merged.records.extend(part.records);
        merged.dropped += part.dropped;
    }
    merged
}

/// Exact whole microseconds of a simulated time value (floor), the unit of
/// every exported timestamp.
pub fn micros(seconds: Rational) -> i64 {
    (seconds * Rational::from(1_000_000)).floor()
}

/// Exact whole microseconds since the origin of a time point.
pub fn micros_of(at: TimePoint) -> i64 {
    micros(at.seconds())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbm_time::TimeDelta;

    fn t(ms: i64) -> TimePoint {
        TimePoint::ZERO + TimeDelta::from_millis(ms)
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tr = Tracer::disabled();
        assert!(!tr.is_enabled());
        let s = tr.begin_span("x", Category::Serve, t(0), SpanId::NONE, None);
        assert!(s.is_none());
        tr.attr(s, "k", 1u64);
        tr.end_span(s, t(1));
        tr.set_now(t(5));
        assert_eq!(tr.now(), TimePoint::ZERO);
        assert_eq!(tr.event_now("e", Category::Fault, vec![]), SpanId::NONE);
        assert!(tr.snapshot().records.is_empty());
        assert!(tr.is_empty());
    }

    #[test]
    fn spans_record_parent_links_and_attrs() {
        let tr = Tracer::new();
        let root = tr.begin_span("root", Category::Serve, t(0), SpanId::NONE, Some(3));
        let child = tr.begin_span("child", Category::Storage, t(1), root, Some(3));
        tr.attr(child, "bytes", 512u64);
        tr.end_span(child, t(2));
        tr.end_span(root, t(3));
        let snap = tr.snapshot();
        assert_eq!(snap.records.len(), 2);
        assert_eq!(snap.records[0].name, "root");
        assert_eq!(snap.records[1].parent, root);
        assert_eq!(snap.records[1].end, Some(t(2)));
        assert_eq!(snap.records[1].attr_i64("bytes"), 512);
        assert!(snap.records[1].parent.raw() < snap.records[1].id);
    }

    #[test]
    fn clones_share_one_ring() {
        let tr = Tracer::new();
        let clone = tr.clone();
        clone.set_now(t(9));
        clone.event_now("fault", Category::Fault, vec![("offset", 7u64.into())]);
        assert_eq!(tr.now(), t(9));
        let snap = tr.snapshot();
        assert_eq!(snap.records.len(), 1);
        assert_eq!(snap.records[0].start, t(9));
        assert_eq!(snap.records[0].kind, RecordKind::Instant);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let tr = Tracer::with_capacity(3);
        for i in 0..5 {
            tr.event("e", Category::Serve, t(i), SpanId::NONE, None, vec![]);
        }
        let snap = tr.snapshot();
        assert_eq!(snap.records.len(), 3);
        assert_eq!(snap.dropped, 2);
        assert_eq!(snap.records[0].id, 2, "oldest two evicted");
        // Ending an evicted span is a harmless no-op.
        tr.end_span(SpanId(0), t(9));
    }

    #[test]
    fn micros_floor_exact() {
        assert_eq!(micros(Rational::new(1, 2)), 500_000);
        assert_eq!(micros(Rational::new(1, 3)), 333_333);
        assert_eq!(micros_of(t(40)), 40_000);
        assert_eq!(micros(Rational::from(-1)), -1_000_000);
    }

    #[test]
    fn attr_values_convert() {
        assert_eq!(AttrValue::from(3usize).as_i64(), Some(3));
        assert_eq!(AttrValue::from(-2i64).as_i64(), Some(-2));
        assert_eq!(AttrValue::from("x").as_str(), Some("x"));
        assert_eq!(AttrValue::from("y".to_owned()).as_str(), Some("y"));
        assert_eq!(AttrValue::from("x").as_i64(), None);
        assert_eq!(AttrValue::U64(u64::MAX).as_i64(), None);
    }
}
