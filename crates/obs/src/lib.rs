//! # tbm-obs — deterministic observability for the TBM pipeline
//!
//! Time-based media debugging has a reproducibility problem: a deadline
//! miss seen once under load is gone by the next run. This crate removes
//! the problem at the root by timestamping *everything with the simulated
//! clock*. A trace is a pure function of the workload and seed — two runs
//! with the same inputs export byte-identical files — so a miss can be
//! replayed, diffed and attributed offline.
//!
//! Three pieces:
//!
//! * [`Tracer`] — a ring-buffered recorder of spans and instant events,
//!   cheap to clone (clones share the ring), free when disabled. The
//!   serving layer, the player and the storage fault injector all write
//!   into one timeline.
//! * [`MetricsRegistry`] — named counters, gauges and fixed-bucket
//!   [`Histogram`]s. Integer-only and `BTreeMap`-backed, so rendered
//!   snapshots are deterministic too.
//! * Exporters and analysis — [`chrome_trace`] (loads into Perfetto /
//!   `chrome://tracing`), [`text_timeline`], and [`attribute`], which
//!   walks element spans and assigns **exactly one** [`MissCause`] to
//!   every missed presentation deadline.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod attribution;
pub mod export;
pub mod metrics;
pub mod tracer;

pub use attribution::{
    attribute, AttributionReport, MissAttribution, MissCause, ATTR_DECODE_US, ATTR_ELEMENT_INDEX,
    ATTR_FAILOVER_US, ATTR_INHERITED_US, ATTR_LATENESS_US, ATTR_NODELOSS_US, ATTR_RETRY_US,
    ATTR_STORAGE_US, ATTR_WAIT_US, ELEMENT_SPAN,
};
pub use export::{chrome_trace, chrome_trace_to_writer, text_timeline, validate_json};
pub use metrics::{Histogram, MetricsRegistry, BYTES_BUCKETS, LATENCY_BUCKETS_US, MAX_BUCKETS};
pub use tracer::{
    merge_snapshots, micros, micros_of, AttrValue, Category, RecordKind, SpanId, TraceRecord,
    TraceSnapshot, Tracer, DEFAULT_TRACE_CAPACITY,
};
