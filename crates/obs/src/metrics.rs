//! A registry of named counters, gauges and fixed-bucket histograms.
//!
//! Everything is integer-valued and stored in `BTreeMap`s, so a rendered
//! snapshot is deterministic: same run, same bytes. Histograms use *fixed*
//! bucket boundaries declared by the observer — the classic
//! monitoring-system trade: O(buckets) memory, exact counts per bucket,
//! quantiles answered as the upper bound of the bucket holding the rank
//! (the true maximum is tracked exactly alongside).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Hard cap on bucket slots per histogram (boundaries + one overflow
/// bucket). Small and fixed so a [`Histogram`] is `Copy`.
pub const MAX_BUCKETS: usize = 16;

/// Bucket boundaries for latency-shaped values in microseconds: 50 µs to
/// 2 s, roughly geometric. Used for lateness, service time and read time.
pub const LATENCY_BUCKETS_US: [u64; 15] = [
    50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000,
    1_000_000, 2_000_000,
];

/// Bucket boundaries for byte-sized values: 1 KiB to 1 GiB, ×4 per step.
/// Used for cache occupancy.
pub const BYTES_BUCKETS: [u64; 11] = [
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
    1 << 22,
    1 << 24,
    1 << 26,
    1 << 28,
    1 << 30,
];

/// A fixed-boundary histogram of `u64` observations.
///
/// `bounds` are inclusive upper limits of the first `bounds.len()` buckets;
/// everything larger lands in the overflow bucket. Count, sum and exact
/// maximum ride along, so means and worst cases need no approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    bounds: &'static [u64],
    counts: [u64; MAX_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram over `bounds` (sorted ascending, at most
    /// [`MAX_BUCKETS`]` - 1` boundaries).
    pub fn new(bounds: &'static [u64]) -> Histogram {
        assert!(bounds.len() < MAX_BUCKETS, "too many histogram buckets");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds not sorted");
        Histogram {
            bounds,
            counts: [0; MAX_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The exact largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Integer mean of the observations (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The bucket boundaries.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Per-bucket counts: `bounds.len() + 1` entries, overflow last.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts[..self.bounds.len() + 1]
    }

    /// Merges `other` into `self`: per-bucket counts, count and sum add,
    /// the exact maximum is the larger of the two. Both histograms must
    /// share the same bucket boundaries — merging distributions recorded
    /// over different buckets has no exact answer.
    ///
    /// This is the cross-shard rollup primitive: every shard records
    /// lateness/service over [`LATENCY_BUCKETS_US`], so a merged histogram
    /// answers global p50/p99 with exactly the fidelity of a single-shard
    /// run.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms over different bucket bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The nearest-rank `p`-th percentile (`p` in 0..=100), answered as the
    /// inclusive upper bound of the bucket holding that rank. Observations
    /// in the overflow bucket answer with the exact maximum. 0 when empty.
    pub fn quantile(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (p * self.count).div_ceil(100).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.bucket_counts().iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i < self.bounds.len() {
                    // The true values in this bucket are ≤ its bound and ≤
                    // the global max.
                    self.bounds[i].min(self.max)
                } else {
                    self.max
                };
            }
        }
        self.max
    }
}

/// A registry of named counters, gauges and histograms.
///
/// Names are strings with dotted paths (`"serve.elements.served"`) —
/// usually static, but owned names are accepted so rollups can derive
/// per-shard prefixes (`"shard0.serve.elements.served"`) at runtime.
/// Iteration and rendering are in name order, so a rendered registry is
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `by` to counter `name` (created at 0 on first use).
    pub fn inc(&mut self, name: impl Into<String>, by: u64) {
        *self.counters.entry(name.into()).or_insert(0) += by;
    }

    /// The value of counter `name` (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: impl Into<String>, value: i64) {
        self.gauges.insert(name.into(), value);
    }

    /// The value of gauge `name` (0 when never set).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Records `value` into histogram `name`, creating it over `bounds` on
    /// first use. The bounds of an existing histogram are kept.
    pub fn observe(&mut self, name: impl Into<String>, bounds: &'static [u64], value: u64) {
        self.histograms
            .entry(name.into())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// The histogram named `name`, if any value was ever observed.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.histograms.get(name).copied()
    }

    /// The histogram named `name`, or an empty one over `bounds`.
    pub fn histogram_or_empty(&self, name: &str, bounds: &'static [u64]) -> Histogram {
        self.histogram(name)
            .unwrap_or_else(|| Histogram::new(bounds))
    }

    /// Counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> + '_ {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds every metric of `other` into this registry under
    /// `prefix + name`: counters and gauges add, histograms
    /// [`Histogram::merge`]. With an empty prefix this is a plain additive
    /// rollup — the shard pattern is one call per shard with
    /// `"shard{i}."` and one with `""` for the global aggregate.
    ///
    /// Gauges *add* rather than last-write-wins because a rollup of
    /// point-in-time gauges (cache occupancy per shard) reads as the
    /// fleet-wide total.
    ///
    /// A **non-empty** prefix claims its namespace: every existing metric
    /// under `prefix` is dropped before the merge, so re-rolling a rollup
    /// after a topology change (a shard migrated away, a node count
    /// shrank) cannot leave stale `shard{i}.*` gauges behind. The empty
    /// prefix stays purely additive — it *is* the aggregate.
    pub fn merge_prefixed(&mut self, other: &MetricsRegistry, prefix: &str) {
        if !prefix.is_empty() {
            self.counters.retain(|name, _| !name.starts_with(prefix));
            self.gauges.retain(|name, _| !name.starts_with(prefix));
            self.histograms.retain(|name, _| !name.starts_with(prefix));
        }
        for (name, v) in &other.counters {
            *self.counters.entry(format!("{prefix}{name}")).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(format!("{prefix}{name}")).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(format!("{prefix}{name}"))
                .and_modify(|mine| mine.merge(h))
                .or_insert(*h);
        }
    }

    /// A plain-text exposition of every metric, one per line, in name
    /// order — deterministic for a deterministic run.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {name} count={} sum={} mean={} p50={} p99={} max={}",
                h.count(),
                h.sum(),
                h.mean(),
                h.quantile(50),
                h.quantile(99),
                h.max()
            );
        }
        out
    }

    /// Every metric flattened to named numeric samples, in name order — the
    /// extraction hook a telemetry plane compresses from. Counters and
    /// gauges emit one sample each; every histogram emits
    /// `name.count/.mean/.p50/.p99/.max`, so a per-tick delta of two
    /// flattenings captures the same shape the textual
    /// [`render`](MetricsRegistry::render) shows.
    pub fn flat_samples(&self) -> Vec<(String, f64)> {
        let mut out =
            Vec::with_capacity(self.counters.len() + self.gauges.len() + 5 * self.histograms.len());
        for (name, v) in &self.counters {
            out.push((name.clone(), *v as f64));
        }
        for (name, v) in &self.gauges {
            out.push((name.clone(), *v as f64));
        }
        for (name, h) in &self.histograms {
            out.push((format!("{name}.count"), h.count() as f64));
            out.push((format!("{name}.mean"), h.mean() as f64));
            out.push((format!("{name}.p50"), h.quantile(50) as f64));
            out.push((format!("{name}.p99"), h.quantile(99) as f64));
            out.push((format!("{name}.max"), h.max() as f64));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(&LATENCY_BUCKETS_US);
        assert_eq!(h.quantile(50), 0);
        for us in [10u64, 60, 150, 150, 900, 40_000, 3_000_000] {
            h.observe(us);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), 3_000_000);
        assert_eq!(h.sum(), 10 + 60 + 150 + 150 + 900 + 40_000 + 3_000_000);
        // Rank 4 of 7 lands in the 200 µs bucket.
        assert_eq!(h.quantile(50), 200);
        // The top observation is in the overflow bucket: exact max.
        assert_eq!(h.quantile(100), 3_000_000);
        assert_eq!(h.quantile(0), 50);
        let counts = h.bucket_counts();
        assert_eq!(counts.len(), LATENCY_BUCKETS_US.len() + 1);
        assert_eq!(counts[0], 1, "10 µs in the ≤50 bucket");
        assert_eq!(counts[counts.len() - 1], 1, "3 s in the overflow bucket");
        assert_eq!(counts.iter().sum::<u64>(), h.count());
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let mut h = Histogram::new(&LATENCY_BUCKETS_US);
        h.observe(75);
        // Rank 1 is in the ≤100 bucket, but the max is 75.
        assert_eq!(h.quantile(99), 75);
        assert_eq!(h.mean(), 75);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut m = MetricsRegistry::new();
        m.inc("serve.elements", 3);
        m.inc("serve.elements", 2);
        m.set_gauge("cache.bytes", 1024);
        m.observe("serve.lateness_us", &LATENCY_BUCKETS_US, 5_000);
        assert_eq!(m.counter("serve.elements"), 5);
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.gauge("cache.bytes"), 1024);
        assert_eq!(m.gauge("absent"), 0);
        assert_eq!(m.histogram("serve.lateness_us").unwrap().count(), 1);
        assert!(m.histogram("absent").is_none());
        assert_eq!(
            m.histogram_or_empty("absent", &LATENCY_BUCKETS_US).count(),
            0
        );
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let mut m = MetricsRegistry::new();
        m.inc("z.last", 1);
        m.inc("a.first", 2);
        m.set_gauge("m.middle", -7);
        m.observe("h.lat", &LATENCY_BUCKETS_US, 99);
        let r = m.render();
        let a = r.find("a.first").unwrap();
        let z = r.find("z.last").unwrap();
        assert!(a < z);
        assert!(r.contains("gauge m.middle -7"));
        assert!(r.contains("histogram h.lat count=1"));
        assert_eq!(m.clone().render(), r);
    }

    #[test]
    #[should_panic(expected = "bounds not sorted")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(&[5, 3]);
    }

    #[test]
    fn merge_is_exact_union_of_observations() {
        let mut a = Histogram::new(&LATENCY_BUCKETS_US);
        let mut b = Histogram::new(&LATENCY_BUCKETS_US);
        let mut both = Histogram::new(&LATENCY_BUCKETS_US);
        for us in [10u64, 150, 900] {
            a.observe(us);
            both.observe(us);
        }
        for us in [60u64, 150, 3_000_000] {
            b.observe(us);
            both.observe(us);
        }
        a.merge(&b);
        assert_eq!(a, both, "merge must equal observing the union directly");
        assert_eq!(a.quantile(99), both.quantile(99));
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&LATENCY_BUCKETS_US);
        a.merge(&Histogram::new(&BYTES_BUCKETS));
    }

    #[test]
    fn merge_prefixed_rolls_up_shards() {
        let mut shard0 = MetricsRegistry::new();
        shard0.inc("serve.elements.served", 10);
        shard0.set_gauge("cache.bytes", 100);
        shard0.observe("serve.lateness_us", &LATENCY_BUCKETS_US, 80);
        let mut shard1 = MetricsRegistry::new();
        shard1.inc("serve.elements.served", 5);
        shard1.set_gauge("cache.bytes", 50);
        shard1.observe("serve.lateness_us", &LATENCY_BUCKETS_US, 400);

        let mut rollup = MetricsRegistry::new();
        rollup.merge_prefixed(&shard0, "shard0.");
        rollup.merge_prefixed(&shard1, "shard1.");
        rollup.merge_prefixed(&shard0, "");
        rollup.merge_prefixed(&shard1, "");

        assert_eq!(rollup.counter("shard0.serve.elements.served"), 10);
        assert_eq!(rollup.counter("shard1.serve.elements.served"), 5);
        assert_eq!(rollup.counter("serve.elements.served"), 15);
        assert_eq!(rollup.gauge("cache.bytes"), 150, "gauges add in a rollup");
        let h = rollup.histogram("serve.lateness_us").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 400);
        assert_eq!(
            rollup.histogram("shard0.serve.lateness_us").unwrap().max(),
            80
        );
    }

    #[test]
    fn merge_prefixed_clears_stale_keys_when_shards_shrink() {
        let mut shard0 = MetricsRegistry::new();
        shard0.inc("serve.elements.served", 10);
        shard0.set_gauge("cache.bytes", 100);
        shard0.observe("serve.lateness_us", &LATENCY_BUCKETS_US, 80);
        let mut shard1 = MetricsRegistry::new();
        shard1.inc("serve.elements.served", 5);
        shard1.set_gauge("cache.bytes", 50);

        // Round 1: two shards.
        let mut rollup = MetricsRegistry::new();
        rollup.merge_prefixed(&shard0, "shard0.");
        rollup.merge_prefixed(&shard1, "shard1.");
        assert_eq!(rollup.gauge("shard1.cache.bytes"), 50);

        // Shard 1 migrated away; shard 0 re-rolls into the same registry.
        // Its own namespace is replaced (not doubled), and a rollup that
        // stops merging shard1 can evict the stale keys explicitly.
        let mut smaller = MetricsRegistry::new();
        smaller.inc("serve.elements.served", 12);
        rollup.merge_prefixed(&smaller, "shard0.");
        assert_eq!(
            rollup.counter("shard0.serve.elements.served"),
            12,
            "a re-merge replaces the prefix namespace, never doubles it"
        );
        assert_eq!(
            rollup.gauge("shard0.cache.bytes"),
            0,
            "gauges absent from the new snapshot are dropped"
        );
        assert!(
            rollup.histogram("shard0.serve.lateness_us").is_none(),
            "histograms absent from the new snapshot are dropped"
        );
        rollup.merge_prefixed(&MetricsRegistry::new(), "shard1.");
        assert_eq!(
            rollup.counter("shard1.serve.elements.served"),
            0,
            "an empty merge clears a vanished shard's namespace"
        );
        assert_eq!(rollup.gauge("shard1.cache.bytes"), 0);

        // Prefix matching is exact: clearing "shard1." must not touch a
        // hypothetical "shard10." namespace.
        rollup.inc("shard10.serve.elements.served", 3);
        rollup.merge_prefixed(&MetricsRegistry::new(), "shard1.");
        assert_eq!(rollup.counter("shard10.serve.elements.served"), 3);

        // The empty prefix stays additive — it is the global aggregate.
        let mut agg = MetricsRegistry::new();
        agg.merge_prefixed(&shard0, "");
        agg.merge_prefixed(&shard1, "");
        assert_eq!(agg.counter("serve.elements.served"), 15);
    }

    /// Pins `quantile` edge behavior — p=0, p=100, empty, single bucket —
    /// so downstream consumers (the telemetry plane compresses p50/p99
    /// samples per tick) can rely on exact semantics.
    #[test]
    fn quantile_edges_are_pinned() {
        // Empty: every percentile answers 0, including the edges.
        let empty = Histogram::new(&LATENCY_BUCKETS_US);
        assert_eq!(empty.quantile(0), 0);
        assert_eq!(empty.quantile(50), 0);
        assert_eq!(empty.quantile(100), 0);

        // p=0 clamps to rank 1 — the bucket of the smallest observation,
        // answered as that bucket's bound capped by the exact max.
        let mut h = Histogram::new(&LATENCY_BUCKETS_US);
        for us in [80u64, 300, 40_000] {
            h.observe(us);
        }
        assert_eq!(h.quantile(0), 100, "rank 1 lands in the (50, 100] bucket");

        // p=100 answers from the last occupied bucket, capped by the max…
        assert_eq!(h.quantile(100), 40_000, "50_000 bound min'd with max");
        // …and exactly the max when it overflows every bound.
        let mut over = Histogram::new(&LATENCY_BUCKETS_US);
        over.observe(9_000_000);
        assert_eq!(over.quantile(100), 9_000_000);
        assert_eq!(over.quantile(1), 9_000_000);

        // Single occupied bucket: one observation answers every percentile
        // with the exact value (bound min'd with max), never the bound.
        let mut one = Histogram::new(&LATENCY_BUCKETS_US);
        one.observe(60);
        for p in [0u64, 1, 50, 99, 100] {
            assert_eq!(one.quantile(p), 60, "p={p}");
        }
    }

    /// Golden render: the exact exposition text, byte for byte, so
    /// exp_claims diffs that embed rendered registries stay stable.
    #[test]
    fn render_golden() {
        let mut m = MetricsRegistry::new();
        m.inc("serve.misses", 2);
        m.inc("cache.evictions", 7);
        m.set_gauge("cache.bytes", -3);
        m.observe("serve.lateness_us", &LATENCY_BUCKETS_US, 150);
        m.observe("serve.lateness_us", &LATENCY_BUCKETS_US, 900);
        assert_eq!(
            m.render(),
            "counter cache.evictions 7\n\
             counter serve.misses 2\n\
             gauge cache.bytes -3\n\
             histogram serve.lateness_us count=2 sum=1050 mean=525 p50=200 p99=900 max=900\n"
        );
    }

    #[test]
    fn flat_samples_mirror_render_in_name_order() {
        let mut m = MetricsRegistry::new();
        m.inc("serve.misses", 2);
        m.set_gauge("cache.bytes", 42);
        m.observe("serve.lateness_us", &LATENCY_BUCKETS_US, 150);
        m.observe("serve.lateness_us", &LATENCY_BUCKETS_US, 900);
        let samples = m.flat_samples();
        let expect = [
            ("serve.misses", 2.0),
            ("cache.bytes", 42.0),
            ("serve.lateness_us.count", 2.0),
            ("serve.lateness_us.mean", 525.0),
            ("serve.lateness_us.p50", 200.0),
            ("serve.lateness_us.p99", 900.0),
            ("serve.lateness_us.max", 900.0),
        ];
        assert_eq!(samples.len(), expect.len());
        for ((name, v), (want_name, want_v)) in samples.iter().zip(expect) {
            assert_eq!(name, want_name);
            assert_eq!(*v, want_v);
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Merging any two histograms over the same bounds — including
            /// empty and single-observation operands — equals observing
            /// the union directly, in every exposed statistic.
            #[test]
            fn histogram_merge_equals_union(
                xs in proptest::collection::vec(0u64..5_000_000, 0..12),
                ys in proptest::collection::vec(0u64..5_000_000, 0..12),
            ) {
                let mut a = Histogram::new(&LATENCY_BUCKETS_US);
                let mut b = Histogram::new(&LATENCY_BUCKETS_US);
                let mut both = Histogram::new(&LATENCY_BUCKETS_US);
                for &v in &xs {
                    a.observe(v);
                    both.observe(v);
                }
                for &v in &ys {
                    b.observe(v);
                    both.observe(v);
                }
                a.merge(&b);
                prop_assert_eq!(a, both);
                for p in [0u64, 50, 99, 100] {
                    prop_assert_eq!(a.quantile(p), both.quantile(p));
                }
            }

            /// An empty histogram is the identity of merge, on both sides.
            #[test]
            fn empty_histogram_is_merge_identity(
                xs in proptest::collection::vec(0u64..5_000_000, 0..12),
            ) {
                let mut h = Histogram::new(&LATENCY_BUCKETS_US);
                for &v in &xs {
                    h.observe(v);
                }
                let mut left = Histogram::new(&LATENCY_BUCKETS_US);
                left.merge(&h);
                prop_assert_eq!(left, h);
                let mut right = h;
                right.merge(&Histogram::new(&LATENCY_BUCKETS_US));
                prop_assert_eq!(right, h);
            }
        }
    }
}
