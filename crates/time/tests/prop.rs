//! Property-based tests for exact time arithmetic.

use proptest::prelude::*;
use tbm_time::{AllenRelation, Interval, Rational, TimeDelta, TimePoint, TimeSystem};

/// Small rationals that never overflow under a few composed operations.
fn small_rational() -> impl Strategy<Value = Rational> {
    (-10_000i64..10_000, 1i64..10_000).prop_map(|(n, d)| Rational::new(n, d))
}

fn small_interval() -> impl Strategy<Value = Interval> {
    (-1_000i64..1_000, 0i64..1_000)
        .prop_map(|(s, d)| Interval::new(TimePoint::from_secs(s), TimeDelta::from_secs(d)).unwrap())
}

proptest! {
    #[test]
    fn rational_add_commutes(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn rational_add_associates(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn rational_mul_distributes(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn rational_sub_inverts_add(a in small_rational(), b in small_rational()) {
        prop_assert_eq!((a + b) - b, a);
    }

    #[test]
    fn rational_recip_roundtrip(a in small_rational()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a.recip().recip(), a);
        prop_assert_eq!(a * a.recip(), Rational::ONE);
    }

    #[test]
    fn rational_always_reduced(n in -100_000i64..100_000, d in 1i64..100_000) {
        let r = Rational::new(n, d);
        let g = gcd(r.numer().unsigned_abs(), r.denom().unsigned_abs());
        prop_assert!(r.denom() > 0);
        prop_assert!(g <= 1 || r.numer() == 0);
    }

    #[test]
    fn floor_ceil_bracket(a in small_rational()) {
        let f = a.floor();
        let c = a.ceil();
        prop_assert!(Rational::from(f) <= a);
        prop_assert!(a <= Rational::from(c));
        prop_assert!(c - f <= 1);
    }

    #[test]
    fn ordering_agrees_with_f64(a in small_rational(), b in small_rational()) {
        // f64 has enough precision for these small values to agree with exact order.
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        }
    }

    #[test]
    fn tick_roundtrip_on_grid(f in 1i64..100_000, i in -1_000_000i64..1_000_000) {
        let sys = TimeSystem::from_hz(f);
        let t = sys.tick_to_seconds(i);
        prop_assert!(sys.is_on_grid(t));
        prop_assert_eq!(sys.seconds_to_tick_floor(t), i);
        prop_assert_eq!(sys.seconds_to_tick_ceil(t), i);
        prop_assert_eq!(sys.seconds_to_tick_round(t), i);
    }

    #[test]
    fn tick_floor_monotone(f in 1i64..10_000, a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let sys = TimeSystem::from_hz(f);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let tl = sys.tick_to_seconds(lo);
        let th = sys.tick_to_seconds(hi);
        prop_assert!(sys.seconds_to_tick_floor(tl) <= sys.seconds_to_tick_floor(th));
    }

    #[test]
    fn allen_classification_is_total_and_inverse_consistent(a in small_interval(), b in small_interval()) {
        let r = AllenRelation::classify(a, b);
        let ri = AllenRelation::classify(b, a);
        prop_assert_eq!(r.inverse(), ri);
        // Exactly one relation holds.
        let held: Vec<_> = AllenRelation::ALL
            .iter()
            .filter(|cand| **cand == r)
            .collect();
        prop_assert_eq!(held.len(), 1);
    }

    #[test]
    fn interval_translate_preserves_duration(iv in small_interval(), d in -1_000i64..1_000) {
        let moved = iv.translate(TimeDelta::from_secs(d));
        prop_assert_eq!(moved.duration(), iv.duration());
        prop_assert_eq!(moved.start() - iv.start(), TimeDelta::from_secs(d));
    }

    #[test]
    fn interval_intersection_symmetric(a in small_interval(), b in small_interval()) {
        prop_assert_eq!(a.intersection(b), b.intersection(a));
        prop_assert_eq!(a.overlaps(b), b.overlaps(a));
    }

    #[test]
    fn interval_span_contains_both(a in small_interval(), b in small_interval()) {
        let s = a.span(b);
        prop_assert!(s.contains_interval(a));
        prop_assert!(s.contains_interval(b));
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}
