//! Reduced rational numbers over `i64`.
//!
//! Media timing demands exact arithmetic: NTSC's 30000/1001 frame rate, CD
//! audio's 1/44100-second sample period, and the tick arithmetic that relates
//! them do not round-trip through `f64`. [`Rational`] keeps every value as a
//! fully reduced fraction with a positive denominator, performing all
//! intermediate arithmetic in `i128` so that reducible expressions never
//! overflow spuriously.

use crate::TimeError;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num/den` with `den > 0`, always fully reduced.
///
/// `Rational` implements total ordering, hashing and the standard arithmetic
/// operators. The operator impls panic on overflow or division by zero (which
/// cannot occur for in-range media timing); the `checked_*` methods report
/// these conditions as [`TimeError`] instead.
///
/// ```
/// use tbm_time::Rational;
/// let ntsc = Rational::new(30000, 1001);
/// assert_eq!(ntsc.recip() * Rational::from(30000), Rational::new(30000 * 1001, 30000));
/// assert_eq!(Rational::new(4, 8), Rational::new(1, 2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i64,
    den: i64, // invariant: den > 0 and gcd(|num|, den) == 1
}

/// Greatest common divisor over `i128` magnitudes.
fn gcd128(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// Exact zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// Exact one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a reduced rational. Panics if `den == 0` or reduction overflows.
    ///
    /// Prefer [`Rational::checked_new`] when the inputs are untrusted.
    pub fn new(num: i64, den: i64) -> Rational {
        Rational::checked_new(num, den).expect("invalid rational")
    }

    /// Const-context constructor: creates a reduced rational at compile time.
    ///
    /// Panics (at compile time when used in a const) if `den == 0` or the
    /// magnitudes cannot be represented after reduction.
    pub const fn const_new(num: i64, den: i64) -> Rational {
        if den == 0 {
            panic!("rational denominator is zero");
        }
        let sign: i64 = if den < 0 { -1 } else { 1 };
        // const-friendly gcd on magnitudes
        let mut a = num.unsigned_abs();
        let mut b = den.unsigned_abs();
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        if a == 0 {
            return Rational { num: 0, den: 1 };
        }
        let num = sign * (num / a as i64);
        let den = sign * (den / a as i64);
        Rational { num, den }
    }

    /// Creates a reduced rational, reporting zero denominators and overflow.
    pub fn checked_new(num: i64, den: i64) -> Result<Rational, TimeError> {
        if den == 0 {
            return Err(TimeError::ZeroDenominator);
        }
        Self::reduce(num as i128, den as i128)
    }

    /// Reduces an `i128` fraction into the `i64`-backed representation.
    fn reduce(num: i128, den: i128) -> Result<Rational, TimeError> {
        debug_assert!(den != 0);
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd128(num, den);
        let (num, den) = if g == 0 {
            (0, 1)
        } else {
            (sign * num / g, sign * den / g)
        };
        let num = i64::try_from(num).map_err(|_| TimeError::Overflow { op: "reduce" })?;
        let den = i64::try_from(den).map_err(|_| TimeError::Overflow { op: "reduce" })?;
        Ok(Rational { num, den })
    }

    /// The (reduced) numerator. Carries the sign of the value.
    #[inline]
    pub fn numer(self) -> i64 {
        self.num
    }

    /// The (reduced) denominator; always positive.
    #[inline]
    pub fn denom(self) -> i64 {
        self.den
    }

    /// `true` when the value is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// `true` when the value is an integer.
    #[inline]
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// The sign of the value: `-1`, `0`, or `1`.
    #[inline]
    pub fn signum(self) -> i64 {
        self.num.signum()
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse. Panics when the value is zero.
    pub fn recip(self) -> Rational {
        self.checked_recip().expect("reciprocal of zero")
    }

    /// Multiplicative inverse, reporting zero input.
    pub fn checked_recip(self) -> Result<Rational, TimeError> {
        if self.num == 0 {
            return Err(TimeError::DivisionByZero);
        }
        let sign = self.num.signum();
        Ok(Rational {
            num: sign * self.den,
            den: self.num.abs(),
        })
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Rational) -> Result<Rational, TimeError> {
        let num = self.num as i128 * rhs.den as i128 + rhs.num as i128 * self.den as i128;
        let den = self.den as i128 * rhs.den as i128;
        Self::reduce(num, den).map_err(|_| TimeError::Overflow { op: "add" })
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Rational) -> Result<Rational, TimeError> {
        let num = self.num as i128 * rhs.den as i128 - rhs.num as i128 * self.den as i128;
        let den = self.den as i128 * rhs.den as i128;
        Self::reduce(num, den).map_err(|_| TimeError::Overflow { op: "sub" })
    }

    /// Checked multiplication.
    pub fn checked_mul(self, rhs: Rational) -> Result<Rational, TimeError> {
        let num = self.num as i128 * rhs.num as i128;
        let den = self.den as i128 * rhs.den as i128;
        Self::reduce(num, den).map_err(|_| TimeError::Overflow { op: "mul" })
    }

    /// Checked division; reports division by zero.
    pub fn checked_div(self, rhs: Rational) -> Result<Rational, TimeError> {
        if rhs.num == 0 {
            return Err(TimeError::DivisionByZero);
        }
        let num = self.num as i128 * rhs.den as i128;
        let den = self.den as i128 * rhs.num as i128;
        Self::reduce(num, den).map_err(|_| TimeError::Overflow { op: "div" })
    }

    /// Largest integer not greater than the value.
    pub fn floor(self) -> i64 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            // Rust's `/` truncates toward zero; adjust for negative values.
            (self.num - (self.den - 1)) / self.den
        }
    }

    /// Smallest integer not less than the value.
    pub fn ceil(self) -> i64 {
        if self.num > 0 {
            (self.num + (self.den - 1)) / self.den
        } else {
            self.num / self.den
        }
    }

    /// Nearest integer; exact halves round away from zero.
    pub fn round(self) -> i64 {
        let twice = Rational::new(self.num.signum(), 2);
        (self + twice).trunc_toward_neg_for_round(self.num.signum())
    }

    /// Helper for `round`: floor for positive bias, ceil for negative.
    fn trunc_toward_neg_for_round(self, sign: i64) -> i64 {
        if sign >= 0 {
            self.floor()
        } else {
            self.ceil()
        }
    }

    /// Lossy conversion to `f64`, for presentation only.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Rational {
        Rational { num: v, den: 1 }
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Rational {
        Rational {
            num: v as i64,
            den: 1,
        }
    }
}

impl From<u32> for Rational {
    fn from(v: u32) -> Rational {
        Rational {
            num: v as i64,
            den: 1,
        }
    }
}

impl Default for Rational {
    fn default() -> Rational {
        Rational::ZERO
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // Cross-multiply in i128; denominators are positive so order is preserved.
        let lhs = self.num as i128 * other.den as i128;
        let rhs = other.num as i128 * self.den as i128;
        lhs.cmp(&rhs)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        self.checked_add(rhs).expect("rational add overflow")
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self.checked_sub(rhs).expect("rational sub overflow")
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        self.checked_mul(rhs).expect("rational mul overflow")
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        self.checked_div(rhs)
            .expect("rational div by zero/overflow")
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_on_construction() {
        assert_eq!(Rational::new(4, 8), Rational::new(1, 2));
        assert_eq!(Rational::new(-4, 8), Rational::new(-1, 2));
        assert_eq!(Rational::new(4, -8), Rational::new(-1, 2));
        assert_eq!(Rational::new(-4, -8), Rational::new(1, 2));
        assert_eq!(Rational::new(0, -7), Rational::ZERO);
    }

    #[test]
    fn zero_denominator_rejected() {
        assert_eq!(
            Rational::checked_new(1, 0).unwrap_err(),
            TimeError::ZeroDenominator
        );
    }

    #[test]
    fn arithmetic_basics() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 6);
        assert_eq!(a + b, Rational::new(1, 2));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 18));
        assert_eq!(a / b, Rational::from(2));
        assert_eq!(-a, Rational::new(-1, 3));
    }

    #[test]
    fn ntsc_frame_times_are_exact() {
        // 30000/1001 fps: 30000 frames take exactly 1001 seconds.
        let rate = Rational::new(30000, 1001);
        let period = rate.recip();
        let total = period * Rational::from(30000);
        assert_eq!(total, Rational::from(1001));
    }

    #[test]
    fn ordering_is_exact() {
        assert!(Rational::new(1, 3) < Rational::new(34, 100));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert_eq!(
            Rational::new(2, 4).cmp(&Rational::new(1, 2)),
            Ordering::Equal
        );
    }

    #[test]
    fn floor_ceil_round() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(7, 2).round(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::new(-7, 2).round(), -4);
        assert_eq!(Rational::new(5, 3).round(), 2);
        assert_eq!(Rational::new(4, 3).round(), 1);
        assert_eq!(Rational::from(9).floor(), 9);
        assert_eq!(Rational::from(-9).ceil(), -9);
    }

    #[test]
    fn reciprocal() {
        assert_eq!(Rational::new(3, 4).recip(), Rational::new(4, 3));
        assert_eq!(Rational::new(-3, 4).recip(), Rational::new(-4, 3));
        assert!(Rational::ZERO.checked_recip().is_err());
    }

    #[test]
    fn division_by_zero_reported() {
        assert_eq!(
            Rational::ONE.checked_div(Rational::ZERO).unwrap_err(),
            TimeError::DivisionByZero
        );
    }

    #[test]
    fn overflow_reported_not_wrapped() {
        let big = Rational::from(i64::MAX);
        assert!(big.checked_add(Rational::ONE).is_err());
        assert!(big.checked_mul(Rational::from(2)).is_err());
    }

    #[test]
    fn reducible_intermediates_do_not_overflow() {
        // (MAX/3) * 3 stays in range because reduction happens on i128.
        let third = Rational::new(i64::MAX, 3);
        let r = third.checked_mul(Rational::from(3)).unwrap();
        assert_eq!(r, Rational::from(i64::MAX));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Rational::new(30000, 1001).to_string(), "30000/1001");
        assert_eq!(Rational::from(25).to_string(), "25");
        assert_eq!(format!("{:?}", Rational::from(25)), "25/1");
    }

    #[test]
    fn min_max() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
