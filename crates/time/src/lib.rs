//! # tbm-time — exact time arithmetic for time-based media
//!
//! This crate provides the temporal substrate for the timed-stream data model
//! of Gibbs, Breiteneder and Tsichritzis (*Data Modeling of Time-Based Media*,
//! SIGMOD 1994). The paper's Definition 2 introduces *discrete time systems*
//! `D_f : i ↦ (1/f)·i` mapping integer *discrete time values* to continuous
//! time in seconds. Media timing must be exact — NTSC video runs at
//! 30000/1001 frames per second and any floating-point representation of that
//! rate accumulates drift — so everything here is built on reduced
//! [`Rational`] arithmetic.
//!
//! Contents:
//!
//! * [`Rational`] — reduced `i64/i64` rationals with overflow-checked
//!   arithmetic (via `i128` intermediates).
//! * [`TimeSystem`] — Definition 2's `D_f`, with exact tick↔seconds and
//!   tick↔tick conversion between systems.
//! * [`TimePoint`] / [`TimeDelta`] — continuous time values in seconds.
//! * [`Interval`] — half-open temporal intervals with the full Allen
//!   interval-relation algebra ([`AllenRelation`]).
//! * [`Timecode`] — presentation formatting (`H:MM:SS.mmm` and SMPTE-style
//!   `HH:MM:SS:FF`).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod allen;
mod error;
mod interval;
mod point;
mod rational;
mod system;
mod timecode;

pub use allen::AllenRelation;
pub use error::TimeError;
pub use interval::Interval;
pub use point::{TimeDelta, TimePoint};
pub use rational::Rational;
pub use system::TimeSystem;
pub use timecode::Timecode;
