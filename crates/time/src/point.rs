//! Continuous time values: points and deltas in seconds.
//!
//! The paper distinguishes *discrete time values* (integers, domain of `D_f`)
//! from *continuous time values* (seconds, range of `D_f`). [`TimePoint`] and
//! [`TimeDelta`] are newtypes over [`Rational`] seconds that keep the two
//! roles of "a position on the timeline" and "an extent of time" from being
//! mixed up accidentally.

use crate::Rational;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A position on the continuous timeline, in exact seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimePoint(Rational);

/// A signed extent of continuous time, in exact seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(Rational);

impl TimePoint {
    /// The timeline origin (0 s).
    pub const ZERO: TimePoint = TimePoint(Rational::ZERO);

    /// Wraps exact seconds as a time point.
    #[inline]
    pub fn from_seconds(s: Rational) -> TimePoint {
        TimePoint(s)
    }

    /// A time point at an integer number of seconds.
    #[inline]
    pub fn from_secs(s: i64) -> TimePoint {
        TimePoint(Rational::from(s))
    }

    /// The underlying exact seconds value.
    #[inline]
    pub fn seconds(self) -> Rational {
        self.0
    }

    /// Lossy seconds as `f64`, for presentation only.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0.to_f64()
    }

    /// Distance from the origin as a delta.
    #[inline]
    pub fn since_origin(self) -> TimeDelta {
        TimeDelta(self.0)
    }

    /// The earlier of two points.
    pub fn min(self, other: TimePoint) -> TimePoint {
        TimePoint(self.0.min(other.0))
    }

    /// The later of two points.
    pub fn max(self, other: TimePoint) -> TimePoint {
        TimePoint(self.0.max(other.0))
    }
}

impl TimeDelta {
    /// The zero extent.
    pub const ZERO: TimeDelta = TimeDelta(Rational::ZERO);

    /// Wraps exact seconds as a delta.
    #[inline]
    pub fn from_seconds(s: Rational) -> TimeDelta {
        TimeDelta(s)
    }

    /// A delta of an integer number of seconds.
    #[inline]
    pub fn from_secs(s: i64) -> TimeDelta {
        TimeDelta(Rational::from(s))
    }

    /// A delta of an integer number of milliseconds.
    #[inline]
    pub fn from_millis(ms: i64) -> TimeDelta {
        TimeDelta(Rational::new(ms, 1000))
    }

    /// A delta of an integer number of microseconds.
    #[inline]
    pub fn from_micros(us: i64) -> TimeDelta {
        TimeDelta(Rational::new(us, 1_000_000))
    }

    /// The underlying exact seconds value.
    #[inline]
    pub fn seconds(self) -> Rational {
        self.0
    }

    /// Lossy seconds as `f64`, for presentation only.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0.to_f64()
    }

    /// `true` when the extent is negative.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0.signum() < 0
    }

    /// `true` when the extent is exactly zero (the paper's "event" duration).
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0.is_zero()
    }

    /// Absolute extent.
    #[inline]
    pub fn abs(self) -> TimeDelta {
        TimeDelta(self.0.abs())
    }

    /// Scales the extent by a rational factor (temporal scaling derivation).
    #[inline]
    pub fn scale(self, factor: Rational) -> TimeDelta {
        TimeDelta(self.0 * factor)
    }

    /// The smaller of two deltas.
    pub fn min(self, other: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.min(other.0))
    }

    /// The larger of two deltas.
    pub fn max(self, other: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.max(other.0))
    }
}

impl From<Rational> for TimePoint {
    fn from(s: Rational) -> TimePoint {
        TimePoint(s)
    }
}

impl From<Rational> for TimeDelta {
    fn from(s: Rational) -> TimeDelta {
        TimeDelta(s)
    }
}

impl Add<TimeDelta> for TimePoint {
    type Output = TimePoint;
    fn add(self, rhs: TimeDelta) -> TimePoint {
        TimePoint(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for TimePoint {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TimeDelta> for TimePoint {
    type Output = TimePoint;
    fn sub(self, rhs: TimeDelta) -> TimePoint {
        TimePoint(self.0 - rhs.0)
    }
}

impl SubAssign<TimeDelta> for TimePoint {
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl Sub for TimePoint {
    type Output = TimeDelta;
    fn sub(self, rhs: TimePoint) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl AddAssign for TimeDelta {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl SubAssign for TimeDelta {
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl Neg for TimeDelta {
    type Output = TimeDelta;
    fn neg(self) -> TimeDelta {
        TimeDelta(-self.0)
    }
}

impl Mul<Rational> for TimeDelta {
    type Output = TimeDelta;
    fn mul(self, rhs: Rational) -> TimeDelta {
        TimeDelta(self.0 * rhs)
    }
}

impl fmt::Display for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_delta_arithmetic() {
        let p = TimePoint::from_secs(10);
        let d = TimeDelta::from_millis(500);
        assert_eq!((p + d).seconds(), Rational::new(21, 2));
        assert_eq!((p - d).seconds(), Rational::new(19, 2));
        assert_eq!((p + d) - p, d);
    }

    #[test]
    fn delta_arithmetic() {
        let a = TimeDelta::from_secs(3);
        let b = TimeDelta::from_millis(1500);
        assert_eq!(a + b, TimeDelta::from_seconds(Rational::new(9, 2)));
        assert_eq!(a - b, b);
        assert_eq!(-b, TimeDelta::from_seconds(Rational::new(-3, 2)));
        assert!((-b).is_negative());
        assert_eq!((-b).abs(), b);
    }

    #[test]
    fn scaling() {
        let d = TimeDelta::from_secs(10);
        assert_eq!(d.scale(Rational::new(1, 2)), TimeDelta::from_secs(5));
        assert_eq!(d * Rational::new(3, 2), TimeDelta::from_secs(15));
    }

    #[test]
    fn ordering_and_extremes() {
        let a = TimePoint::from_secs(1);
        let b = TimePoint::from_secs(2);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(
            TimeDelta::from_secs(1).max(TimeDelta::from_secs(2)),
            TimeDelta::from_secs(2)
        );
    }

    #[test]
    fn zero_duration_is_event() {
        assert!(TimeDelta::ZERO.is_zero());
        assert!(!TimeDelta::from_millis(1).is_zero());
    }

    #[test]
    fn display() {
        assert_eq!(TimePoint::from_secs(3).to_string(), "3s");
        assert_eq!(TimeDelta::from_millis(1500).to_string(), "3/2s");
    }
}
