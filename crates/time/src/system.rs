//! Discrete time systems (paper Definition 2).
//!
//! > *A discrete time system `D_f` is a mapping from integers to real numbers.
//! > Members of the domain are called discrete time values, members of the
//! > range are called continuous time values and measure time in seconds.
//! > The mapping is of the form `D_f : i ↦ (1/f)·i`, where `f` is called the
//! > frequency of the time system.*
//!
//! The paper's examples — `D_29.97` for North American video, `D_25` for
//! European video, `D_24` for film and `D_44100` for CD audio — are provided
//! as constants. Frequencies are rational so that `D_29.97` is represented
//! exactly as 30000/1001.

use crate::{Rational, TimeDelta, TimeError, TimePoint};
use std::fmt;

/// A discrete time system `D_f : i ↦ (1/f)·i` (Definition 2).
///
/// Discrete time values (*ticks*) are `i64`; continuous time values are exact
/// [`TimePoint`]s in seconds.
///
/// ```
/// use tbm_time::{TimeSystem, Rational};
/// let cd = TimeSystem::CD_AUDIO;
/// assert_eq!(cd.tick_to_seconds(44100), Rational::from(1).into());
/// let ntsc = TimeSystem::NTSC_VIDEO;
/// // 30000 NTSC frames last exactly 1001 seconds.
/// assert_eq!(ntsc.tick_to_seconds(30000), Rational::from(1001).into());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeSystem {
    freq: Rational,
}

impl TimeSystem {
    /// Creates a time system with integer frequency `f` (must be positive).
    pub fn from_hz(f: i64) -> TimeSystem {
        TimeSystem::new(Rational::from(f)).expect("frequency must be positive")
    }

    /// Creates a time system with rational frequency (must be positive).
    pub fn new(freq: Rational) -> Result<TimeSystem, TimeError> {
        if freq.signum() <= 0 {
            return Err(TimeError::NonPositiveFrequency);
        }
        Ok(TimeSystem { freq })
    }

    /// The frequency `f` of the system, in hertz.
    #[inline]
    pub fn frequency(self) -> Rational {
        self.freq
    }

    /// The period `1/f` of the system, in seconds.
    #[inline]
    pub fn period(self) -> TimeDelta {
        TimeDelta::from_seconds(self.freq.recip())
    }

    /// Applies `D_f`: maps a discrete time value to continuous seconds.
    pub fn tick_to_seconds(self, tick: i64) -> TimePoint {
        TimePoint::from_seconds(Rational::from(tick) / self.freq)
    }

    /// Maps a tick count to a duration in seconds.
    pub fn ticks_to_delta(self, ticks: i64) -> TimeDelta {
        TimeDelta::from_seconds(Rational::from(ticks) / self.freq)
    }

    /// Inverse mapping, flooring: the last tick at or before `t`.
    pub fn seconds_to_tick_floor(self, t: TimePoint) -> i64 {
        (t.seconds() * self.freq).floor()
    }

    /// Inverse mapping, ceiling: the first tick at or after `t`.
    pub fn seconds_to_tick_ceil(self, t: TimePoint) -> i64 {
        (t.seconds() * self.freq).ceil()
    }

    /// Inverse mapping, rounding to the nearest tick.
    pub fn seconds_to_tick_round(self, t: TimePoint) -> i64 {
        (t.seconds() * self.freq).round()
    }

    /// `true` when `t` falls exactly on a tick of this system.
    pub fn is_on_grid(self, t: TimePoint) -> bool {
        (t.seconds() * self.freq).is_integer()
    }

    /// Converts a tick count in this system to the equivalent (flooring) tick
    /// count in `other`, going through exact continuous time.
    pub fn convert_ticks_floor(self, ticks: i64, other: TimeSystem) -> i64 {
        (Rational::from(ticks) * other.freq / self.freq).floor()
    }

    /// Converts a tick count in this system to the equivalent (rounding) tick
    /// count in `other`.
    pub fn convert_ticks_round(self, ticks: i64, other: TimeSystem) -> i64 {
        (Rational::from(ticks) * other.freq / self.freq).round()
    }
}

impl fmt::Display for TimeSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D_{}", self.freq)
    }
}

macro_rules! system_consts {
    ($($(#[$doc:meta])* $name:ident = ($num:expr, $den:expr);)*) => {
        impl TimeSystem {
            $(
                $(#[$doc])*
                pub const $name: TimeSystem = TimeSystem {
                    freq: Rational::const_new($num, $den),
                };
            )*
        }
    };
}

system_consts! {
    /// `D_24`: film, 24 frames per second.
    FILM = (24, 1);
    /// `D_25`: European (PAL/SECAM) video, 25 frames per second.
    PAL = (25, 1);
    /// `D_29.97`: North American (NTSC) video — exactly 30000/1001 fps.
    NTSC_VIDEO = (30000, 1001);
    /// `D_30`: early/monochrome NTSC and many animation timelines.
    VIDEO_30 = (30, 1);
    /// `D_44100`: CD audio sampling.
    CD_AUDIO = (44100, 1);
    /// `D_48000`: DAT / professional audio sampling.
    DAT_AUDIO = (48000, 1);
    /// `D_22050`: half-rate audio common on early multimedia PCs.
    HALF_CD_AUDIO = (22050, 1);
    /// `D_8000`: telephony audio.
    PHONE_AUDIO = (8000, 1);
    /// `D_480`: a common MIDI pulses-per-quarter resolution at 60 bpm.
    MIDI_PPQ_480 = (480, 1);
    /// `D_1000`: millisecond event timeline.
    MILLIS = (1000, 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn definition_2_examples_exist() {
        assert_eq!(TimeSystem::PAL.frequency(), Rational::from(25));
        assert_eq!(TimeSystem::FILM.frequency(), Rational::from(24));
        assert_eq!(TimeSystem::CD_AUDIO.frequency(), Rational::from(44100));
        assert_eq!(
            TimeSystem::NTSC_VIDEO.frequency(),
            Rational::new(30000, 1001)
        );
    }

    #[test]
    fn mapping_is_i_over_f() {
        let pal = TimeSystem::PAL;
        assert_eq!(
            pal.tick_to_seconds(50),
            TimePoint::from_seconds(Rational::from(2))
        );
        assert_eq!(
            pal.tick_to_seconds(-25),
            TimePoint::from_seconds(Rational::from(-1))
        );
    }

    #[test]
    fn period_is_reciprocal() {
        assert_eq!(
            TimeSystem::CD_AUDIO.period().seconds(),
            Rational::new(1, 44100)
        );
    }

    #[test]
    fn inverse_mapping_floor_ceil_round() {
        let pal = TimeSystem::PAL;
        let t = TimePoint::from_seconds(Rational::new(1, 10)); // 2.5 frames
        assert_eq!(pal.seconds_to_tick_floor(t), 2);
        assert_eq!(pal.seconds_to_tick_ceil(t), 3);
        assert_eq!(pal.seconds_to_tick_round(t), 3);
        assert!(!pal.is_on_grid(t));
        assert!(pal.is_on_grid(TimePoint::from_seconds(Rational::new(2, 25))));
    }

    #[test]
    fn tick_conversion_between_systems() {
        // 25 PAL frames = 1 second = 44100 CD samples.
        assert_eq!(
            TimeSystem::PAL.convert_ticks_floor(25, TimeSystem::CD_AUDIO),
            44100
        );
        // One PAL frame = 1764 CD samples exactly (the Fig. 2 interleave count).
        assert_eq!(
            TimeSystem::PAL.convert_ticks_floor(1, TimeSystem::CD_AUDIO),
            1764
        );
        // NTSC->PAL: 30000 NTSC frames = 1001 s = 25025 PAL frames.
        assert_eq!(
            TimeSystem::NTSC_VIDEO.convert_ticks_round(30000, TimeSystem::PAL),
            25025
        );
    }

    #[test]
    fn non_positive_frequency_rejected() {
        assert!(TimeSystem::new(Rational::ZERO).is_err());
        assert!(TimeSystem::new(Rational::from(-5)).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(TimeSystem::PAL.to_string(), "D_25");
        assert_eq!(TimeSystem::NTSC_VIDEO.to_string(), "D_30000/1001");
    }
}
