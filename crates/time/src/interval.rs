//! Temporal intervals.
//!
//! A timed-stream tuple `⟨e, s, d⟩` (paper Definition 3) occupies the
//! half-open interval `[s, s+d)`; temporal composition (Definition 7)
//! positions whole media objects as intervals on a shared timeline.
//! [`Interval`] is the shared representation: a start point plus a
//! non-negative duration, with the operations the structuring mechanisms
//! need — overlap, gap detection, translation and scaling.

use crate::{AllenRelation, Rational, TimeDelta, TimeError, TimePoint};
use std::fmt;

/// A half-open temporal interval `[start, start + duration)`.
///
/// Durations are non-negative (enforced at construction). A zero-duration
/// interval models the paper's *event-based* media elements (`dᵢ = 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    start: TimePoint,
    duration: TimeDelta,
}

impl Interval {
    /// Creates an interval; rejects negative durations.
    pub fn new(start: TimePoint, duration: TimeDelta) -> Result<Interval, TimeError> {
        if duration.is_negative() {
            return Err(TimeError::NegativeDuration);
        }
        Ok(Interval { start, duration })
    }

    /// Creates an interval from start/end points; rejects `end < start`.
    pub fn from_bounds(start: TimePoint, end: TimePoint) -> Result<Interval, TimeError> {
        Interval::new(start, end - start)
    }

    /// An instantaneous event at `at`.
    pub fn instant(at: TimePoint) -> Interval {
        Interval {
            start: at,
            duration: TimeDelta::ZERO,
        }
    }

    /// The interval's start point.
    #[inline]
    pub fn start(self) -> TimePoint {
        self.start
    }

    /// The interval's duration (non-negative).
    #[inline]
    pub fn duration(self) -> TimeDelta {
        self.duration
    }

    /// The exclusive end point `start + duration`.
    #[inline]
    pub fn end(self) -> TimePoint {
        self.start + self.duration
    }

    /// `true` for zero-duration (event) intervals.
    #[inline]
    pub fn is_instant(self) -> bool {
        self.duration.is_zero()
    }

    /// `true` when `t` lies inside `[start, end)`. An instant contains only
    /// its own start point.
    pub fn contains(self, t: TimePoint) -> bool {
        if self.is_instant() {
            t == self.start
        } else {
            self.start <= t && t < self.end()
        }
    }

    /// `true` when `other` lies entirely within `self`.
    pub fn contains_interval(self, other: Interval) -> bool {
        self.start <= other.start && other.end() <= self.end()
    }

    /// `true` when the two intervals share a positive-length span (or an
    /// instant interior to the other).
    pub fn overlaps(self, other: Interval) -> bool {
        self.start < other.end() && other.start < self.end()
            || (self.is_instant() && other.contains(self.start))
            || (other.is_instant() && self.contains(other.start))
    }

    /// The intersection span, if any. Touching endpoints (*meets*) share no
    /// span and yield `None`.
    pub fn intersection(self, other: Interval) -> Option<Interval> {
        if !self.overlaps(other) {
            return None;
        }
        let start = self.start.max(other.start);
        let end = self.end().min(other.end());
        Some(Interval::from_bounds(start, end).expect("overlapping intervals are ordered"))
    }

    /// `true` when `self` ends exactly where `other` begins (Allen *meets*).
    pub fn meets(self, other: Interval) -> bool {
        self.end() == other.start && !self.is_instant() && !other.is_instant()
    }

    /// The gap between `self` and a later `other`, if the two are disjoint
    /// with positive separation. This is how non-continuous streams (paper
    /// §3.3) detect their gaps.
    pub fn gap_to(self, other: Interval) -> Option<Interval> {
        if other.start > self.end() {
            Some(Interval::from_bounds(self.end(), other.start).expect("ordered"))
        } else {
            None
        }
    }

    /// The smallest interval covering both inputs.
    pub fn span(self, other: Interval) -> Interval {
        let start = self.start.min(other.start);
        let end = self.end().max(other.end());
        Interval::from_bounds(start, end).expect("span ordered")
    }

    /// Translates the interval by `delta` (the paper's *temporal translation*
    /// derivation: uniformly incrementing start times).
    pub fn translate(self, delta: TimeDelta) -> Interval {
        Interval {
            start: self.start + delta,
            duration: self.duration,
        }
    }

    /// Scales start and duration about the origin by a positive factor
    /// (the paper's *temporal scaling* derivation).
    pub fn scale(self, factor: Rational) -> Result<Interval, TimeError> {
        if factor.signum() <= 0 {
            return Err(TimeError::NegativeDuration);
        }
        Ok(Interval {
            start: TimePoint::from_seconds(self.start.seconds() * factor),
            duration: self.duration.scale(factor),
        })
    }

    /// Classifies the relation of `self` to `other` in Allen's interval
    /// algebra. See [`AllenRelation`].
    pub fn allen_relation(self, other: Interval) -> AllenRelation {
        AllenRelation::classify(self, other)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(start: i64, dur: i64) -> Interval {
        Interval::new(TimePoint::from_secs(start), TimeDelta::from_secs(dur)).unwrap()
    }

    #[test]
    fn construction_rejects_negative_duration() {
        assert!(Interval::new(TimePoint::ZERO, TimeDelta::from_secs(-1)).is_err());
        assert!(Interval::from_bounds(TimePoint::from_secs(5), TimePoint::from_secs(3)).is_err());
    }

    #[test]
    fn end_and_contains() {
        let i = iv(2, 3);
        assert_eq!(i.end(), TimePoint::from_secs(5));
        assert!(i.contains(TimePoint::from_secs(2)));
        assert!(i.contains(TimePoint::from_secs(4)));
        assert!(!i.contains(TimePoint::from_secs(5))); // half-open
        assert!(!i.contains(TimePoint::from_secs(1)));
    }

    #[test]
    fn instant_contains_only_itself() {
        let e = Interval::instant(TimePoint::from_secs(3));
        assert!(e.is_instant());
        assert!(e.contains(TimePoint::from_secs(3)));
        assert!(!e.contains(TimePoint::from_secs(4)));
    }

    #[test]
    fn overlap_and_intersection() {
        let a = iv(0, 10);
        let b = iv(5, 10);
        assert!(a.overlaps(b));
        assert_eq!(a.intersection(b), Some(iv(5, 5)));

        let c = iv(10, 5);
        assert!(!a.overlaps(c)); // meets, but no shared span
        assert!(a.meets(c));
        assert_eq!(a.intersection(c), None);

        let d = iv(20, 5);
        assert!(!a.overlaps(d));
        assert_eq!(a.gap_to(d), Some(iv(10, 10)));
        assert_eq!(a.gap_to(c), None);
    }

    #[test]
    fn instant_overlap_inside_interval() {
        let a = iv(0, 10);
        let e = Interval::instant(TimePoint::from_secs(5));
        assert!(a.overlaps(e));
        assert!(e.overlaps(a));
    }

    #[test]
    fn containment() {
        let a = iv(0, 10);
        assert!(a.contains_interval(iv(2, 3)));
        assert!(a.contains_interval(iv(0, 10)));
        assert!(!a.contains_interval(iv(5, 10)));
    }

    #[test]
    fn span() {
        assert_eq!(iv(0, 2).span(iv(8, 2)), iv(0, 10));
        assert_eq!(iv(8, 2).span(iv(0, 2)), iv(0, 10));
    }

    #[test]
    fn translate_and_scale() {
        let a = iv(2, 4);
        assert_eq!(a.translate(TimeDelta::from_secs(3)), iv(5, 4));
        assert_eq!(a.translate(TimeDelta::from_secs(-2)), iv(0, 4));
        assert_eq!(a.scale(Rational::new(1, 2)).unwrap(), iv(1, 2));
        assert_eq!(a.scale(Rational::from(2)).unwrap(), iv(4, 8));
        assert!(a.scale(Rational::ZERO).is_err());
        assert!(a.scale(Rational::from(-1)).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(iv(1, 2).to_string(), "[1s, 3s)");
    }
}
