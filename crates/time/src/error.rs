//! Error type for temporal arithmetic.

use std::fmt;

/// Errors produced by exact time arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimeError {
    /// A rational was constructed with a zero denominator.
    ZeroDenominator,
    /// An arithmetic operation overflowed the `i64` range even after reduction.
    Overflow {
        /// The operation that overflowed (e.g. `"add"`, `"mul"`).
        op: &'static str,
    },
    /// Division by a zero rational.
    DivisionByZero,
    /// A time system was constructed with a non-positive frequency.
    NonPositiveFrequency,
    /// A negative length was supplied where a non-negative one is required.
    NegativeDuration,
}

impl fmt::Display for TimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeError::ZeroDenominator => write!(f, "rational denominator is zero"),
            TimeError::Overflow { op } => write!(f, "rational arithmetic overflow in `{op}`"),
            TimeError::DivisionByZero => write!(f, "division by zero rational"),
            TimeError::NonPositiveFrequency => {
                write!(f, "discrete time system frequency must be positive")
            }
            TimeError::NegativeDuration => write!(f, "durations must be non-negative"),
        }
    }
}

impl std::error::Error for TimeError {}
