//! Allen's interval algebra.
//!
//! Temporal composition (paper §4.3, citing Little & Ghafoor's
//! spatio-temporal composition) expresses "relative timing during
//! presentation" between components. The thirteen mutually exclusive,
//! jointly exhaustive relations of Allen's interval algebra are the standard
//! vocabulary for such relationships; [`AllenRelation::classify`] computes
//! the relation that holds between two concrete intervals, and the relation
//! can also serve as a *constraint* checked against concrete placements.

use crate::Interval;
use std::fmt;

/// One of the thirteen Allen interval relations, read as
/// `a <relation> b` (e.g. `Before` means *a* ends strictly before *b* starts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllenRelation {
    /// `a` ends strictly before `b` starts.
    Before,
    /// `a` ends exactly where `b` starts.
    Meets,
    /// `a` starts first, they overlap, `b` ends last.
    Overlaps,
    /// Same start; `a` ends first.
    Starts,
    /// `a` lies strictly inside `b`.
    During,
    /// Same end; `a` starts later.
    Finishes,
    /// Identical intervals.
    Equals,
    /// Inverse of `Finishes`: same end, `a` starts earlier.
    FinishedBy,
    /// Inverse of `During`: `b` lies strictly inside `a`.
    Contains,
    /// Inverse of `Starts`: same start, `a` ends later.
    StartedBy,
    /// Inverse of `Overlaps`.
    OverlappedBy,
    /// Inverse of `Meets`.
    MetBy,
    /// Inverse of `Before`.
    After,
}

impl AllenRelation {
    /// All thirteen relations, in canonical order.
    pub const ALL: [AllenRelation; 13] = [
        AllenRelation::Before,
        AllenRelation::Meets,
        AllenRelation::Overlaps,
        AllenRelation::Starts,
        AllenRelation::During,
        AllenRelation::Finishes,
        AllenRelation::Equals,
        AllenRelation::FinishedBy,
        AllenRelation::Contains,
        AllenRelation::StartedBy,
        AllenRelation::OverlappedBy,
        AllenRelation::MetBy,
        AllenRelation::After,
    ];

    /// Determines which relation holds between `a` and `b`.
    ///
    /// Exactly one relation holds for any pair of intervals, so this is a
    /// total classification.
    pub fn classify(a: Interval, b: Interval) -> AllenRelation {
        use std::cmp::Ordering::*;
        let ss = a.start().cmp(&b.start());
        let ee = a.end().cmp(&b.end());
        match (ss, ee) {
            (Equal, Equal) => AllenRelation::Equals,
            (Equal, Less) => AllenRelation::Starts,
            (Equal, Greater) => AllenRelation::StartedBy,
            (Less, Equal) => AllenRelation::FinishedBy,
            (Greater, Equal) => AllenRelation::Finishes,
            (Less, Less) => {
                if a.end() < b.start() {
                    AllenRelation::Before
                } else if a.end() == b.start() {
                    AllenRelation::Meets
                } else {
                    AllenRelation::Overlaps
                }
            }
            (Greater, Greater) => {
                if b.end() < a.start() {
                    AllenRelation::After
                } else if b.end() == a.start() {
                    AllenRelation::MetBy
                } else {
                    AllenRelation::OverlappedBy
                }
            }
            (Less, Greater) => AllenRelation::Contains,
            (Greater, Less) => AllenRelation::During,
        }
    }

    /// The inverse relation: if `a R b` then `b R.inverse() a`.
    pub fn inverse(self) -> AllenRelation {
        match self {
            AllenRelation::Before => AllenRelation::After,
            AllenRelation::Meets => AllenRelation::MetBy,
            AllenRelation::Overlaps => AllenRelation::OverlappedBy,
            AllenRelation::Starts => AllenRelation::StartedBy,
            AllenRelation::During => AllenRelation::Contains,
            AllenRelation::Finishes => AllenRelation::FinishedBy,
            AllenRelation::Equals => AllenRelation::Equals,
            AllenRelation::FinishedBy => AllenRelation::Finishes,
            AllenRelation::Contains => AllenRelation::During,
            AllenRelation::StartedBy => AllenRelation::Starts,
            AllenRelation::OverlappedBy => AllenRelation::Overlaps,
            AllenRelation::MetBy => AllenRelation::Meets,
            AllenRelation::After => AllenRelation::Before,
        }
    }

    /// `true` for relations in which the two intervals share a positive span
    /// (or one contains the other).
    pub fn shares_span(self) -> bool {
        !matches!(
            self,
            AllenRelation::Before
                | AllenRelation::Meets
                | AllenRelation::MetBy
                | AllenRelation::After
        )
    }
}

impl fmt::Display for AllenRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AllenRelation::Before => "before",
            AllenRelation::Meets => "meets",
            AllenRelation::Overlaps => "overlaps",
            AllenRelation::Starts => "starts",
            AllenRelation::During => "during",
            AllenRelation::Finishes => "finishes",
            AllenRelation::Equals => "equals",
            AllenRelation::FinishedBy => "finished-by",
            AllenRelation::Contains => "contains",
            AllenRelation::StartedBy => "started-by",
            AllenRelation::OverlappedBy => "overlapped-by",
            AllenRelation::MetBy => "met-by",
            AllenRelation::After => "after",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TimeDelta, TimePoint};

    fn iv(start: i64, dur: i64) -> Interval {
        Interval::new(TimePoint::from_secs(start), TimeDelta::from_secs(dur)).unwrap()
    }

    #[test]
    fn all_thirteen_classified() {
        assert_eq!(
            AllenRelation::classify(iv(0, 2), iv(5, 2)),
            AllenRelation::Before
        );
        assert_eq!(
            AllenRelation::classify(iv(0, 5), iv(5, 2)),
            AllenRelation::Meets
        );
        assert_eq!(
            AllenRelation::classify(iv(0, 5), iv(3, 5)),
            AllenRelation::Overlaps
        );
        assert_eq!(
            AllenRelation::classify(iv(0, 3), iv(0, 5)),
            AllenRelation::Starts
        );
        assert_eq!(
            AllenRelation::classify(iv(2, 2), iv(0, 10)),
            AllenRelation::During
        );
        assert_eq!(
            AllenRelation::classify(iv(3, 2), iv(0, 5)),
            AllenRelation::Finishes
        );
        assert_eq!(
            AllenRelation::classify(iv(1, 4), iv(1, 4)),
            AllenRelation::Equals
        );
        assert_eq!(
            AllenRelation::classify(iv(0, 5), iv(3, 2)),
            AllenRelation::FinishedBy
        );
        assert_eq!(
            AllenRelation::classify(iv(0, 10), iv(2, 2)),
            AllenRelation::Contains
        );
        assert_eq!(
            AllenRelation::classify(iv(0, 5), iv(0, 3)),
            AllenRelation::StartedBy
        );
        assert_eq!(
            AllenRelation::classify(iv(3, 5), iv(0, 5)),
            AllenRelation::OverlappedBy
        );
        assert_eq!(
            AllenRelation::classify(iv(5, 2), iv(0, 5)),
            AllenRelation::MetBy
        );
        assert_eq!(
            AllenRelation::classify(iv(5, 2), iv(0, 2)),
            AllenRelation::After
        );
    }

    #[test]
    fn inverse_is_involutive_and_consistent() {
        for r in AllenRelation::ALL {
            assert_eq!(r.inverse().inverse(), r);
        }
        let a = iv(0, 5);
        let b = iv(3, 5);
        assert_eq!(
            AllenRelation::classify(a, b).inverse(),
            AllenRelation::classify(b, a)
        );
    }

    #[test]
    fn shares_span_matches_overlap() {
        let cases = [
            (iv(0, 2), iv(5, 2)),
            (iv(0, 5), iv(5, 2)),
            (iv(0, 5), iv(3, 5)),
            (iv(0, 3), iv(0, 5)),
            (iv(2, 2), iv(0, 10)),
            (iv(1, 4), iv(1, 4)),
        ];
        for (a, b) in cases {
            assert_eq!(
                AllenRelation::classify(a, b).shares_span(),
                a.overlaps(b),
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(AllenRelation::Before.to_string(), "before");
        assert_eq!(AllenRelation::OverlappedBy.to_string(), "overlapped-by");
    }
}
