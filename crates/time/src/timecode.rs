//! Presentation-time formatting.
//!
//! Figure 4(b) of the paper labels its timeline `0:0`, `1:00`, `1:10`,
//! `2:10` — minutes and seconds. [`Timecode`] renders exact time points in
//! that style, in `H:MM:SS.mmm` form, and in SMPTE-like `HH:MM:SS:FF` form
//! for a given frame rate.

use crate::{Rational, TimePoint, TimeSystem};
use std::fmt;

/// A formatter wrapper around a [`TimePoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timecode {
    at: TimePoint,
}

impl Timecode {
    /// Wraps a time point for formatting.
    pub fn new(at: TimePoint) -> Timecode {
        Timecode { at }
    }

    /// The wrapped point.
    pub fn time(self) -> TimePoint {
        self.at
    }

    /// `M:SS` (or `H:MM:SS` when an hour or longer) — the style used by the
    /// paper's Fig. 4 timeline. Sub-second parts are truncated.
    pub fn minutes_seconds(self) -> String {
        let total = self.at.seconds().floor().max(0);
        let h = total / 3600;
        let m = (total % 3600) / 60;
        let s = total % 60;
        if h > 0 {
            format!("{h}:{m:02}:{s:02}")
        } else {
            format!("{m}:{s:02}")
        }
    }

    /// `H:MM:SS.mmm` with milliseconds truncated toward zero.
    pub fn hms_millis(self) -> String {
        let secs = self.at.seconds();
        let millis = (secs * Rational::from(1000)).floor().max(0);
        let total = millis / 1000;
        let ms = millis % 1000;
        let h = total / 3600;
        let m = (total % 3600) / 60;
        let s = total % 60;
        format!("{h}:{m:02}:{s:02}.{ms:03}")
    }

    /// SMPTE-like `HH:MM:SS:FF` for the given frame-based time system
    /// (non-drop-frame; the frame count is truncated to the grid).
    pub fn smpte(self, frames: TimeSystem) -> String {
        let tick = frames.seconds_to_tick_floor(self.at).max(0);
        let fps_ceil = frames.frequency().ceil();
        let frames_per_sec = fps_ceil.max(1);
        // Whole seconds and residual frame index within the second.
        let secs = self.at.seconds().floor().max(0);
        let sec_start_tick =
            frames.seconds_to_tick_ceil(TimePoint::from_seconds(Rational::from(secs)));
        let ff = (tick - sec_start_tick).clamp(0, frames_per_sec - 1);
        let h = secs / 3600;
        let m = (secs % 3600) / 60;
        let s = secs % 60;
        format!("{h:02}:{m:02}:{s:02}:{ff:02}")
    }
}

impl Timecode {
    /// SMPTE drop-frame timecode for NTSC (`D_29.97`): `HH:MM:SS;FF`.
    ///
    /// NTSC's 30000/1001 rate means 30 fps timecode drifts 3.6 s/hour
    /// against the clock; drop-frame numbering skips frame numbers 0 and 1
    /// at the start of every minute except each tenth minute, keeping
    /// labels within a frame of wall time. (The exactness of
    /// [`crate::Rational`] makes the frame count itself exact; drop-frame
    /// only fixes the *labels*.)
    pub fn smpte_drop_frame(self) -> String {
        let ntsc = crate::TimeSystem::NTSC_VIDEO;
        let frame = ntsc.seconds_to_tick_floor(self.at).max(0);
        Timecode::drop_frame_label(frame)
    }

    /// The drop-frame label for NTSC frame number `frame`.
    pub fn drop_frame_label(frame: i64) -> String {
        const FRAMES_PER_10MIN: i64 = 17_982; // 10 min of 29.97
        const FRAMES_PER_MIN: i64 = 1_798; // a dropped minute
        const DROP: i64 = 2;
        let frame = frame.max(0);
        let tens = frame / FRAMES_PER_10MIN;
        let rem = frame % FRAMES_PER_10MIN;
        let mut d = frame + 18 * tens;
        if rem > DROP {
            d += DROP * ((rem - DROP) / FRAMES_PER_MIN);
        }
        let ff = d % 30;
        let ss = (d / 30) % 60;
        let mm = (d / 1_800) % 60;
        let hh = d / 108_000;
        format!("{hh:02}:{mm:02}:{ss:02};{ff:02}")
    }
}

impl fmt::Display for Timecode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hms_millis())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimeDelta;

    fn tp(secs: i64) -> TimePoint {
        TimePoint::from_secs(secs)
    }

    #[test]
    fn figure_4_timeline_labels() {
        // The paper's Fig. 4(b) marks 0:0, 1:00, 1:10 and 2:10.
        assert_eq!(Timecode::new(tp(0)).minutes_seconds(), "0:00");
        assert_eq!(Timecode::new(tp(60)).minutes_seconds(), "1:00");
        assert_eq!(Timecode::new(tp(70)).minutes_seconds(), "1:10");
        assert_eq!(Timecode::new(tp(130)).minutes_seconds(), "2:10");
    }

    #[test]
    fn hours_roll_over() {
        assert_eq!(Timecode::new(tp(3661)).minutes_seconds(), "1:01:01");
        assert_eq!(Timecode::new(tp(3661)).hms_millis(), "1:01:01.000");
    }

    #[test]
    fn millis_truncate() {
        let t = TimePoint::ZERO + TimeDelta::from_millis(1234);
        assert_eq!(Timecode::new(t).hms_millis(), "0:00:01.234");
        let third = TimePoint::from_seconds(Rational::new(1, 3));
        assert_eq!(Timecode::new(third).hms_millis(), "0:00:00.333");
    }

    #[test]
    fn smpte_pal() {
        let pal = TimeSystem::PAL;
        // Frame 37 at 25 fps = 1 s + 12 frames.
        let t = pal.tick_to_seconds(37);
        assert_eq!(Timecode::new(t).smpte(pal), "00:00:01:12");
        assert_eq!(Timecode::new(tp(0)).smpte(pal), "00:00:00:00");
        assert_eq!(Timecode::new(tp(3600)).smpte(pal), "01:00:00:00");
    }

    #[test]
    fn drop_frame_canonical_vectors() {
        // The classic SMPTE 12M vectors.
        assert_eq!(Timecode::drop_frame_label(0), "00:00:00;00");
        assert_eq!(Timecode::drop_frame_label(30), "00:00:01;00");
        assert_eq!(Timecode::drop_frame_label(1_799), "00:00:59;29");
        // Frames 0 and 1 of minute 1 are dropped: next label is ;02.
        assert_eq!(Timecode::drop_frame_label(1_800), "00:01:00;02");
        assert_eq!(Timecode::drop_frame_label(17_981), "00:09:59;29");
        // Tenth minute keeps its 0/1 frames.
        assert_eq!(Timecode::drop_frame_label(17_982), "00:10:00;00");
        // One hour of NTSC: 107892 frames = exactly 01:00:00;00.
        assert_eq!(Timecode::drop_frame_label(107_892), "01:00:00;00");
    }

    #[test]
    fn drop_frame_tracks_wall_clock() {
        // After exactly one wall-clock hour the drop-frame label reads
        // 01:00:00 (within one frame), where non-drop would read 00:59:56.
        let ntsc = TimeSystem::NTSC_VIDEO;
        let one_hour = tp(3600);
        let frame = ntsc.seconds_to_tick_floor(one_hour);
        assert_eq!(frame, 107_892); // 3600 × 30000/1001, floored
        assert_eq!(Timecode::new(one_hour).smpte_drop_frame(), "01:00:00;00");
    }

    #[test]
    fn display_uses_hms() {
        assert_eq!(Timecode::new(tp(5)).to_string(), "0:00:05.000");
    }
}
